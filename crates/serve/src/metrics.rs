//! Daemon-wide counters exported in Prometheus text exposition format.
//!
//! Two kinds of signal meet here: HTTP-plane counters (requests,
//! rejections, queue depth) bumped inline by the server, and
//! engine-plane counters (retries, give-ups, panics, build-cache
//! hits/misses, injected faults) aggregated from each finished job's
//! `SweepResult` — the same numbers the PR-3 trace/metrics layer puts
//! in the sweep summary table, re-exported as a scrape target.

use mpstream_core::sweep::SweepResult;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Extra exposition text appended to every scrape. The callback writes
/// complete `# HELP`/`# TYPE`/sample stanzas; the cluster coordinator
/// uses this to publish its worker/shard gauges without the base
/// daemon knowing they exist.
pub type ExtraRenderer = Box<dyn Fn(&mut String) + Send + Sync>;

/// Newtype so `Metrics` can keep deriving `Debug` (a `dyn Fn` has no
/// useful debug form).
struct Extra(ExtraRenderer);

impl std::fmt::Debug for Extra {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ExtraRenderer")
    }
}

/// Per-tenant admission counters, rendered as labeled samples
/// (`mpstream_tenant_requests_total{tenant="..."}`) so one scrape shows
/// which tenant is being throttled and which is getting through.
#[derive(Debug, Default)]
pub struct TenantCounters {
    /// Requests attributed to this tenant (after auth).
    pub requests: AtomicU64,
    /// Requests answered 429 by the tenant's token bucket.
    pub throttled: AtomicU64,
    /// Submissions answered 429 by the tenant's queue quota.
    pub quota_rejected: AtomicU64,
    /// Jobs this tenant got accepted.
    pub submitted: AtomicU64,
}

/// All counters. Every field is monotonic except `queue_depth`,
/// `jobs_running`, and the `store_*` occupancy gauges.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Scrape-time extensions, appended in install order.
    extra: Mutex<Vec<Extra>>,
    /// Per-tenant counters, keyed by tenant name.
    tenants: Mutex<BTreeMap<String, Arc<TenantCounters>>>,
    /// HTTP requests parsed (any method/path).
    pub http_requests: AtomicU64,
    /// Requests answered 4xx (parse errors, unknown routes).
    pub http_client_errors: AtomicU64,
    /// Requests answered 503 because a queue was full.
    pub http_busy: AtomicU64,
    /// Connections dropped because the accept pool was saturated.
    pub connections_rejected: AtomicU64,
    /// Requests cut off by the per-request deadline (408s).
    pub http_timeouts: AtomicU64,
    /// Requests answered 429 by rate limit or queue quota.
    pub http_throttled: AtomicU64,
    /// Requests answered 401 for an unknown API key.
    pub http_unauthorized: AtomicU64,
    /// Connections closed after serving the per-connection request cap.
    pub conn_requests_capped: AtomicU64,
    /// Client circuit-breaker open transitions observed by this process.
    pub breaker_opens: AtomicU64,
    /// Journal files compacted at store open (set once at bind).
    pub store_files_compacted: AtomicU64,
    /// Records kept by startup compaction (set once at bind).
    pub store_records_kept: AtomicU64,
    /// Records superseded by startup compaction (set once at bind).
    pub store_records_superseded: AtomicU64,
    /// Corrupt records dropped by startup compaction (set once at bind).
    pub store_records_corrupt: AtomicU64,
    /// Jobs currently retained in the store (gauge).
    pub store_jobs: AtomicU64,
    /// Bytes currently on disk under the store directory (gauge).
    pub store_bytes: AtomicU64,
    /// Jobs evicted by the retention policy.
    pub store_evicted: AtomicU64,
    /// Bytes reclaimed by the retention policy.
    pub store_bytes_reclaimed: AtomicU64,
    /// Jobs accepted by POST /jobs.
    pub jobs_submitted: AtomicU64,
    /// Jobs finished successfully (report written).
    pub jobs_completed: AtomicU64,
    /// Jobs that ended in cancellation.
    pub jobs_cancelled: AtomicU64,
    /// Jobs that failed outright (store/config error).
    pub jobs_failed: AtomicU64,
    /// Jobs currently queued (gauge).
    pub queue_depth: AtomicU64,
    /// Jobs currently executing (gauge; 0 or 1 with one runner).
    pub jobs_running: AtomicU64,
    /// Sweep points executed (not resumed) across all jobs.
    pub points_executed: AtomicU64,
    /// Sweep points answered from a job's checkpoint on resume.
    pub points_resumed: AtomicU64,
    /// Engine re-attempts after transient failures.
    pub engine_retries: AtomicU64,
    /// Transient failures observed by the engine.
    pub engine_transient_errors: AtomicU64,
    /// Points whose retry budget/deadline ran out.
    pub engine_gave_up: AtomicU64,
    /// Worker panics isolated into error outcomes.
    pub engine_panics: AtomicU64,
    /// Build-cache hits across all jobs.
    pub cache_hits: AtomicU64,
    /// Build-cache misses across all jobs.
    pub cache_misses: AtomicU64,
    /// Faults injected by attached fault plans.
    pub faults_injected: AtomicU64,
    /// Result streams opened (`GET /jobs/N/stream` answered 200).
    pub stream_opened: AtomicU64,
    /// Checkpoint records sent over result streams.
    pub stream_records: AtomicU64,
    /// Result streams currently live (gauge).
    pub stream_active: AtomicU64,
}

impl Metrics {
    /// Bump a counter.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Add to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Set a gauge.
    pub fn set(gauge: &AtomicU64, n: u64) {
        gauge.store(n, Ordering::Relaxed);
    }

    /// Decrement a gauge, stopping at zero (a stream double-counting
    /// its own teardown must not wrap the gauge to u64::MAX).
    pub fn dec(gauge: &AtomicU64) {
        let _ = gauge.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
    }

    /// Install a renderer appended to every scrape, after any renderers
    /// installed before it. The coordinator and the breaker layer each
    /// publish their own stanzas this way.
    pub fn set_extra_renderer(&self, f: ExtraRenderer) {
        self.extra.lock().expect("metrics poisoned").push(Extra(f));
    }

    /// The counters for `tenant`, created on first touch. Cheap enough
    /// for the request path: one short-lived lock and a map probe.
    pub fn tenant(&self, tenant: &str) -> Arc<TenantCounters> {
        let mut map = self.tenants.lock().expect("metrics poisoned");
        Arc::clone(map.entry(tenant.to_string()).or_default())
    }

    /// Fold one finished job's sweep counters in. Points the engine
    /// never claimed (a cancelled run fills them with
    /// `ClError::Cancelled`) do not count as executed.
    pub fn absorb_sweep(&self, result: &SweepResult) {
        let executed = result
            .points
            .iter()
            .filter(|o| !matches!(o.result, Err(mpcl::ClError::Cancelled)))
            .count()
            .saturating_sub(result.resumed);
        Self::add(&self.points_executed, executed as u64);
        Self::add(&self.points_resumed, result.resumed as u64);
        Self::add(&self.engine_retries, result.retry.retries);
        Self::add(&self.engine_transient_errors, result.retry.transient_errors);
        Self::add(&self.engine_gave_up, result.retry.gave_up);
        Self::add(&self.engine_panics, result.retry.panics_isolated);
        Self::add(&self.cache_hits, result.cache.hits);
        Self::add(&self.cache_misses, result.cache.misses);
        Self::add(&self.faults_injected, result.faults.total());
    }

    /// Fold one finished DSE job's counters in — the same accounting as
    /// [`absorb_sweep`](Self::absorb_sweep), over the search trace.
    /// Cancelled slots never reach a `DseResult` trace, so only the
    /// resumed count needs subtracting.
    pub fn absorb_dse(&self, result: &mpstream_core::DseResult) {
        let executed = result.trace.len().saturating_sub(result.resumed);
        Self::add(&self.points_executed, executed as u64);
        Self::add(&self.points_resumed, result.resumed as u64);
        Self::add(&self.engine_retries, result.retry.retries);
        Self::add(&self.engine_transient_errors, result.retry.transient_errors);
        Self::add(&self.engine_gave_up, result.retry.gave_up);
        Self::add(&self.engine_panics, result.retry.panics_isolated);
        Self::add(&self.cache_hits, result.cache.hits);
        Self::add(&self.cache_misses, result.cache.misses);
        Self::add(&self.faults_injected, result.faults.total());
    }

    /// Render the scrape body.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut metric = |name: &str, kind: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name} {value}");
        };
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        metric(
            "mpstream_http_requests_total",
            "counter",
            "HTTP requests parsed.",
            get(&self.http_requests),
        );
        metric(
            "mpstream_http_client_errors_total",
            "counter",
            "Requests answered with a 4xx status.",
            get(&self.http_client_errors),
        );
        metric(
            "mpstream_http_busy_total",
            "counter",
            "Requests answered 503 because a queue was full.",
            get(&self.http_busy),
        );
        metric(
            "mpstream_connections_rejected_total",
            "counter",
            "Connections shed because the accept pool was saturated.",
            get(&self.connections_rejected),
        );
        metric(
            "mpstream_jobs_submitted_total",
            "counter",
            "Sweep jobs accepted.",
            get(&self.jobs_submitted),
        );
        metric(
            "mpstream_jobs_completed_total",
            "counter",
            "Sweep jobs finished with a report.",
            get(&self.jobs_completed),
        );
        metric(
            "mpstream_jobs_cancelled_total",
            "counter",
            "Sweep jobs cancelled.",
            get(&self.jobs_cancelled),
        );
        metric(
            "mpstream_jobs_failed_total",
            "counter",
            "Sweep jobs that failed.",
            get(&self.jobs_failed),
        );
        metric(
            "mpstream_job_queue_depth",
            "gauge",
            "Jobs waiting in the bounded queue.",
            get(&self.queue_depth),
        );
        metric(
            "mpstream_jobs_running",
            "gauge",
            "Jobs currently executing.",
            get(&self.jobs_running),
        );
        metric(
            "mpstream_points_executed_total",
            "counter",
            "Sweep points executed by the engine.",
            get(&self.points_executed),
        );
        metric(
            "mpstream_points_resumed_total",
            "counter",
            "Sweep points answered from a job checkpoint.",
            get(&self.points_resumed),
        );
        metric(
            "mpstream_engine_retries_total",
            "counter",
            "Engine re-attempts after transient failures.",
            get(&self.engine_retries),
        );
        metric(
            "mpstream_engine_transient_errors_total",
            "counter",
            "Transient failures observed by the engine.",
            get(&self.engine_transient_errors),
        );
        metric(
            "mpstream_engine_gave_up_total",
            "counter",
            "Points whose retry budget or deadline ran out.",
            get(&self.engine_gave_up),
        );
        metric(
            "mpstream_engine_panics_total",
            "counter",
            "Worker panics isolated into error outcomes.",
            get(&self.engine_panics),
        );
        metric(
            "mpstream_build_cache_hits_total",
            "counter",
            "Build-artifact cache hits.",
            get(&self.cache_hits),
        );
        metric(
            "mpstream_build_cache_misses_total",
            "counter",
            "Build-artifact cache misses.",
            get(&self.cache_misses),
        );
        metric(
            "mpstream_faults_injected_total",
            "counter",
            "Faults injected by attached fault plans.",
            get(&self.faults_injected),
        );
        metric(
            "mpstream_stream_opened_total",
            "counter",
            "Result streams opened (GET /jobs/N/stream).",
            get(&self.stream_opened),
        );
        metric(
            "mpstream_stream_records_total",
            "counter",
            "Checkpoint records sent over result streams.",
            get(&self.stream_records),
        );
        metric(
            "mpstream_stream_active_total",
            "gauge",
            "Result streams currently live.",
            get(&self.stream_active),
        );
        metric(
            "mpstream_http_timeouts_total",
            "counter",
            "Requests cut off by the per-request deadline.",
            get(&self.http_timeouts),
        );
        metric(
            "mpstream_http_throttled_total",
            "counter",
            "Requests answered 429 by rate limit or queue quota.",
            get(&self.http_throttled),
        );
        metric(
            "mpstream_http_unauthorized_total",
            "counter",
            "Requests answered 401 for an unknown API key.",
            get(&self.http_unauthorized),
        );
        metric(
            "mpstream_conn_requests_capped_total",
            "counter",
            "Connections closed at the per-connection request cap.",
            get(&self.conn_requests_capped),
        );
        metric(
            "mpstream_breaker_opens_total",
            "counter",
            "Client circuit-breaker open transitions.",
            get(&self.breaker_opens),
        );
        metric(
            "mpstream_store_files_compacted",
            "gauge",
            "Journal files compacted at store open.",
            get(&self.store_files_compacted),
        );
        metric(
            "mpstream_store_records_kept",
            "gauge",
            "Records kept by startup compaction.",
            get(&self.store_records_kept),
        );
        metric(
            "mpstream_store_records_superseded",
            "gauge",
            "Records superseded by startup compaction.",
            get(&self.store_records_superseded),
        );
        metric(
            "mpstream_store_records_corrupt",
            "gauge",
            "Corrupt records dropped by startup compaction.",
            get(&self.store_records_corrupt),
        );
        metric(
            "mpstream_store_jobs",
            "gauge",
            "Jobs currently retained in the store.",
            get(&self.store_jobs),
        );
        metric(
            "mpstream_store_bytes",
            "gauge",
            "Bytes on disk under the store directory.",
            get(&self.store_bytes),
        );
        metric(
            "mpstream_store_evicted_total",
            "counter",
            "Jobs evicted by the retention policy.",
            get(&self.store_evicted),
        );
        metric(
            "mpstream_store_bytes_reclaimed_total",
            "counter",
            "Bytes reclaimed by the retention policy.",
            get(&self.store_bytes_reclaimed),
        );
        self.render_tenants(&mut out);
        for Extra(f) in self.extra.lock().expect("metrics poisoned").iter() {
            f(&mut out);
        }
        out
    }

    /// Render the per-tenant counters as labeled samples, one
    /// HELP/TYPE stanza per metric name covering every tenant.
    fn render_tenants(&self, out: &mut String) {
        let map = self.tenants.lock().expect("metrics poisoned");
        if map.is_empty() {
            return;
        }
        type Column = (
            &'static str,
            &'static str,
            fn(&TenantCounters) -> &AtomicU64,
        );
        let columns: [Column; 4] = [
            (
                "mpstream_tenant_requests_total",
                "Requests attributed to the tenant.",
                |t| &t.requests,
            ),
            (
                "mpstream_tenant_throttled_total",
                "Requests answered 429 by the tenant's token bucket.",
                |t| &t.throttled,
            ),
            (
                "mpstream_tenant_quota_rejected_total",
                "Submissions answered 429 by the tenant's queue quota.",
                |t| &t.quota_rejected,
            ),
            (
                "mpstream_tenant_jobs_submitted_total",
                "Jobs the tenant got accepted.",
                |t| &t.submitted,
            ),
        ];
        for (name, help, field) in columns {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            for (tenant, counters) in map.iter() {
                let _ = writeln!(
                    out,
                    "{name}{{tenant=\"{tenant}\"}} {}",
                    field(counters).load(Ordering::Relaxed)
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_well_formed_exposition_text() {
        let m = Metrics::default();
        Metrics::inc(&m.http_requests);
        Metrics::add(&m.cache_hits, 5);
        Metrics::set(&m.queue_depth, 3);
        let text = m.render_prometheus();
        assert!(text.contains("mpstream_http_requests_total 1\n"), "{text}");
        assert!(text.contains("mpstream_build_cache_hits_total 5\n"));
        assert!(text.contains("mpstream_job_queue_depth 3\n"));
        // Every sample line is preceded by HELP and TYPE for its name.
        for chunk in text.split("# HELP ").skip(1) {
            let name = chunk.split_whitespace().next().unwrap();
            assert!(chunk.contains(&format!("# TYPE {name}")), "{name}");
            assert!(
                chunk.lines().any(|l| l.starts_with(name)),
                "sample for {name}"
            );
        }
    }

    #[test]
    fn gauge_decrement_saturates_at_zero() {
        let m = Metrics::default();
        Metrics::inc(&m.stream_active);
        Metrics::dec(&m.stream_active);
        Metrics::dec(&m.stream_active); // double teardown must not wrap
        assert_eq!(m.stream_active.load(Ordering::Relaxed), 0);
        let text = m.render_prometheus();
        assert!(text.contains("mpstream_stream_active_total 0\n"), "{text}");
        assert!(text.contains("mpstream_stream_opened_total 0\n"));
        assert!(text.contains("mpstream_stream_records_total 0\n"));
    }

    #[test]
    fn extra_renderers_append_in_install_order() {
        let m = Metrics::default();
        assert!(!m.render_prometheus().contains("extra_gauge"));
        m.set_extra_renderer(Box::new(|out| out.push_str("extra_gauge 7\n")));
        m.set_extra_renderer(Box::new(|out| out.push_str("second_gauge 8\n")));
        let text = m.render_prometheus();
        assert!(text.ends_with("extra_gauge 7\nsecond_gauge 8\n"), "{text}");
    }

    #[test]
    fn tenant_counters_render_as_labeled_samples() {
        let m = Metrics::default();
        assert!(!m.render_prometheus().contains("mpstream_tenant_"));
        let anon = m.tenant("anon");
        Metrics::inc(&anon.requests);
        Metrics::inc(&anon.requests);
        let bursty = m.tenant("bursty");
        Metrics::inc(&bursty.throttled);
        // Counters survive: tenant() hands back the same instance.
        Metrics::inc(&m.tenant("bursty").throttled);
        let text = m.render_prometheus();
        assert!(
            text.contains("mpstream_tenant_requests_total{tenant=\"anon\"} 2\n"),
            "{text}"
        );
        assert!(text.contains("mpstream_tenant_requests_total{tenant=\"bursty\"} 0\n"));
        assert!(text.contains("mpstream_tenant_throttled_total{tenant=\"bursty\"} 2\n"));
        let help_lines = text
            .lines()
            .filter(|l| l.starts_with("# HELP mpstream_tenant_requests_total"))
            .count();
        assert_eq!(help_lines, 1, "one stanza covers all tenants");
    }
}
