//! A minimal blocking HTTP/1.1 client for the thin `mpstream
//! submit|status|fetch|cancel` subcommands and the test suites — one
//! request per connection (`Connection: close`), `Content-Length`
//! bodies only, mirroring exactly what the server implements.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A completed exchange.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Response status code.
    pub status: u16,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl HttpReply {
    /// First header with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Perform one request against `addr` (e.g. `127.0.0.1:8377`).
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> Result<HttpReply, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .map_err(|e| format!("send: {e}"))?;
    writer.write_all(body).map_err(|e| format!("send: {e}"))?;
    writer.flush().map_err(|e| format!("send: {e}"))?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("status line: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("headers: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    let mut body = Vec::new();
    match content_length {
        Some(len) => {
            body.resize(len, 0);
            reader
                .read_exact(&mut body)
                .map_err(|e| format!("body: {e}"))?;
        }
        None => {
            reader
                .read_to_end(&mut body)
                .map_err(|e| format!("body: {e}"))?;
        }
    }
    Ok(HttpReply {
        status,
        headers,
        body,
    })
}
