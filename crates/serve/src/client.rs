//! A minimal blocking HTTP/1.1 client for the thin `mpstream
//! submit|status|fetch|cancel` subcommands, the cluster layer, and the
//! test suites — one request per connection (`Connection: close`),
//! `Content-Length` bodies plus the one chunked route the server
//! streams ([`http_stream_keyed`] for `GET /jobs/N/stream`), mirroring
//! exactly what the server implements. Every phase of the exchange is
//! bounded: connects time
//! out instead of hanging on a black-holed peer, and a refused
//! connection (daemon restarting, worker not up yet) is retried a
//! bounded number of times with the engine's deterministic exponential
//! backoff.

use crate::breaker::CircuitBreaker;
use crate::http::ChunkedReader;
use mpstream_core::engine::ResiliencePolicy;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A completed exchange.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Response status code.
    pub status: u16,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl HttpReply {
    /// First header with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Timeout and retry budget for one exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientOpts {
    /// TCP connect deadline per attempt.
    pub connect_timeout: Duration,
    /// Socket read deadline (covers the whole response).
    pub read_timeout: Duration,
    /// Socket write deadline.
    pub write_timeout: Duration,
    /// Extra connect attempts after a refused connection (0 = fail on
    /// the first refusal). Other errors never retry — only "nothing is
    /// listening yet", the one failure that is routinely transient.
    pub connect_retries: u32,
}

impl Default for ClientOpts {
    fn default() -> Self {
        ClientOpts {
            connect_timeout: Duration::from_secs(10),
            read_timeout: Duration::from_secs(120),
            write_timeout: Duration::from_secs(30),
            connect_retries: 3,
        }
    }
}

/// Connect with per-attempt timeouts, retrying refused connections with
/// the engine's deterministic backoff (10ms base, 500ms cap — same
/// doubling schedule sweeps use, so reruns sleep identically).
fn connect(addr: &str, opts: &ClientOpts) -> Result<TcpStream, String> {
    let backoff = ResiliencePolicy::retrying(opts.connect_retries)
        .with_backoff(Duration::from_millis(10), Duration::from_millis(500));
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        // Resolve fresh each attempt (connect_timeout needs a SocketAddr).
        let resolved = addr
            .to_socket_addrs()
            .map_err(|e| format!("resolve {addr}: {e}"))?
            .next()
            .ok_or_else(|| format!("resolve {addr}: no addresses"))?;
        match TcpStream::connect_timeout(&resolved, opts.connect_timeout) {
            Ok(stream) => return Ok(stream),
            Err(e)
                if e.kind() == std::io::ErrorKind::ConnectionRefused
                    && attempt <= opts.connect_retries =>
            {
                std::thread::sleep(backoff.backoff_after(attempt));
            }
            Err(e) => return Err(format!("connect {addr}: {e}")),
        }
    }
}

/// Perform one request against `addr` (e.g. `127.0.0.1:8377`) with the
/// default timeouts and retry budget.
pub fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> Result<HttpReply, String> {
    http_request_opts(addr, method, path, body, &ClientOpts::default())
}

/// Perform one request against `addr` under explicit `opts`.
pub fn http_request_opts(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    opts: &ClientOpts,
) -> Result<HttpReply, String> {
    http_request_keyed(addr, method, path, body, None, opts)
}

/// [`http_request_opts`] with an optional tenant API key, sent as
/// `Authorization: Bearer <key>` (the server also accepts `X-Api-Key`).
pub fn http_request_keyed(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    api_key: Option<&str>,
    opts: &ClientOpts,
) -> Result<HttpReply, String> {
    let stream = connect(addr, opts)?;
    stream
        .set_read_timeout(Some(opts.read_timeout))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(opts.write_timeout))
        .map_err(|e| e.to_string())?;
    let auth = match api_key {
        Some(key) => format!("Authorization: Bearer {key}\r\n"),
        None => String::new(),
    };
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\n{auth}Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .map_err(|e| format!("send: {e}"))?;
    writer.write_all(body).map_err(|e| format!("send: {e}"))?;
    writer.flush().map_err(|e| format!("send: {e}"))?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("status line: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("headers: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    let mut body = Vec::new();
    match content_length {
        Some(len) => {
            body.resize(len, 0);
            reader
                .read_exact(&mut body)
                .map_err(|e| format!("body: {e}"))?;
        }
        None => {
            reader
                .read_to_end(&mut body)
                .map_err(|e| format!("body: {e}"))?;
        }
    }
    Ok(HttpReply {
        status,
        headers,
        body,
    })
}

/// How the server answered a stream request.
#[derive(Debug)]
pub enum StreamReply {
    /// 200 with a chunked body: read records incrementally.
    Open(StreamReader),
    /// Any buffered (`Content-Length`) answer — 401/404/429/...
    Refused(HttpReply),
}

/// The open stream: yields each decoded line (a checkpoint record, a
/// `: comment`, or the final status line) as its chunk arrives.
#[derive(Debug)]
pub struct StreamReader {
    lines: BufReader<ChunkedReader<BufReader<TcpStream>>>,
}

impl StreamReader {
    /// Next line off the stream, without its newline. `Ok(None)` is the
    /// clean end (terminator chunk seen). A truncated stream — server
    /// died, connection cut — is an `Err`, never a quiet `None`.
    pub fn next_line(&mut self) -> Result<Option<String>, String> {
        let mut line = String::new();
        match self.lines.read_line(&mut line) {
            Ok(0) => Ok(None),
            Ok(_) => {
                while line.ends_with('\n') || line.ends_with('\r') {
                    line.pop();
                }
                Ok(Some(line))
            }
            Err(e) => Err(format!("stream read: {e}")),
        }
    }

    /// Did the stream end with the terminator chunk?
    pub fn finished(&self) -> bool {
        self.lines.get_ref().finished()
    }
}

/// Open `GET {path}` as a live stream. A 200 with chunked framing
/// becomes [`StreamReply::Open`]; any other answer is read to
/// completion and returned buffered. The socket read timeout is
/// `opts.read_timeout` *per read* — the server's ~1s heartbeats keep an
/// idle stream well inside any sane budget, so a tripped timeout means
/// the server is actually gone, not merely quiet.
pub fn http_stream_keyed(
    addr: &str,
    path: &str,
    api_key: Option<&str>,
    opts: &ClientOpts,
) -> Result<StreamReply, String> {
    let stream = connect(addr, opts)?;
    stream
        .set_read_timeout(Some(opts.read_timeout))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(opts.write_timeout))
        .map_err(|e| e.to_string())?;
    let auth = match api_key {
        Some(key) => format!("Authorization: Bearer {key}\r\n"),
        None => String::new(),
    };
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    write!(
        writer,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\n{auth}Connection: close\r\n\r\n"
    )
    .map_err(|e| format!("send: {e}"))?;
    writer.flush().map_err(|e| format!("send: {e}"))?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("status line: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("headers: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    if status == 200 && chunked {
        return Ok(StreamReply::Open(StreamReader {
            lines: BufReader::new(ChunkedReader::new(reader)),
        }));
    }
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    let mut body = Vec::new();
    match content_length {
        Some(len) => {
            body.resize(len, 0);
            reader
                .read_exact(&mut body)
                .map_err(|e| format!("body: {e}"))?;
        }
        None => {
            reader
                .read_to_end(&mut body)
                .map_err(|e| format!("body: {e}"))?;
        }
    }
    Ok(StreamReply::Refused(HttpReply {
        status,
        headers,
        body,
    }))
}

/// [`http_request_opts`] guarded by a [`CircuitBreaker`]: a call is
/// refused instantly (without burning the connect-retry budget) while
/// the breaker quarantines the peer. Transport errors and 5xx replies
/// count as failures; any other reply closes the breaker. 4xx replies
/// are successes here — the peer is up and answering, it just dislikes
/// the request.
pub fn http_request_breaker(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    opts: &ClientOpts,
    breaker: &CircuitBreaker,
) -> Result<HttpReply, String> {
    if let Err(wait) = breaker.try_acquire() {
        return Err(format!(
            "circuit open for {addr}: retry in {}ms",
            wait.as_millis()
        ));
    }
    match http_request_opts(addr, method, path, body, opts) {
        Ok(reply) if reply.status >= 500 => {
            breaker.on_failure();
            Ok(reply)
        }
        Ok(reply) => {
            breaker.on_success();
            Ok(reply)
        }
        Err(e) => {
            breaker.on_failure();
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    /// A port nothing listens on: bind, note the port, drop the
    /// listener. (The OS won't reassign it to another process within
    /// the test's lifetime often enough to matter, and a refused
    /// connection is exactly what we want either way.)
    fn dead_addr() -> String {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        addr
    }

    #[test]
    fn refused_connection_retries_then_reports() {
        let addr = dead_addr();
        let opts = ClientOpts {
            connect_retries: 2,
            ..ClientOpts::default()
        };
        let start = Instant::now();
        let err = http_request_opts(&addr, "GET", "/healthz", b"", &opts).unwrap_err();
        assert!(err.contains("connect"), "{err}");
        // 2 retries at 10ms + 20ms deterministic backoff.
        assert!(start.elapsed() >= Duration::from_millis(30), "{err}");
    }

    #[test]
    fn zero_retry_budget_fails_fast() {
        let addr = dead_addr();
        let opts = ClientOpts {
            connect_retries: 0,
            ..ClientOpts::default()
        };
        let start = Instant::now();
        assert!(http_request_opts(&addr, "GET", "/", b"", &opts).is_err());
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "no backoff sleeps"
        );
    }

    #[test]
    fn breaker_opens_on_dead_peer_and_skips_connect_retries() {
        let addr = dead_addr();
        let opts = ClientOpts {
            connect_retries: 0,
            ..ClientOpts::default()
        };
        let breaker = CircuitBreaker::new(crate::breaker::BreakerOpts {
            failure_threshold: 2,
            cooldown: Duration::from_secs(30),
            max_jitter: Duration::ZERO,
            seed: 7,
        });
        for _ in 0..2 {
            let err =
                http_request_breaker(&addr, "GET", "/healthz", b"", &opts, &breaker).unwrap_err();
            assert!(err.contains("connect"), "{err}");
        }
        assert_eq!(breaker.opens(), 1);
        // Open: the refusal is instant and never touches the network.
        let start = Instant::now();
        let err = http_request_breaker(&addr, "GET", "/healthz", b"", &opts, &breaker).unwrap_err();
        assert!(err.contains("circuit open"), "{err}");
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn unresolvable_host_is_an_error_not_a_panic() {
        let err = http_request_opts(
            "no-such-host.invalid:1",
            "GET",
            "/",
            b"",
            &ClientOpts::default(),
        )
        .unwrap_err();
        assert!(err.contains("resolve") || err.contains("connect"), "{err}");
    }
}
