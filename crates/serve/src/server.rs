//! The daemon: a `TcpListener` accept loop in front of a bounded
//! worker pool, routing the small JSON/text API onto the
//! [`JobManager`] and [`ResultStore`].
//!
//! Backpressure is explicit at both layers. Connections beyond the
//! worker pool's buffered channel get an inline `503 Retry-After: 1`
//! and are counted, never silently dropped; submits beyond the job
//! queue's capacity get the same treatment from the manager. Shutdown
//! is graceful: the trigger (SIGTERM via [`crate::signal`], or a test
//! handle) sets a flag and self-connects to unblock `accept`; the
//! accept loop stops, workers finish their current exchanges and
//! drain, the in-flight job is cooperatively cancelled and re-queued,
//! and `run` returns so the process can exit 0.
//!
//! One route escapes the request/response mold: `GET /jobs/N/stream`
//! is a chunked long-poll that replays the job's checkpoint records
//! and then tails new ones as points finish. It runs on a detached
//! streamer thread (`stream_job`) so a stream held open for a long
//! sweep never pins one of the pool's workers; admission (auth, rate
//! limit, 404) happens on the worker *before* the first chunk, so
//! refusals are ordinary buffered responses.

use crate::http::{
    parse_request, write_chunk, write_chunk_terminator, write_chunked_header, DeadlineStream,
    ParseError, Request, Response,
};
use crate::jobs::{JobManager, SubmitError};
use crate::metrics::Metrics;
use crate::retention::RetentionPolicy;
use crate::store::{JobState, ResultQuery, ResultStore};
use crate::tenant::{request_key, TenantRegistry};
use mpstream_core::json::JsonLine;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// A pluggable route consulted *before* the built-in API. Returning
/// `None` falls through to the standard routes. The cluster coordinator
/// registers its `/register`, `/lease`, `/heartbeat` and `/complete`
/// endpoints through this without the base daemon knowing about them.
pub type RouteHook = Arc<dyn Fn(&Request) -> Option<Response> + Send + Sync>;

/// Server configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOpts {
    /// Bind address, e.g. `127.0.0.1:8377` (`:0` picks a free port).
    pub addr: String,
    /// Result-store directory.
    pub store_dir: PathBuf,
    /// HTTP worker threads (the accept pool's width).
    pub http_workers: usize,
    /// Job-queue capacity before submits get 503.
    pub queue_capacity: usize,
    /// Total time one request may take to arrive, headers and body
    /// included. Slow-drip clients exceed it and get 408 — they cannot
    /// pin a pool worker past this budget.
    pub request_deadline: Duration,
    /// Requests served per connection before it is closed (keep-alive
    /// recycling, so one chatty peer cannot hold a worker forever).
    pub max_requests_per_conn: usize,
    /// `tenants.jsonl` path; `None` runs anonymous-only.
    pub tenants_file: Option<PathBuf>,
    /// Store retention bounds (default unbounded).
    pub retention: RetentionPolicy,
    /// Chaos-test profile name; applied by [`Server::bind`] on top of
    /// the other fields. Test hook for the chaos-soak harness.
    pub chaos_profile: Option<String>,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            addr: "127.0.0.1:8377".into(),
            store_dir: PathBuf::from("mpstream-store"),
            http_workers: 4,
            queue_capacity: 16,
            request_deadline: Duration::from_secs(10),
            max_requests_per_conn: 256,
            tenants_file: None,
            retention: RetentionPolicy::unbounded(),
            chaos_profile: None,
        }
    }
}

impl ServeOpts {
    /// Overlay a named chaos profile: aggressive small limits that make
    /// overload and retention behavior reachable in seconds, plus the
    /// built-in chaos tenant pair ([`TenantRegistry::chaos`]).
    pub fn apply_chaos_profile(&mut self, name: &str) -> Result<(), String> {
        match name {
            "quick" => {
                self.queue_capacity = 8;
                self.request_deadline = Duration::from_secs(2);
                self.max_requests_per_conn = 64;
                self.retention = RetentionPolicy {
                    max_jobs: 16,
                    max_bytes: 1 << 20,
                    min_age: Duration::ZERO,
                };
                Ok(())
            }
            other => Err(format!("unknown chaos profile '{other}' (expected: quick)")),
        }
    }
}

/// Hands out of a running server: trigger shutdown from another thread.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Begin graceful shutdown: set the flag and poke the accept loop.
    pub fn trigger(&self) {
        self.flag.store(true, Ordering::SeqCst);
        // Self-connect so a blocked accept() wakes up and sees the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

struct Shared {
    manager: Arc<JobManager>,
    metrics: Arc<Metrics>,
    hook: OnceLock<RouteHook>,
    tenants: TenantRegistry,
    request_deadline: Duration,
    max_requests_per_conn: usize,
    /// The server's shutdown flag, also watched by detached streamer
    /// threads so live streams end promptly when the daemon drains.
    shutdown: Arc<AtomicBool>,
}

/// A bound (not yet running) server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    opts: ServeOpts,
}

impl Server {
    /// Open the store, build the manager, bind the listener.
    pub fn bind(mut opts: ServeOpts) -> std::io::Result<Server> {
        let invalid = |why: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, why);
        if let Some(profile) = opts.chaos_profile.clone() {
            opts.apply_chaos_profile(&profile).map_err(invalid)?;
        }
        let tenants = if opts.chaos_profile.is_some() {
            TenantRegistry::chaos()
        } else if let Some(path) = &opts.tenants_file {
            TenantRegistry::load(path).map_err(invalid)?
        } else {
            TenantRegistry::anonymous_only()
        };
        let metrics = Arc::new(Metrics::default());
        let store = Arc::new(ResultStore::open_with(&opts.store_dir, opts.retention)?);
        // Publish what startup compaction did — these numbers used to
        // live only in the banner line and were lost to scraping.
        let startup = store.startup_stats();
        Metrics::set(&metrics.store_files_compacted, startup.files as u64);
        Metrics::set(&metrics.store_records_kept, startup.compaction.kept as u64);
        Metrics::set(
            &metrics.store_records_superseded,
            startup.compaction.superseded as u64,
        );
        Metrics::set(
            &metrics.store_records_corrupt,
            startup.compaction.corrupt as u64,
        );
        let manager = JobManager::new(store, Arc::clone(&metrics), opts.queue_capacity);
        let listener = TcpListener::bind(&opts.addr)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                manager,
                metrics,
                hook: OnceLock::new(),
                tenants,
                request_deadline: opts.request_deadline,
                max_requests_per_conn: opts.max_requests_per_conn.max(1),
                shutdown: Arc::clone(&shutdown),
            }),
            shutdown,
            opts,
        })
    }

    /// The bound address (resolves `:0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The store behind this server.
    pub fn store(&self) -> Arc<ResultStore> {
        Arc::clone(self.shared.manager.store())
    }

    /// The daemon's metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// The job manager.
    pub fn manager(&self) -> Arc<JobManager> {
        Arc::clone(&self.shared.manager)
    }

    /// Install a [`RouteHook`] consulted before the built-in routes.
    /// First caller wins; later calls are ignored.
    pub fn set_route_hook(&self, hook: RouteHook) {
        let _ = self.shared.hook.set(hook);
    }

    /// A handle that can stop [`run`](Self::run) from another thread.
    pub fn shutdown_handle(&self) -> std::io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
            addr: self.local_addr()?,
        })
    }

    /// Serve until shutdown is triggered, then drain and return.
    pub fn run(self) -> std::io::Result<()> {
        let runner = self.shared.manager.spawn_runner();

        // Periodic retention so long-idle daemons still converge to
        // their bounds (job completions also trigger a pass).
        let gc = (!self.opts.retention.is_unbounded()).then(|| {
            let store = self.store();
            let stop = Arc::clone(&self.shutdown);
            std::thread::Builder::new()
                .name("mpstream-store-gc".into())
                .spawn(move || {
                    loop {
                        // ~5s cadence, checking for shutdown every 250ms.
                        for _ in 0..20 {
                            if stop.load(Ordering::SeqCst) {
                                return;
                            }
                            std::thread::sleep(Duration::from_millis(250));
                        }
                        if let Err(why) = store.run_retention() {
                            eprintln!("mpstream serve: retention pass failed: {why}");
                        }
                    }
                })
                .expect("spawn store gc")
        });

        let (tx, rx) = sync_channel::<TcpStream>(self.opts.http_workers * 2);
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<_> = (0..self.opts.http_workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name(format!("mpstream-http-{i}"))
                    .spawn(move || worker_loop(&rx, &shared))
                    .expect("spawn http worker")
            })
            .collect();

        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            // Responses are small and latency-bound; leaving Nagle on
            // costs ~40ms per keep-alive round trip to delayed ACKs.
            let _ = stream.set_nodelay(true);
            match tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(stream)) => {
                    // Accept pool saturated: shed the connection loudly.
                    Metrics::inc(&self.shared.metrics.connections_rejected);
                    shed(stream);
                }
                Err(TrySendError::Disconnected(_)) => break,
            }
        }

        // Drain: no new connections; workers finish buffered ones.
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        // Stop the runner; an in-flight job is cancelled cooperatively
        // and re-queued (its finished points are already checkpointed).
        self.shared.manager.shutdown();
        let _ = runner.join();
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(gc) = gc {
            let _ = gc.join();
        }
        Ok(())
    }
}

/// Best-effort inline 503 for a connection that never got a worker.
fn shed(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let _ = Response::text(503, "server saturated; retry\n")
        .header("Retry-After", "1")
        .write_to(&mut stream, true);
    drain(&stream);
}

/// Read the peer's remaining bytes before closing. Dropping a socket
/// with unread input makes the kernel answer with RST, which can
/// destroy a response the peer has not read yet — a shed 503 or a 400
/// would be lost to "connection reset". Bounded by the read timeout.
fn drain(stream: &TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 1024];
    let mut budget = 64 * 1024;
    while budget > 0 {
        match std::io::Read::read(&mut (&*stream), &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget -= n.min(budget),
        }
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, shared: &Arc<Shared>) {
    loop {
        let stream = {
            let guard = rx.lock().expect("http rx mutex poisoned");
            guard.recv()
        };
        match stream {
            Ok(s) => handle_connection(s, shared),
            Err(_) => return, // sender dropped: shutdown
        }
    }
}

/// Serve one connection: parse/route/respond until close, error,
/// request deadline, or the per-connection request cap.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(DeadlineStream::new(stream, shared.request_deadline));
    let mut served = 0usize;
    loop {
        // Each request gets a fresh total budget; within one request
        // the clock never resets, so slow-drip delivery hits 408.
        reader.get_mut().arm(shared.request_deadline);
        match parse_request(&mut reader) {
            Ok(None) => return,
            Err(e) => {
                if matches!(e, ParseError::TimedOut { mid_request: true }) {
                    Metrics::inc(&shared.metrics.http_timeouts);
                }
                if let Some(status) = e.status() {
                    Metrics::inc(&shared.metrics.http_client_errors);
                    if Response::text(status, format!("{}\n", e.reason()))
                        .write_to(&mut writer, true)
                        .is_ok()
                    {
                        drain(&writer);
                    }
                }
                return;
            }
            Ok(Some(req)) => {
                Metrics::inc(&shared.metrics.http_requests);
                served += 1;
                let capped = served >= shared.max_requests_per_conn;
                if capped {
                    Metrics::inc(&shared.metrics.conn_requests_capped);
                }
                let close = req.wants_close() || capped;
                if let Some(job) = stream_target(&req) {
                    // The one route that outlives this exchange: hand
                    // the socket to a detached streamer and free this
                    // pool worker. The stream always ends the
                    // connection, so keep-alive state is moot.
                    serve_stream(&req, writer, shared, job);
                    return;
                }
                let resp = route(&req, shared);
                if (400..500).contains(&resp.status()) {
                    Metrics::inc(&shared.metrics.http_client_errors);
                }
                if resp.write_to(&mut writer, close).is_err() || close {
                    return;
                }
            }
        }
    }
}

/// Is this request the streaming route (`GET /jobs/{id}/stream`)?
fn stream_target(req: &Request) -> Option<u64> {
    if req.method != "GET" {
        return None;
    }
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["jobs", id, "stream"] => parse_id(id),
        _ => None,
    }
}

/// Admit and open a result stream. Everything that can refuse — auth,
/// rate limit, unknown job — happens here on the pool worker, answered
/// as a plain buffered response *before* any chunk is written. Only an
/// admitted stream spawns the detached streamer thread.
fn serve_stream(req: &Request, mut writer: TcpStream, shared: &Arc<Shared>, id: u64) {
    let refuse = |mut writer: TcpStream, resp: Response| {
        Metrics::inc(&shared.metrics.http_client_errors);
        if resp.write_to(&mut writer, true).is_ok() {
            drain(&writer);
        }
    };
    // Opening a stream counts as one admitted request for the tenant,
    // exactly like any other API hit.
    let Some(tenant) = shared.tenants.resolve(request_key(req)) else {
        Metrics::inc(&shared.metrics.http_unauthorized);
        refuse(writer, json_error(401, "unknown API key"));
        return;
    };
    let counters = shared.metrics.tenant(tenant.name());
    Metrics::inc(&counters.requests);
    if let Err(wait) = tenant.try_admit() {
        Metrics::inc(&shared.metrics.http_throttled);
        Metrics::inc(&counters.throttled);
        let secs = wait.as_secs() + u64::from(wait.subsec_nanos() > 0);
        refuse(
            writer,
            json_error(429, "rate limit exceeded").header("Retry-After", secs.max(1).to_string()),
        );
        return;
    }
    if shared.manager.status(id).is_none() {
        refuse(writer, json_error(404, "no such job"));
        return;
    }
    if write_chunked_header(&mut writer, 200, "application/json").is_err() {
        return;
    }
    Metrics::inc(&shared.metrics.stream_opened);
    Metrics::inc(&shared.metrics.stream_active);
    let thread_shared = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name(format!("mpstream-stream-{id}"))
        .spawn(move || stream_job(writer, &thread_shared, id));
    if spawned.is_err() {
        // Thread exhaustion: the socket was dropped with the closure,
        // so the client sees a truncated (never "finished") stream.
        Metrics::dec(&shared.metrics.stream_active);
    }
}

/// Streamer thread body: run the feed, then settle the books whatever
/// way it ended.
fn stream_job(mut writer: TcpStream, shared: &Shared, id: u64) {
    stream_job_feed(&mut writer, shared, id);
    Metrics::dec(&shared.metrics.stream_active);
    drain(&writer);
}

/// The live feed: replay the records already on disk, then tail the
/// checkpoint as points finish, one chunk per record line. Idle spells
/// emit `: heartbeat` comment chunks so client read deadlines and
/// intermediaries see traffic. Ends with one status line and the
/// terminator chunk at terminal state (or a current status line at
/// daemon shutdown, so the client knows to reconnect). A write error
/// means the client went away — the job itself is never touched.
fn stream_job_feed(w: &mut TcpStream, shared: &Shared, id: u64) {
    const POLL: Duration = Duration::from_millis(25);
    const HEARTBEAT: Duration = Duration::from_secs(1);
    let store = shared.manager.store();
    let mut sent = 0usize;
    let mut idle = Duration::ZERO;
    loop {
        // State strictly before lines: the runner appends every record
        // before it marks the job terminal, so a terminal state
        // observed *here* guarantees the read below sees every record.
        let status = shared.manager.status(id);
        let lines = store.result_lines(id);
        let fresh = lines.len() > sent;
        for line in lines.iter().skip(sent) {
            if write_chunk(w, format!("{line}\n").as_bytes()).is_err() {
                return;
            }
            Metrics::inc(&shared.metrics.stream_records);
            sent += 1;
        }
        match status {
            None => {
                // Evicted by retention mid-stream: no terminal status
                // will ever appear; say why and end cleanly.
                let _ = write_chunk(w, b": job evicted from store\n");
                let _ = write_chunk_terminator(w);
                return;
            }
            Some((rec, done)) if !rec.state.is_live() => {
                let _ = write_chunk(w, (job_status_line(&rec, done) + "\n").as_bytes());
                let _ = write_chunk_terminator(w);
                return;
            }
            Some((rec, done)) if shared.shutdown.load(Ordering::SeqCst) => {
                // Daemon draining: end with the current (live) status so
                // the client can tell "stream over" from "job over".
                let _ = write_chunk(w, (job_status_line(&rec, done) + "\n").as_bytes());
                let _ = write_chunk_terminator(w);
                return;
            }
            Some(_) => {}
        }
        if fresh {
            idle = Duration::ZERO;
        } else {
            std::thread::sleep(POLL);
            idle += POLL;
            if idle >= HEARTBEAT {
                if write_chunk(w, b": heartbeat\n").is_err() {
                    return;
                }
                idle = Duration::ZERO;
            }
        }
    }
}

fn json_error(status: u16, message: &str) -> Response {
    let mut w = JsonLine::new();
    w.str_field("error", message);
    Response::json(status, w.finish() + "\n")
}

fn job_status_line(rec: &crate::store::JobRecord, done: usize) -> String {
    let mut w = JsonLine::new();
    w.u64_field("id", rec.id);
    w.str_field("state", rec.state.label());
    w.u64_field("done", done as u64);
    w.u64_field("total", rec.total as u64);
    if !rec.error.is_empty() {
        w.str_field("error", &rec.error);
    }
    w.finish()
}

/// Dispatch one parsed request: hook routes and health/metrics first
/// (exempt from admission — monitoring must reach an overloaded
/// daemon, and cluster-internal traffic polices itself), then the
/// tenant admission pipeline (authenticate, rate-limit), then the API.
fn route(req: &Request, shared: &Arc<Shared>) -> Response {
    if let Some(hook) = shared.hook.get() {
        if let Some(resp) = hook(req) {
            return resp;
        }
    }
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let manager = &shared.manager;
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => return Response::text(200, "ok\n"),
        ("GET", ["metrics"]) => {
            // Refresh the gauges at scrape time.
            Metrics::set(&shared.metrics.queue_depth, manager.queue_depth() as u64);
            let store = manager.store();
            Metrics::set(&shared.metrics.store_jobs, store.job_count() as u64);
            Metrics::set(&shared.metrics.store_bytes, store.disk_usage());
            let (evicted, reclaimed) = store.retention_counters();
            Metrics::set(&shared.metrics.store_evicted, evicted);
            Metrics::set(&shared.metrics.store_bytes_reclaimed, reclaimed);
            return Response::text(200, shared.metrics.render_prometheus());
        }
        _ => {}
    }

    let Some(tenant) = shared.tenants.resolve(request_key(req)) else {
        Metrics::inc(&shared.metrics.http_unauthorized);
        return json_error(401, "unknown API key");
    };
    let counters = shared.metrics.tenant(tenant.name());
    Metrics::inc(&counters.requests);
    if let Err(wait) = tenant.try_admit() {
        Metrics::inc(&shared.metrics.http_throttled);
        Metrics::inc(&counters.throttled);
        // Ceil to whole seconds, never 0: "come back when a token is up."
        let secs = wait.as_secs() + u64::from(wait.subsec_nanos() > 0);
        return json_error(429, "rate limit exceeded")
            .header("Retry-After", secs.max(1).to_string());
    }

    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"]) => {
            let Ok(body) = std::str::from_utf8(&req.body) else {
                return json_error(400, "body must be utf-8 JSON");
            };
            match manager.submit_for(body.trim(), tenant.name(), tenant.queue_quota()) {
                Ok(rec) => {
                    Metrics::inc(&counters.submitted);
                    let mut w = JsonLine::new();
                    w.u64_field("id", rec.id);
                    w.str_field("state", rec.state.label());
                    w.u64_field("total", rec.total as u64);
                    Response::json(202, w.finish() + "\n")
                }
                Err(SubmitError::Busy { capacity }) => {
                    json_error(503, &format!("job queue full (capacity {capacity})"))
                        .header("Retry-After", "1")
                }
                Err(SubmitError::Quota { tenant, quota }) => {
                    Metrics::inc(&shared.metrics.http_throttled);
                    Metrics::inc(&counters.quota_rejected);
                    json_error(
                        429,
                        &format!("tenant {tenant} at queue quota ({quota} live jobs)"),
                    )
                    .header("Retry-After", "5")
                }
                Err(SubmitError::Invalid(why)) => json_error(400, &why),
                Err(SubmitError::Store(why)) => json_error(500, &why),
            }
        }
        ("GET", ["jobs"]) => {
            let mut body = String::new();
            for rec in manager.store().jobs() {
                let done = manager.store().done_points(rec.id);
                body.push_str(&job_status_line(&rec, done));
                body.push('\n');
            }
            Response::json(200, body)
        }
        ("GET", ["jobs", id]) => match parse_id(id).and_then(|id| manager.status(id)) {
            Some((rec, done)) => Response::json(200, job_status_line(&rec, done) + "\n"),
            None => json_error(404, "no such job"),
        },
        ("POST", ["jobs", id, "cancel"]) => {
            match parse_id(id).and_then(|id| manager.cancel(id).map(|s| (id, s))) {
                Some((id, state)) => {
                    let mut w = JsonLine::new();
                    w.u64_field("id", id);
                    w.str_field("state", state.label());
                    Response::json(200, w.finish() + "\n")
                }
                None => json_error(404, "no such job"),
            }
        }
        ("GET", ["jobs", id, "results"]) => match parse_id(id) {
            Some(id) if manager.store().get(id).is_some() => {
                let lines = manager.store().result_lines(id);
                let offset = req
                    .query_param("offset")
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or(0);
                let limit = req
                    .query_param("limit")
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or(256)
                    .min(4096);
                let page: Vec<&String> = lines.iter().skip(offset).take(limit).collect();
                let mut body = String::new();
                for line in &page {
                    body.push_str(line);
                    body.push('\n');
                }
                Response::json(200, body)
                    .header("X-Offset", offset.to_string())
                    .header("X-Count", page.len().to_string())
                    .header("X-Total", lines.len().to_string())
            }
            _ => json_error(404, "no such job"),
        },
        ("GET", ["jobs", id, "report"]) => match parse_id(id) {
            Some(id) => match manager.store().get(id) {
                Some(rec) if rec.state == JobState::Done => match manager.store().read_report(id) {
                    Some(report) => Response::text(200, report),
                    None => json_error(500, "report missing from store"),
                },
                Some(rec) => json_error(
                    404,
                    &format!("job is {}; report exists once done", rec.state.label()),
                ),
                None => json_error(404, "no such job"),
            },
            None => json_error(404, "no such job"),
        },
        ("GET", ["results"]) => {
            let q = ResultQuery {
                device: req.query_param("device").unwrap_or("").to_string(),
                config: req.query_param("config").unwrap_or("").to_string(),
                op: req.query_param("op").unwrap_or("").to_string(),
                job: req.query_param("job").and_then(|v| v.parse().ok()),
            };
            let lines = manager.store().query(&q);
            let mut body = String::new();
            for line in &lines {
                body.push_str(line);
                body.push('\n');
            }
            Response::json(200, body).header("X-Count", lines.len().to_string())
        }
        (_, ["healthz" | "metrics" | "jobs" | "results", ..]) => {
            json_error(405, "method not allowed")
        }
        _ => json_error(404, "no such endpoint"),
    }
}

fn parse_id(s: &str) -> Option<u64> {
    s.parse().ok()
}
