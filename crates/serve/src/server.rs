//! The daemon: a `TcpListener` accept loop in front of a bounded
//! worker pool, routing the small JSON/text API onto the
//! [`JobManager`] and [`ResultStore`].
//!
//! Backpressure is explicit at both layers. Connections beyond the
//! worker pool's buffered channel get an inline `503 Retry-After: 1`
//! and are counted, never silently dropped; submits beyond the job
//! queue's capacity get the same treatment from the manager. Shutdown
//! is graceful: the trigger (SIGTERM via [`crate::signal`], or a test
//! handle) sets a flag and self-connects to unblock `accept`; the
//! accept loop stops, workers finish their current exchanges and
//! drain, the in-flight job is cooperatively cancelled and re-queued,
//! and `run` returns so the process can exit 0.

use crate::http::{parse_request, Request, Response};
use crate::jobs::{JobManager, SubmitError};
use crate::metrics::Metrics;
use crate::store::{JobState, ResultQuery, ResultStore};
use mpstream_core::json::JsonLine;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// A pluggable route consulted *before* the built-in API. Returning
/// `None` falls through to the standard routes. The cluster coordinator
/// registers its `/register`, `/lease`, `/heartbeat` and `/complete`
/// endpoints through this without the base daemon knowing about them.
pub type RouteHook = Arc<dyn Fn(&Request) -> Option<Response> + Send + Sync>;

/// Server configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOpts {
    /// Bind address, e.g. `127.0.0.1:8377` (`:0` picks a free port).
    pub addr: String,
    /// Result-store directory.
    pub store_dir: PathBuf,
    /// HTTP worker threads (the accept pool's width).
    pub http_workers: usize,
    /// Job-queue capacity before submits get 503.
    pub queue_capacity: usize,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            addr: "127.0.0.1:8377".into(),
            store_dir: PathBuf::from("mpstream-store"),
            http_workers: 4,
            queue_capacity: 16,
        }
    }
}

/// Hands out of a running server: trigger shutdown from another thread.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Begin graceful shutdown: set the flag and poke the accept loop.
    pub fn trigger(&self) {
        self.flag.store(true, Ordering::SeqCst);
        // Self-connect so a blocked accept() wakes up and sees the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

struct Shared {
    manager: Arc<JobManager>,
    metrics: Arc<Metrics>,
    hook: OnceLock<RouteHook>,
}

/// A bound (not yet running) server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    opts: ServeOpts,
}

impl Server {
    /// Open the store, build the manager, bind the listener.
    pub fn bind(opts: ServeOpts) -> std::io::Result<Server> {
        let metrics = Arc::new(Metrics::default());
        let store = Arc::new(ResultStore::open(&opts.store_dir)?);
        let manager = JobManager::new(store, Arc::clone(&metrics), opts.queue_capacity);
        let listener = TcpListener::bind(&opts.addr)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                manager,
                metrics,
                hook: OnceLock::new(),
            }),
            shutdown: Arc::new(AtomicBool::new(false)),
            opts,
        })
    }

    /// The bound address (resolves `:0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The store behind this server.
    pub fn store(&self) -> Arc<ResultStore> {
        Arc::clone(self.shared.manager.store())
    }

    /// The daemon's metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// The job manager.
    pub fn manager(&self) -> Arc<JobManager> {
        Arc::clone(&self.shared.manager)
    }

    /// Install a [`RouteHook`] consulted before the built-in routes.
    /// First caller wins; later calls are ignored.
    pub fn set_route_hook(&self, hook: RouteHook) {
        let _ = self.shared.hook.set(hook);
    }

    /// A handle that can stop [`run`](Self::run) from another thread.
    pub fn shutdown_handle(&self) -> std::io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
            addr: self.local_addr()?,
        })
    }

    /// Serve until shutdown is triggered, then drain and return.
    pub fn run(self) -> std::io::Result<()> {
        let runner = self.shared.manager.spawn_runner();

        let (tx, rx) = sync_channel::<TcpStream>(self.opts.http_workers * 2);
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<_> = (0..self.opts.http_workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name(format!("mpstream-http-{i}"))
                    .spawn(move || worker_loop(&rx, &shared))
                    .expect("spawn http worker")
            })
            .collect();

        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            match tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(stream)) => {
                    // Accept pool saturated: shed the connection loudly.
                    Metrics::inc(&self.shared.metrics.connections_rejected);
                    shed(stream);
                }
                Err(TrySendError::Disconnected(_)) => break,
            }
        }

        // Drain: no new connections; workers finish buffered ones.
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        // Stop the runner; an in-flight job is cancelled cooperatively
        // and re-queued (its finished points are already checkpointed).
        self.shared.manager.shutdown();
        let _ = runner.join();
        Ok(())
    }
}

/// Best-effort inline 503 for a connection that never got a worker.
fn shed(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let _ = Response::text(503, "server saturated; retry\n")
        .header("Retry-After", "1")
        .write_to(&mut stream, true);
    drain(&stream);
}

/// Read the peer's remaining bytes before closing. Dropping a socket
/// with unread input makes the kernel answer with RST, which can
/// destroy a response the peer has not read yet — a shed 503 or a 400
/// would be lost to "connection reset". Bounded by the read timeout.
fn drain(stream: &TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 1024];
    let mut budget = 64 * 1024;
    while budget > 0 {
        match std::io::Read::read(&mut (&*stream), &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget -= n.min(budget),
        }
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, shared: &Arc<Shared>) {
    loop {
        let stream = {
            let guard = rx.lock().expect("http rx mutex poisoned");
            guard.recv()
        };
        match stream {
            Ok(s) => handle_connection(s, shared),
            Err(_) => return, // sender dropped: shutdown
        }
    }
}

/// Serve one connection: parse/route/respond until close or error.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match parse_request(&mut reader) {
            Ok(None) => return,
            Err(e) => {
                if let Some(status) = e.status() {
                    Metrics::inc(&shared.metrics.http_client_errors);
                    if Response::text(status, format!("{}\n", e.reason()))
                        .write_to(&mut writer, true)
                        .is_ok()
                    {
                        drain(&writer);
                    }
                }
                return;
            }
            Ok(Some(req)) => {
                Metrics::inc(&shared.metrics.http_requests);
                let close = req.wants_close();
                let resp = route(&req, shared);
                if (400..500).contains(&resp.status()) {
                    Metrics::inc(&shared.metrics.http_client_errors);
                }
                if resp.write_to(&mut writer, close).is_err() || close {
                    return;
                }
            }
        }
    }
}

fn json_error(status: u16, message: &str) -> Response {
    let mut w = JsonLine::new();
    w.str_field("error", message);
    Response::json(status, w.finish() + "\n")
}

fn job_status_line(rec: &crate::store::JobRecord, done: usize) -> String {
    let mut w = JsonLine::new();
    w.u64_field("id", rec.id);
    w.str_field("state", rec.state.label());
    w.u64_field("done", done as u64);
    w.u64_field("total", rec.total as u64);
    if !rec.error.is_empty() {
        w.str_field("error", &rec.error);
    }
    w.finish()
}

/// Dispatch one parsed request.
fn route(req: &Request, shared: &Arc<Shared>) -> Response {
    if let Some(hook) = shared.hook.get() {
        if let Some(resp) = hook(req) {
            return resp;
        }
    }
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let manager = &shared.manager;
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::text(200, "ok\n"),
        ("GET", ["metrics"]) => {
            // Refresh the queue gauge at scrape time.
            Metrics::set(&shared.metrics.queue_depth, manager.queue_depth() as u64);
            Response::text(200, shared.metrics.render_prometheus())
        }
        ("POST", ["jobs"]) => {
            let Ok(body) = std::str::from_utf8(&req.body) else {
                return json_error(400, "body must be utf-8 JSON");
            };
            match manager.submit(body.trim()) {
                Ok(rec) => {
                    let mut w = JsonLine::new();
                    w.u64_field("id", rec.id);
                    w.str_field("state", rec.state.label());
                    w.u64_field("total", rec.total as u64);
                    Response::json(202, w.finish() + "\n")
                }
                Err(SubmitError::Busy { capacity }) => {
                    json_error(503, &format!("job queue full (capacity {capacity})"))
                        .header("Retry-After", "1")
                }
                Err(SubmitError::Invalid(why)) => json_error(400, &why),
                Err(SubmitError::Store(why)) => json_error(500, &why),
            }
        }
        ("GET", ["jobs"]) => {
            let mut body = String::new();
            for rec in manager.store().jobs() {
                let done = manager.store().done_points(rec.id);
                body.push_str(&job_status_line(&rec, done));
                body.push('\n');
            }
            Response::json(200, body)
        }
        ("GET", ["jobs", id]) => match parse_id(id).and_then(|id| manager.status(id)) {
            Some((rec, done)) => Response::json(200, job_status_line(&rec, done) + "\n"),
            None => json_error(404, "no such job"),
        },
        ("POST", ["jobs", id, "cancel"]) => {
            match parse_id(id).and_then(|id| manager.cancel(id).map(|s| (id, s))) {
                Some((id, state)) => {
                    let mut w = JsonLine::new();
                    w.u64_field("id", id);
                    w.str_field("state", state.label());
                    Response::json(200, w.finish() + "\n")
                }
                None => json_error(404, "no such job"),
            }
        }
        ("GET", ["jobs", id, "results"]) => match parse_id(id) {
            Some(id) if manager.store().get(id).is_some() => {
                let lines = manager.store().result_lines(id);
                let offset = req
                    .query_param("offset")
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or(0);
                let limit = req
                    .query_param("limit")
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or(256)
                    .min(4096);
                let page: Vec<&String> = lines.iter().skip(offset).take(limit).collect();
                let mut body = String::new();
                for line in &page {
                    body.push_str(line);
                    body.push('\n');
                }
                Response::json(200, body)
                    .header("X-Offset", offset.to_string())
                    .header("X-Count", page.len().to_string())
                    .header("X-Total", lines.len().to_string())
            }
            _ => json_error(404, "no such job"),
        },
        ("GET", ["jobs", id, "report"]) => match parse_id(id) {
            Some(id) => match manager.store().get(id) {
                Some(rec) if rec.state == JobState::Done => match manager.store().read_report(id) {
                    Some(report) => Response::text(200, report),
                    None => json_error(500, "report missing from store"),
                },
                Some(rec) => json_error(
                    404,
                    &format!("job is {}; report exists once done", rec.state.label()),
                ),
                None => json_error(404, "no such job"),
            },
            None => json_error(404, "no such job"),
        },
        ("GET", ["results"]) => {
            let q = ResultQuery {
                device: req.query_param("device").unwrap_or("").to_string(),
                config: req.query_param("config").unwrap_or("").to_string(),
                op: req.query_param("op").unwrap_or("").to_string(),
                job: req.query_param("job").and_then(|v| v.parse().ok()),
            };
            let lines = manager.store().query(&q);
            let mut body = String::new();
            for line in &lines {
                body.push_str(line);
                body.push('\n');
            }
            Response::json(200, body).header("X-Count", lines.len().to_string())
        }
        (_, ["healthz" | "metrics" | "jobs" | "results", ..]) => {
            json_error(405, "method not allowed")
        }
        _ => json_error(404, "no such endpoint"),
    }
}

fn parse_id(s: &str) -> Option<u64> {
    s.parse().ok()
}
