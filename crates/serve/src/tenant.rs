//! Per-tenant admission control: API keys, token-bucket rate limits,
//! and queue quotas.
//!
//! Tenants are declared in a `tenants.jsonl` file (the workspace's flat
//! JSON dialect, one tenant per line) and resolved per request from
//! `Authorization: Bearer <key>` or `X-Api-Key: <key>`. Requests with
//! no key belong to the built-in anonymous tenant, which is unlimited
//! unless the file declares a tenant named `anon` with limits of its
//! own — so a daemon without a tenants file behaves exactly as before,
//! while a configured one can pin every client to a budget.
//!
//! Rate limiting is a classic token bucket per tenant: `rate_per_sec`
//! tokens accrue continuously up to `burst`, one request spends one
//! token, and an empty bucket yields the exact wait until the next
//! token — the HTTP layer turns that into `429` + `Retry-After`.
//! Queue quotas (`queue_quota` live jobs per tenant) are enforced by
//! the [`JobManager`](crate::jobs::JobManager) at submit time.

use mpstream_core::json::parse_flat_object;
use std::collections::HashMap;
use std::io::BufRead;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The tenant every keyless request maps to.
pub const ANONYMOUS: &str = "anon";

/// One tenant's declared limits. Zero means unlimited for both the
/// rate and the quota, so a bare `{"name":...,"key":...}` line grants
/// an identified but unthrottled tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name (the `/metrics` label and journal tag).
    pub name: String,
    /// API key presented by clients ("" only for the anonymous tenant).
    pub key: String,
    /// Sustained request rate (tokens per second; 0 = unlimited).
    pub rate_per_sec: f64,
    /// Bucket capacity (burst size; defaults to `rate_per_sec.max(1)`).
    pub burst: f64,
    /// Max live (queued or running) jobs (0 = unlimited).
    pub queue_quota: usize,
}

impl TenantSpec {
    /// An unlimited tenant with the given name and key.
    pub fn unlimited(name: &str, key: &str) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            key: key.to_string(),
            rate_per_sec: 0.0,
            burst: 1.0,
            queue_quota: 0,
        }
    }

    fn parse(line: &str) -> Result<TenantSpec, String> {
        let obj = parse_flat_object(line).ok_or("not a flat JSON object")?;
        // A typo'd limit field ("rate" for "rate_per_sec") must not
        // silently configure an unlimited tenant.
        for field in obj.keys() {
            if !matches!(
                field.as_str(),
                "name" | "key" | "rate_per_sec" | "burst" | "queue_quota"
            ) {
                return Err(format!("unknown tenant field \"{field}\""));
            }
        }
        let name = obj
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or("missing \"name\"")?
            .to_string();
        if name.is_empty() {
            return Err("empty \"name\"".into());
        }
        let key = obj
            .get("key")
            .and_then(|v| v.as_str())
            .unwrap_or("")
            .to_string();
        if key.is_empty() && name != ANONYMOUS {
            return Err(format!("tenant '{name}' has no \"key\""));
        }
        let rate_per_sec = match obj.get("rate_per_sec") {
            None => 0.0,
            Some(v) => v
                .as_f64()
                .filter(|r| r.is_finite() && *r >= 0.0)
                .ok_or("\"rate_per_sec\" must be a non-negative number")?,
        };
        let burst = match obj.get("burst") {
            None => rate_per_sec.max(1.0),
            Some(v) => v
                .as_f64()
                .filter(|b| b.is_finite() && *b >= 1.0)
                .ok_or("\"burst\" must be a number >= 1")?,
        };
        let queue_quota = match obj.get("queue_quota") {
            None => 0,
            Some(v) => v.as_u64().ok_or("\"queue_quota\" must be an integer")? as usize,
        };
        Ok(TenantSpec {
            name,
            key,
            rate_per_sec,
            burst,
            queue_quota,
        })
    }
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// A resolved tenant: its spec plus the live token bucket.
#[derive(Debug)]
pub struct Tenant {
    spec: TenantSpec,
    bucket: Mutex<Bucket>,
}

impl Tenant {
    fn new(spec: TenantSpec) -> Arc<Tenant> {
        let bucket = Bucket {
            tokens: spec.burst,
            last: Instant::now(),
        };
        Arc::new(Tenant {
            spec,
            bucket: Mutex::new(bucket),
        })
    }

    /// The tenant's name (metrics label, journal tag).
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// The tenant's live-job quota (0 = unlimited).
    pub fn queue_quota(&self) -> usize {
        self.spec.queue_quota
    }

    /// Spend one token, or report how long until one accrues. The
    /// `now`-taking form exists so tests can drive the clock.
    pub fn try_admit_at(&self, now: Instant) -> Result<(), Duration> {
        if self.spec.rate_per_sec <= 0.0 {
            return Ok(());
        }
        let mut b = self.bucket.lock().expect("tenant bucket poisoned");
        let dt = now.saturating_duration_since(b.last).as_secs_f64();
        b.tokens = (b.tokens + dt * self.spec.rate_per_sec).min(self.spec.burst);
        b.last = now;
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            Ok(())
        } else {
            Err(Duration::from_secs_f64(
                (1.0 - b.tokens) / self.spec.rate_per_sec,
            ))
        }
    }

    /// [`try_admit_at`](Self::try_admit_at) against the real clock.
    pub fn try_admit(&self) -> Result<(), Duration> {
        self.try_admit_at(Instant::now())
    }
}

/// The set of known tenants, resolvable by API key.
#[derive(Debug)]
pub struct TenantRegistry {
    by_key: HashMap<String, Arc<Tenant>>,
    anon: Arc<Tenant>,
}

impl Default for TenantRegistry {
    fn default() -> Self {
        TenantRegistry::anonymous_only()
    }
}

impl TenantRegistry {
    /// A registry with only the unlimited anonymous tenant — the
    /// no-tenants-file default, behaviourally identical to a daemon
    /// without admission control.
    pub fn anonymous_only() -> TenantRegistry {
        TenantRegistry {
            by_key: HashMap::new(),
            anon: Tenant::new(TenantSpec::unlimited(ANONYMOUS, "")),
        }
    }

    /// Build a registry from explicit specs (a tenant named [`ANONYMOUS`]
    /// replaces the built-in unlimited one). Duplicate keys or names are
    /// configuration errors, reported loudly rather than shadowed.
    pub fn from_specs(specs: Vec<TenantSpec>) -> Result<TenantRegistry, String> {
        let mut reg = TenantRegistry::anonymous_only();
        let mut names = HashMap::new();
        for spec in specs {
            if names.insert(spec.name.clone(), ()).is_some() {
                return Err(format!("duplicate tenant name '{}'", spec.name));
            }
            if spec.name == ANONYMOUS {
                reg.anon = Tenant::new(spec);
                continue;
            }
            let key = spec.key.clone();
            if reg.by_key.insert(key, Tenant::new(spec)).is_some() {
                return Err("duplicate tenant key".into());
            }
        }
        Ok(reg)
    }

    /// Load `tenants.jsonl`: one flat JSON object per line; blank lines
    /// and `#` comments are skipped. Any malformed line fails the load —
    /// a tenant silently dropped from a typo'd config would be a quota
    /// bypass.
    pub fn load(path: &Path) -> Result<TenantRegistry, String> {
        let f = std::fs::File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut specs = Vec::new();
        for (lineno, line) in std::io::BufReader::new(f).lines().enumerate() {
            let line = line.map_err(|e| format!("{}: {e}", path.display()))?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let spec = TenantSpec::parse(line)
                .map_err(|e| format!("{} line {}: {e}", path.display(), lineno + 1))?;
            specs.push(spec);
        }
        Self::from_specs(specs)
    }

    /// The built-in chaos-profile pair: a well-behaved unlimited tenant
    /// and a tightly throttled one, plus an unlimited anon — the cast
    /// the chaos-soak harness throws at the daemon.
    pub fn chaos() -> TenantRegistry {
        Self::from_specs(vec![
            TenantSpec {
                name: "steady".into(),
                key: "chaos-steady".into(),
                rate_per_sec: 0.0,
                burst: 1.0,
                queue_quota: 4,
            },
            TenantSpec {
                name: "bursty".into(),
                key: "chaos-bursty".into(),
                rate_per_sec: 5.0,
                burst: 5.0,
                queue_quota: 2,
            },
        ])
        .expect("built-in chaos tenants are valid")
    }

    /// How many keyed tenants are registered (excludes anon).
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Is only the anonymous tenant configured?
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Resolve a presented key: no key → the anonymous tenant;
    /// `Some(key)` → the tenant owning it, or `None` for an unknown key
    /// (the HTTP layer answers 401 — never silently demoted to anon,
    /// which would let a mistyped key bypass its tenant's limits).
    pub fn resolve(&self, key: Option<&str>) -> Option<&Arc<Tenant>> {
        match key {
            None => Some(&self.anon),
            Some(k) => self.by_key.get(k),
        }
    }

    /// The anonymous tenant.
    pub fn anonymous(&self) -> &Arc<Tenant> {
        &self.anon
    }
}

/// Extract the API key from parsed request headers: `Authorization:
/// Bearer <key>` (case-insensitive scheme) or `X-Api-Key: <key>`.
/// `None` when neither is present; `Some("")` never (empty keys read
/// as absent).
pub fn request_key(req: &crate::http::Request) -> Option<&str> {
    if let Some(auth) = req.header("authorization") {
        let mut parts = auth.trim().splitn(2, ' ');
        if let (Some(scheme), Some(token)) = (parts.next(), parts.next()) {
            if scheme.eq_ignore_ascii_case("bearer") && !token.trim().is_empty() {
                return Some(token.trim());
            }
        }
    }
    req.header("x-api-key")
        .map(str::trim)
        .filter(|k| !k.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, key: &str, rate: f64, burst: f64, quota: usize) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            key: key.into(),
            rate_per_sec: rate,
            burst,
            queue_quota: quota,
        }
    }

    #[test]
    fn bucket_spends_refills_and_reports_retry_after() {
        let t = Tenant::new(spec("a", "k", 2.0, 2.0, 0));
        let t0 = Instant::now();
        assert!(t.try_admit_at(t0).is_ok());
        assert!(t.try_admit_at(t0).is_ok());
        // Bucket drained: the third request inside the same instant
        // must wait half a second for the next token at 2/s.
        let wait = t.try_admit_at(t0).unwrap_err();
        assert!(
            (wait.as_secs_f64() - 0.5).abs() < 1e-9,
            "wait {wait:?} should be 0.5s"
        );
        // After 1s, one token accrued (capped at burst 2).
        assert!(t.try_admit_at(t0 + Duration::from_secs(1)).is_ok());
        assert!(t.try_admit_at(t0 + Duration::from_secs(1)).is_ok());
        assert!(t.try_admit_at(t0 + Duration::from_secs(1)).is_err());
    }

    #[test]
    fn zero_rate_is_unlimited() {
        let t = Tenant::new(spec("a", "k", 0.0, 1.0, 0));
        let t0 = Instant::now();
        for _ in 0..10_000 {
            assert!(t.try_admit_at(t0).is_ok());
        }
    }

    #[test]
    fn registry_resolves_keys_and_rejects_unknown() {
        let reg = TenantRegistry::from_specs(vec![
            spec("a", "key-a", 1.0, 1.0, 2),
            spec("b", "key-b", 0.0, 1.0, 0),
        ])
        .unwrap();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.resolve(Some("key-a")).unwrap().name(), "a");
        assert_eq!(reg.resolve(Some("key-b")).unwrap().queue_quota(), 0);
        assert_eq!(reg.resolve(None).unwrap().name(), ANONYMOUS);
        assert!(reg.resolve(Some("nope")).is_none());
    }

    #[test]
    fn anon_spec_overrides_the_builtin_unlimited_default() {
        let reg = TenantRegistry::from_specs(vec![spec(ANONYMOUS, "", 1.0, 1.0, 3)]).unwrap();
        let anon = reg.resolve(None).unwrap();
        assert_eq!(anon.queue_quota(), 3);
        let t0 = Instant::now();
        assert!(anon.try_admit_at(t0).is_ok());
        assert!(anon.try_admit_at(t0).is_err(), "anon is now rate limited");
    }

    #[test]
    fn duplicate_names_or_keys_fail_loudly() {
        assert!(TenantRegistry::from_specs(vec![
            spec("a", "k1", 0.0, 1.0, 0),
            spec("a", "k2", 0.0, 1.0, 0),
        ])
        .is_err());
        assert!(TenantRegistry::from_specs(vec![
            spec("a", "same", 0.0, 1.0, 0),
            spec("b", "same", 0.0, 1.0, 0),
        ])
        .is_err());
    }

    #[test]
    fn tenants_file_round_trips_and_rejects_typos() {
        let dir = std::env::temp_dir().join(format!("mpstream-tenants-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tenants.jsonl");
        std::fs::write(
            &path,
            "# comment\n\
             {\"name\":\"acme\",\"key\":\"acme-secret\",\"rate_per_sec\":5,\"burst\":10,\"queue_quota\":4}\n\
             \n\
             {\"name\":\"free\",\"key\":\"free-key\"}\n",
        )
        .unwrap();
        let reg = TenantRegistry::load(&path).unwrap();
        assert_eq!(reg.len(), 2);
        let acme = reg.resolve(Some("acme-secret")).unwrap();
        assert_eq!(acme.name(), "acme");
        assert_eq!(acme.queue_quota(), 4);
        assert_eq!(reg.resolve(Some("free-key")).unwrap().queue_quota(), 0);

        std::fs::write(&path, "{\"name\":\"x\"}\n").unwrap();
        let err = TenantRegistry::load(&path).unwrap_err();
        assert!(err.contains("line 1"), "{err}");

        // A misspelled limit field must fail loudly, not configure an
        // unlimited tenant.
        std::fs::write(&path, "{\"name\":\"x\",\"key\":\"k\",\"rate\":1}\n").unwrap();
        let err = TenantRegistry::load(&path).unwrap_err();
        assert!(err.contains("unknown tenant field \"rate\""), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn request_key_reads_bearer_and_x_api_key() {
        let req = |headers: &[(&str, &str)]| crate::http::Request {
            method: "GET".into(),
            path: "/jobs".into(),
            query: Vec::new(),
            headers: headers
                .iter()
                .map(|(n, v)| (n.to_string(), v.to_string()))
                .collect(),
            body: Vec::new(),
        };
        assert_eq!(
            request_key(&req(&[("authorization", "Bearer sekrit")])),
            Some("sekrit")
        );
        assert_eq!(
            request_key(&req(&[("authorization", "bearer sekrit")])),
            Some("sekrit")
        );
        assert_eq!(request_key(&req(&[("x-api-key", " k1 ")])), Some("k1"));
        // Bearer wins when both are present (it is the standard header).
        assert_eq!(
            request_key(&req(&[("authorization", "Bearer a"), ("x-api-key", "b")])),
            Some("a")
        );
        assert_eq!(request_key(&req(&[("authorization", "Basic xyz")])), None);
        assert_eq!(request_key(&req(&[("x-api-key", "")])), None);
        assert_eq!(request_key(&req(&[])), None);
    }
}
