//! The daemon's persistent result store: a directory of append-only
//! JSONL files, all in the `mpstream_core::json` dialect.
//!
//! * `jobs.jsonl` — the job journal. One line per state change; the
//!   last line per id wins. Replaying it at startup reconstructs every
//!   job the daemon has ever accepted, which is how completed sweeps
//!   survive restarts and how interrupted ones get re-queued.
//! * `job-<id>.jsonl` — one sweep checkpoint per job, written by the
//!   engine as workers finish points (the PR-2 checkpoint format,
//!   verbatim). Doubles as the job's incremental result feed: `GET
//!   /jobs/<id>/results` pages over its lines, and a restarted daemon
//!   resumes the sweep from it.
//! * `job-<id>.report` — the rendered report of a finished job, the
//!   exact bytes the offline `mpstream sweep` would print.
//!
//! Everything is append-then-flush, so a crash at any instant loses at
//! most one torn line. [`ResultStore::open`] compacts the journal and
//! every checkpoint on startup (last record per key, torn tails
//! dropped), converging the directory back to a clean state.

use crate::retention::{RetentionPolicy, RetentionStats};
use mpstream_core::json::{compact_jsonl, parse_flat_object, CompactStats, JsonLine};
use mpstream_core::Checkpoint;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Wall-clock seconds since the epoch — the journal's age notion for
/// retention. Coarse on purpose: eviction decisions span minutes.
fn now_unix() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Lifecycle of a job. `Queued` and `Running` are the live states a
/// restart re-queues; the other three are terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for the runner.
    Queued,
    /// Executing on the engine.
    Running,
    /// Finished; report written.
    Done,
    /// Aborted by an execution/store error (see the record's `error`).
    Failed,
    /// Cooperatively cancelled.
    Cancelled,
}

impl JobState {
    /// Wire/journal label.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parse a journal label.
    pub fn from_label(s: &str) -> Option<JobState> {
        match s {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "done" => Some(JobState::Done),
            "failed" => Some(JobState::Failed),
            "cancelled" => Some(JobState::Cancelled),
            _ => None,
        }
    }

    /// Is this a state a restarted daemon should resume?
    pub fn is_live(self) -> bool {
        matches!(self, JobState::Queued | JobState::Running)
    }
}

/// One job as the journal knows it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRecord {
    /// Job id (dense, assigned at submit).
    pub id: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// The job-spec JSON line as submitted.
    pub spec: String,
    /// Total sweep points the spec describes.
    pub total: usize,
    /// Failure reason when `state` is `Failed`, else empty.
    pub error: String,
    /// Tenant the job was submitted under ("" for pre-tenancy journals;
    /// treated as the anonymous tenant).
    pub tenant: String,
    /// Unix seconds of the last state change, stamped by
    /// [`ResultStore::record`]. Retention evicts oldest-first by this.
    pub updated_unix: u64,
}

impl JobRecord {
    fn render(&self) -> String {
        let mut w = JsonLine::new();
        w.u64_field("id", self.id);
        w.str_field("state", self.state.label());
        w.u64_field("total", self.total as u64);
        w.str_field("spec", &self.spec);
        w.str_field("error", &self.error);
        w.str_field("tenant", &self.tenant);
        w.u64_field("updated_unix", self.updated_unix);
        w.finish()
    }

    fn parse(line: &str) -> Option<JobRecord> {
        let obj = parse_flat_object(line)?;
        Some(JobRecord {
            id: obj.get("id")?.as_u64()?,
            state: JobState::from_label(obj.get("state")?.as_str()?)?,
            spec: obj.get("spec")?.as_str()?.to_string(),
            total: obj.get("total")?.as_u64()? as usize,
            error: obj.get("error")?.as_str()?.to_string(),
            // Absent in journals written before tenancy/retention:
            // default rather than reject, so old stores keep opening.
            tenant: obj
                .get("tenant")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string(),
            updated_unix: obj
                .get("updated_unix")
                .and_then(|v| v.as_u64())
                .unwrap_or(0),
        })
    }
}

/// Filters for the historical `GET /results` query. Empty strings match
/// everything; matching is case-insensitive substring.
#[derive(Debug, Clone, Default)]
pub struct ResultQuery {
    /// Substring of the measurement's device name.
    pub device: String,
    /// Substring of the configuration key (its `Debug` rendering).
    pub config: String,
    /// Kernel op name (`copy`/`scale`/`add`/`triad`).
    pub op: String,
    /// Restrict to one job id.
    pub job: Option<u64>,
}

/// What startup housekeeping did, summed over all files.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StartupStats {
    /// Files compacted (journal + per-job checkpoints).
    pub files: usize,
    /// Aggregate compaction counters.
    pub compaction: CompactStats,
}

/// One indexed checkpoint record: the pre-lowered match fields plus the
/// stored line, so a query touches no file and re-parses nothing.
#[derive(Debug)]
struct IndexEntry {
    /// `device` field, lowercased ("" when absent/non-string).
    device: String,
    /// `key` field, lowercased ("" when absent/non-string).
    key: String,
    /// The raw stored line.
    line: String,
}

/// Per-job query index over a checkpoint file, kept in step with the
/// file by byte offset: a sync reads only the appended suffix.
#[derive(Debug, Default)]
struct JobIndex {
    /// Bytes of the checkpoint already folded into `entries`.
    offset: u64,
    /// Parseable records in file order.
    entries: Vec<IndexEntry>,
}

/// Fold any bytes appended to `path` since the last sync into `ji`. A
/// shrunken file (startup compaction ran, or a merge compacted it)
/// resets and rebuilds. An unterminated tail line is *deferred*, not
/// indexed — every writer appends whole `writeln!`-terminated lines, so
/// a missing newline means the record is still in flight.
fn sync_index(path: &Path, ji: &mut JobIndex) {
    let Ok(mut f) = File::open(path) else {
        ji.offset = 0;
        ji.entries.clear();
        return;
    };
    let len = f.metadata().map(|m| m.len()).unwrap_or(0);
    if len < ji.offset {
        ji.offset = 0;
        ji.entries.clear();
    }
    if len == ji.offset || f.seek(SeekFrom::Start(ji.offset)).is_err() {
        return;
    }
    let mut reader = BufReader::new(f);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if !line.ends_with('\n') {
                    break;
                }
                ji.offset += n as u64;
                let trimmed = line.trim_end();
                if let Some(obj) = parse_flat_object(trimmed) {
                    if obj.contains_key("key") {
                        let field = |k: &str| {
                            obj.get(k)
                                .and_then(|v| v.as_str())
                                .unwrap_or("")
                                .to_lowercase()
                        };
                        ji.entries.push(IndexEntry {
                            device: field("device"),
                            key: field("key"),
                            line: trimmed.to_string(),
                        });
                    }
                }
            }
        }
    }
}

/// The store handle. All mutation goes through the journal append lock,
/// so concurrent HTTP readers see a consistent view.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    journal: Mutex<File>,
    jobs: Mutex<HashMap<u64, JobRecord>>,
    /// Per-job `(device, config-key, op)` query index, built at open
    /// (post-compaction), advanced on append, lazily re-synced against
    /// the checkpoint file length on every query — the engine appends
    /// checkpoints directly, so the index discovers those lines by the
    /// grown file, reading only the new suffix.
    index: Mutex<HashMap<u64, JobIndex>>,
    startup: StartupStats,
    policy: RetentionPolicy,
    /// Jobs evicted by retention over this handle's lifetime.
    evicted: AtomicU64,
    /// Bytes reclaimed by retention over this handle's lifetime.
    bytes_reclaimed: AtomicU64,
}

impl ResultStore {
    /// Open (creating if needed) the store directory with no retention
    /// bounds: compact the journal and every job checkpoint, then
    /// replay the journal.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        Self::open_with(dir, RetentionPolicy::unbounded())
    }

    /// [`open`](Self::open) under a retention policy, applied once
    /// right after startup compaction (and again whenever
    /// [`run_retention`](Self::run_retention) is called).
    pub fn open_with(dir: impl AsRef<Path>, policy: RetentionPolicy) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;

        let mut startup = StartupStats::default();
        let mut fold = |stats: CompactStats| {
            startup.files += 1;
            startup.compaction.kept += stats.kept;
            startup.compaction.superseded += stats.superseded;
            startup.compaction.corrupt += stats.corrupt;
        };

        let journal_path = dir.join("jobs.jsonl");
        fold(compact_jsonl(&journal_path, |obj| {
            Some(obj.get("id")?.as_raw()?.to_string())
        })?);
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with("job-") && name.ends_with(".jsonl") {
                fold(Checkpoint::compact(&path)?);
            }
        }

        let mut jobs = HashMap::new();
        match File::open(&journal_path) {
            Ok(f) => {
                for line in BufReader::new(f).lines() {
                    if let Some(rec) = JobRecord::parse(&line?) {
                        jobs.insert(rec.id, rec);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal_path)?;

        // Build the query index over the freshly compacted checkpoints.
        let mut index = HashMap::new();
        for id in jobs.keys() {
            let mut ji = JobIndex::default();
            sync_index(&dir.join(format!("job-{id}.jsonl")), &mut ji);
            index.insert(*id, ji);
        }

        let store = ResultStore {
            dir,
            journal: Mutex::new(journal),
            jobs: Mutex::new(jobs),
            index: Mutex::new(index),
            startup,
            policy,
            evicted: AtomicU64::new(0),
            bytes_reclaimed: AtomicU64::new(0),
        };
        store.run_retention()?;
        Ok(store)
    }

    /// What startup compaction did.
    pub fn startup_stats(&self) -> StartupStats {
        self.startup
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Next unused job id (dense from 1).
    pub fn next_id(&self) -> u64 {
        let jobs = self.jobs.lock().expect("store mutex poisoned");
        jobs.keys().max().copied().unwrap_or(0) + 1
    }

    /// Append a record to the journal (flushed) and the in-memory view,
    /// stamping `updated_unix` so retention sees every state change as
    /// activity.
    pub fn record(&self, rec: &JobRecord) -> std::io::Result<()> {
        let mut rec = rec.clone();
        rec.updated_unix = now_unix();
        let line = rec.render();
        let mut journal = self.journal.lock().expect("store mutex poisoned");
        writeln!(journal, "{line}")?;
        journal.flush()?;
        drop(journal);
        self.jobs
            .lock()
            .expect("store mutex poisoned")
            .insert(rec.id, rec);
        Ok(())
    }

    /// The current record for a job.
    pub fn get(&self, id: u64) -> Option<JobRecord> {
        self.jobs
            .lock()
            .expect("store mutex poisoned")
            .get(&id)
            .cloned()
    }

    /// All jobs, ordered by id.
    pub fn jobs(&self) -> Vec<JobRecord> {
        let mut all: Vec<JobRecord> = self
            .jobs
            .lock()
            .expect("store mutex poisoned")
            .values()
            .cloned()
            .collect();
        all.sort_by_key(|r| r.id);
        all
    }

    /// Path of a job's sweep checkpoint.
    pub fn checkpoint_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("job-{id}.jsonl"))
    }

    /// Path of a job's rendered report.
    pub fn report_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("job-{id}.report"))
    }

    /// Persist a finished job's report.
    pub fn write_report(&self, id: u64, text: &str) -> std::io::Result<()> {
        std::fs::write(self.report_path(id), text)
    }

    /// A finished job's report, if written.
    pub fn read_report(&self, id: u64) -> Option<String> {
        std::fs::read_to_string(self.report_path(id)).ok()
    }

    /// Completed points of a job: parseable lines of its checkpoint.
    /// Crash-consistent by construction — the engine appends and
    /// flushes each point as a worker finishes it.
    pub fn done_points(&self, id: u64) -> usize {
        self.result_lines(id).len()
    }

    /// The raw (parseable) checkpoint lines of a job, in completion
    /// order — the incremental result feed.
    pub fn result_lines(&self, id: u64) -> Vec<String> {
        let Ok(f) = File::open(self.checkpoint_path(id)) else {
            return Vec::new();
        };
        BufReader::new(f)
            .lines()
            .map_while(Result::ok)
            .filter(|l| parse_flat_object(l).is_some_and(|obj| obj.contains_key("key")))
            .collect()
    }

    /// Append already-rendered checkpoint record lines to a job's
    /// checkpoint file (one write, one flush) and fold them into the
    /// query index in the same step. The cluster merge path lands
    /// worker-shipped shards through this.
    pub fn append_result_lines(&self, id: u64, lines: &[String]) -> std::io::Result<()> {
        let path = self.checkpoint_path(id);
        // Hold the index lock across the write so a concurrent query's
        // resync cannot interleave with a half-appended batch.
        let mut index = self.index.lock().expect("store mutex poisoned");
        let mut f = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut buf = String::new();
        for line in lines {
            buf.push_str(line.trim_end());
            buf.push('\n');
        }
        f.write_all(buf.as_bytes())?;
        f.flush()?;
        drop(f);
        sync_index(&path, index.entry(id).or_default());
        Ok(())
    }

    /// Query historical results across all jobs, answered from the
    /// in-memory `(device, config, op)` index (re-synced against each
    /// checkpoint's appended suffix first). Each returned line is the
    /// stored checkpoint record with a `job` field spliced in front for
    /// provenance.
    pub fn query(&self, q: &ResultQuery) -> Vec<String> {
        let device = q.device.to_lowercase();
        let config = q.config.to_lowercase();
        let op = format!("op: {}", q.op.to_lowercase());
        let mut out = Vec::new();
        for rec in self.jobs() {
            if q.job.is_some_and(|id| id != rec.id) {
                continue;
            }
            let mut index = self.index.lock().expect("store mutex poisoned");
            let ji = index.entry(rec.id).or_default();
            sync_index(&self.checkpoint_path(rec.id), ji);
            for e in &ji.entries {
                if !q.device.is_empty() && !e.device.contains(&device) {
                    continue;
                }
                if !q.config.is_empty() && !e.key.contains(&config) {
                    continue;
                }
                if !q.op.is_empty() && !e.key.contains(&op) {
                    continue;
                }
                // Splice provenance in front: the line is `{...}`.
                out.push(format!("{{\"job\":{},{}", rec.id, &e.line[1..]));
            }
        }
        out
    }

    /// The pre-index `query` implementation: a full linear rescan of
    /// every checkpoint per request. Kept as the reference the indexed
    /// path is equivalence-tested against.
    pub fn query_scan(&self, q: &ResultQuery) -> Vec<String> {
        let mut out = Vec::new();
        for rec in self.jobs() {
            if q.job.is_some_and(|id| id != rec.id) {
                continue;
            }
            for line in self.result_lines(rec.id) {
                let Some(obj) = parse_flat_object(&line) else {
                    continue;
                };
                let field = |k: &str| {
                    obj.get(k)
                        .and_then(|v| v.as_str())
                        .unwrap_or("")
                        .to_lowercase()
                };
                if !q.device.is_empty() && !field("device").contains(&q.device.to_lowercase()) {
                    continue;
                }
                let key = field("key");
                if !q.config.is_empty() && !key.contains(&q.config.to_lowercase()) {
                    continue;
                }
                if !q.op.is_empty() && !key.contains(&format!("op: {}", q.op.to_lowercase())) {
                    continue;
                }
                // Splice provenance in front: the line is `{...}`.
                out.push(format!("{{\"job\":{},{}", rec.id, &line[1..]));
            }
        }
        out
    }

    /// The retention policy this store enforces.
    pub fn retention_policy(&self) -> RetentionPolicy {
        self.policy
    }

    /// Cumulative `(jobs evicted, bytes reclaimed)` by retention since
    /// open — the `/metrics` feed.
    pub fn retention_counters(&self) -> (u64, u64) {
        (
            self.evicted.load(Ordering::Relaxed),
            self.bytes_reclaimed.load(Ordering::Relaxed),
        )
    }

    /// Total bytes under the store directory right now (journal,
    /// checkpoints, reports, anything else present).
    pub fn disk_usage(&self) -> u64 {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        entries
            .flatten()
            .filter_map(|e| e.metadata().ok())
            .filter(|m| m.is_file())
            .map(|m| m.len())
            .sum()
    }

    /// Number of jobs the journal currently retains.
    pub fn job_count(&self) -> usize {
        self.jobs.lock().expect("store mutex poisoned").len()
    }

    /// Enforce the retention policy now: while either bound is
    /// exceeded, evict terminal jobs old enough under `min_age`,
    /// oldest-first by last state change. Live jobs are never evicted.
    /// Evicting rewrites the journal (tmp + rename, then a fresh append
    /// handle) and deletes the job's checkpoint and report.
    pub fn run_retention(&self) -> std::io::Result<RetentionStats> {
        if self.policy.is_unbounded() {
            return Ok(RetentionStats::default());
        }
        let now = now_unix();
        // Lock order everywhere: journal, then jobs, then index.
        let mut journal = self.journal.lock().expect("store mutex poisoned");
        let mut jobs = self.jobs.lock().expect("store mutex poisoned");
        let mut index = self.index.lock().expect("store mutex poisoned");

        let file_len = |p: &Path| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
        // Bytes accounted to a job: its journal line, checkpoint, and
        // report. Other directory residents are not retention's to
        // reclaim, so they don't count against the byte bound.
        let job_bytes = |rec: &JobRecord| {
            rec.render().len() as u64
                + 1
                + file_len(&self.checkpoint_path(rec.id))
                + file_len(&self.report_path(rec.id))
        };
        let mut total_bytes: u64 = jobs.values().map(job_bytes).sum();

        let mut candidates: Vec<(u64, u64, u64)> = jobs
            .values()
            .filter(|r| !r.state.is_live())
            .filter(|r| now.saturating_sub(r.updated_unix) >= self.policy.min_age.as_secs())
            .map(|r| (r.updated_unix, r.id, job_bytes(r)))
            .collect();
        candidates.sort_unstable();

        let mut stats = RetentionStats::default();
        let mut victims = candidates.into_iter();
        while jobs.len() > self.policy.max_jobs || total_bytes > self.policy.max_bytes {
            let Some((_, id, bytes)) = victims.next() else {
                break; // Everything left is live or too young.
            };
            std::fs::remove_file(self.checkpoint_path(id)).ok();
            std::fs::remove_file(self.report_path(id)).ok();
            jobs.remove(&id);
            index.remove(&id);
            total_bytes = total_bytes.saturating_sub(bytes);
            stats.evicted += 1;
            stats.bytes_reclaimed += bytes;
        }
        stats.remaining_jobs = jobs.len();
        stats.remaining_bytes = total_bytes;

        if stats.evicted > 0 {
            // Rewrite the journal to only the surviving jobs. The old
            // append handle points at the replaced inode after the
            // rename, so it must be reopened under the same lock.
            let path = self.dir.join("jobs.jsonl");
            let tmp = self.dir.join("jobs.jsonl.tmp");
            {
                let mut f = File::create(&tmp)?;
                let mut ordered: Vec<&JobRecord> = jobs.values().collect();
                ordered.sort_by_key(|r| r.id);
                for rec in ordered {
                    writeln!(f, "{}", rec.render())?;
                }
                f.flush()?;
            }
            std::fs::rename(&tmp, &path)?;
            *journal = OpenOptions::new().create(true).append(true).open(&path)?;
            self.evicted
                .fetch_add(stats.evicted as u64, Ordering::Relaxed);
            self.bytes_reclaimed
                .fetch_add(stats.bytes_reclaimed, Ordering::Relaxed);
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static UNIQ: AtomicU64 = AtomicU64::new(0);
        let n = UNIQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("mpstream-store-{tag}-{}-{n}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn sample(id: u64, state: JobState) -> JobRecord {
        JobRecord {
            id,
            state,
            spec: "{\"kernels\":\"copy\"}".into(),
            total: 10,
            error: String::new(),
            tenant: String::new(),
            updated_unix: 0,
        }
    }

    #[test]
    fn journal_survives_reopen_with_last_state_winning() {
        let dir = temp_dir("journal");
        {
            let store = ResultStore::open(&dir).unwrap();
            assert_eq!(store.next_id(), 1);
            store.record(&sample(1, JobState::Queued)).unwrap();
            store.record(&sample(2, JobState::Queued)).unwrap();
            store.record(&sample(1, JobState::Running)).unwrap();
            store.record(&sample(1, JobState::Done)).unwrap();
        }
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.next_id(), 3);
        assert_eq!(store.get(1).unwrap().state, JobState::Done);
        assert_eq!(store.get(2).unwrap().state, JobState::Queued);
        assert_eq!(store.jobs().len(), 2);
        // Reopen compacted 4 journal lines down to 2.
        let stats = store.startup_stats();
        assert_eq!(stats.compaction.superseded, 2, "{stats:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_journal_tail_is_dropped_on_open() {
        let dir = temp_dir("torn");
        {
            let store = ResultStore::open(&dir).unwrap();
            store.record(&sample(1, JobState::Queued)).unwrap();
        }
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join("jobs.jsonl"))
                .unwrap();
            write!(f, "{{\"id\":2,\"sta").unwrap();
        }
        let store = ResultStore::open(&dir).unwrap();
        assert_eq!(store.jobs().len(), 1);
        assert_eq!(store.startup_stats().compaction.corrupt, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pre_tenancy_journal_lines_still_parse() {
        let rec = JobRecord::parse(
            "{\"id\":4,\"state\":\"done\",\"total\":10,\"spec\":\"{}\",\"error\":\"\"}",
        )
        .expect("old journal line parses");
        assert_eq!(rec.tenant, "");
        assert_eq!(rec.updated_unix, 0);
        let rec = JobRecord::parse(&sample(5, JobState::Failed).render()).unwrap();
        assert_eq!(rec.id, 5);
        assert_eq!(rec.state, JobState::Failed);
    }

    #[test]
    fn retention_evicts_oldest_terminal_jobs_and_spares_live_ones() {
        let dir = temp_dir("retention");
        let policy = RetentionPolicy {
            max_jobs: 2,
            max_bytes: u64::MAX,
            min_age: std::time::Duration::ZERO,
        };
        {
            let store = ResultStore::open(&dir).unwrap();
            for id in 1..=4 {
                // record() stamps updated_unix with second granularity;
                // ids double as age order only because all four share
                // one stamp and eviction ties break by id.
                store.record(&sample(id, JobState::Done)).unwrap();
                store.write_report(id, &format!("report {id}\n")).unwrap();
            }
            store.record(&sample(5, JobState::Queued)).unwrap();
        }
        // Reopen under the policy: 5 jobs, bound is 2 — but the queued
        // job is live and must survive even above the bound.
        let store = ResultStore::open_with(&dir, policy).unwrap();
        let ids: Vec<u64> = store.jobs().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![4, 5], "oldest terminal jobs evicted: {ids:?}");
        assert!(store.read_report(1).is_none(), "evicted report deleted");
        assert!(store.read_report(4).is_some());
        let (evicted, reclaimed) = store.retention_counters();
        assert_eq!(evicted, 3);
        assert!(reclaimed > 0);

        // The rewritten journal must survive another reopen, and the
        // reopened append handle must still reach the live file.
        store.record(&sample(6, JobState::Queued)).unwrap();
        drop(store);
        let store = ResultStore::open(&dir).unwrap();
        let ids: Vec<u64> = store.jobs().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![4, 5, 6]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retention_byte_bound_and_min_age_guard() {
        let dir = temp_dir("retention-bytes");
        {
            let store = ResultStore::open(&dir).unwrap();
            for id in 1..=3 {
                store.record(&sample(id, JobState::Done)).unwrap();
                store.write_report(id, &"x".repeat(4096)).unwrap();
            }
        }
        // A byte bound that fits roughly one job's worth of data.
        let store = ResultStore::open_with(
            &dir,
            RetentionPolicy {
                max_jobs: usize::MAX,
                max_bytes: 6 * 1024,
                min_age: std::time::Duration::ZERO,
            },
        )
        .unwrap();
        assert!(store.job_count() < 3, "byte bound forced evictions");
        drop(store);

        // min_age an hour: nothing just written may be evicted, even
        // with max_jobs=1.
        let store = ResultStore::open_with(
            &dir,
            RetentionPolicy {
                max_jobs: 1,
                max_bytes: u64::MAX,
                min_age: std::time::Duration::from_secs(3600),
            },
        )
        .unwrap();
        let before = store.job_count();
        assert_eq!(store.run_retention().unwrap().evicted, 0);
        assert_eq!(store.job_count(), before, "young jobs are protected");
        assert!(store.disk_usage() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reports_round_trip() {
        let dir = temp_dir("report");
        let store = ResultStore::open(&dir).unwrap();
        assert!(store.read_report(7).is_none());
        store.write_report(7, "the report\n").unwrap();
        assert_eq!(store.read_report(7).unwrap(), "the report\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn query_filters_by_device_config_op_and_job() {
        let dir = temp_dir("query");
        let store = ResultStore::open(&dir).unwrap();
        store.record(&sample(1, JobState::Done)).unwrap();
        store.record(&sample(2, JobState::Done)).unwrap();
        std::fs::write(
            store.checkpoint_path(1),
            "{\"key\":\"KernelConfig { op: Copy, n: 1024 }\",\"retries\":0,\"status\":\"ok\",\"device\":\"Xeon (sim)\"}\n",
        )
        .unwrap();
        std::fs::write(
            store.checkpoint_path(2),
            "{\"key\":\"KernelConfig { op: Triad, n: 1024 }\",\"retries\":0,\"status\":\"ok\",\"device\":\"Stratix V (sim)\"}\n",
        )
        .unwrap();

        assert_eq!(store.query(&ResultQuery::default()).len(), 2);
        let by_device = store.query(&ResultQuery {
            device: "stratix".into(),
            ..Default::default()
        });
        assert_eq!(by_device.len(), 1);
        assert!(by_device[0].starts_with("{\"job\":2,"), "{by_device:?}");
        let by_op = store.query(&ResultQuery {
            op: "copy".into(),
            ..Default::default()
        });
        assert_eq!(by_op.len(), 1);
        assert!(by_op[0].contains("Xeon"));
        let by_config = store.query(&ResultQuery {
            config: "n: 1024".into(),
            ..Default::default()
        });
        assert_eq!(by_config.len(), 2);
        let by_job = store.query(&ResultQuery {
            job: Some(2),
            ..Default::default()
        });
        assert_eq!(by_job.len(), 1);
        // Spliced provenance lines still parse in the shared dialect.
        for line in store.query(&ResultQuery::default()) {
            let obj = parse_flat_object(&line).expect("spliced line parses");
            assert!(obj.contains_key("job"));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The indexed query path must answer every query with exactly the
    /// lines the linear rescan finds — including after out-of-band
    /// appends (the engine writing checkpoints directly) and after
    /// appends through the store's own API.
    #[test]
    fn indexed_query_is_equivalent_to_the_scan_path() {
        let dir = temp_dir("index-equiv");
        let store = ResultStore::open(&dir).unwrap();
        store.record(&sample(1, JobState::Done)).unwrap();
        store.record(&sample(2, JobState::Running)).unwrap();
        let rec = |op: &str, n: u32, device: &str| {
            format!(
                "{{\"key\":\"KernelConfig {{ op: {op}, n: {n} }}\",\"retries\":0,\
                 \"status\":\"ok\",\"device\":\"{device}\"}}"
            )
        };
        std::fs::write(
            store.checkpoint_path(1),
            format!(
                "{}\n{}\n",
                rec("Copy", 1024, "Xeon (sim)"),
                rec("Triad", 2048, "Xeon (sim)")
            ),
        )
        .unwrap();

        let queries = [
            ResultQuery::default(),
            ResultQuery {
                device: "xeon".into(),
                ..Default::default()
            },
            ResultQuery {
                op: "triad".into(),
                ..Default::default()
            },
            ResultQuery {
                config: "N: 2048".into(),
                ..Default::default()
            },
            ResultQuery {
                job: Some(2),
                ..Default::default()
            },
            ResultQuery {
                device: "stratix".into(),
                op: "copy".into(),
                ..Default::default()
            },
        ];
        for q in &queries {
            assert_eq!(store.query(q), store.query_scan(q), "{q:?}");
        }

        // Out-of-band append (what the engine does): the index must
        // pick the new suffix up on the next query.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(store.checkpoint_path(1))
                .unwrap();
            writeln!(f, "{}", rec("Add", 4096, "Stratix V (sim)")).unwrap();
        }
        // Append through the store API (what the cluster merge does).
        store
            .append_result_lines(2, &[rec("Scale", 512, "Titan (sim)")])
            .unwrap();
        // A corrupt torn tail is excluded by both paths.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(store.checkpoint_path(2))
                .unwrap();
            write!(f, "{{\"key\":\"torn").unwrap();
        }
        for q in &queries {
            assert_eq!(store.query(q), store.query_scan(q), "after append: {q:?}");
        }
        assert_eq!(store.query(&ResultQuery::default()).len(), 4);

        // Reopen rebuilds the index from the compacted files.
        drop(store);
        let store = ResultStore::open(&dir).unwrap();
        for q in &queries {
            assert_eq!(store.query(q), store.query_scan(q), "after reopen: {q:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
