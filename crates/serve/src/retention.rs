//! Store retention policy: bounds on job history so disk use stays
//! finite under unbounded submission.
//!
//! A [`RetentionPolicy`] caps the number of retained jobs and the
//! store's total bytes, with a minimum age guarding recent jobs from
//! eviction. The [`ResultStore`](crate::store::ResultStore) applies it
//! at open (right after startup compaction) and periodically while the
//! daemon runs; only *terminal* jobs (done/failed/cancelled) old enough
//! under `min_age` are candidates, evicted oldest-first until both
//! bounds hold. Live jobs are never touched, so a flood of submissions
//! can fill the queue but never lose an in-flight sweep.

use std::time::Duration;

/// Bounds on retained job history. The default is unbounded — retention
/// is opt-in via `--retention` so existing stores keep every job, as
/// before.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Max jobs retained in the journal (`usize::MAX` = unbounded).
    pub max_jobs: usize,
    /// Max total store bytes (`u64::MAX` = unbounded).
    pub max_bytes: u64,
    /// Jobs younger than this are never evicted.
    pub min_age: Duration,
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        RetentionPolicy::unbounded()
    }
}

impl RetentionPolicy {
    /// No bounds: never evict anything.
    pub fn unbounded() -> RetentionPolicy {
        RetentionPolicy {
            max_jobs: usize::MAX,
            max_bytes: u64::MAX,
            min_age: Duration::ZERO,
        }
    }

    /// Does this policy ever evict?
    pub fn is_unbounded(&self) -> bool {
        self.max_jobs == usize::MAX && self.max_bytes == u64::MAX
    }

    /// Parse the `--retention` flag value: comma-separated
    /// `max-jobs=N`, `max-bytes=N[K|M|G]`, `min-age-s=N` in any order;
    /// omitted keys stay unbounded.
    pub fn parse(s: &str) -> Result<RetentionPolicy, String> {
        let mut policy = RetentionPolicy::unbounded();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("retention term '{part}' is not key=value"))?;
            match key.trim() {
                "max-jobs" => {
                    policy.max_jobs = value
                        .trim()
                        .parse::<usize>()
                        .ok()
                        .filter(|n| *n > 0)
                        .ok_or("max-jobs needs a positive integer")?;
                }
                "max-bytes" => {
                    policy.max_bytes = parse_bytes(value.trim())?;
                }
                "min-age-s" => {
                    policy.min_age = Duration::from_secs(
                        value
                            .trim()
                            .parse::<u64>()
                            .map_err(|_| "min-age-s needs an integer number of seconds")?,
                    );
                }
                other => {
                    return Err(format!(
                        "unknown retention key '{other}' \
                         (expected max-jobs, max-bytes, min-age-s)"
                    ))
                }
            }
        }
        Ok(policy)
    }
}

/// Parse a byte count with an optional `K`/`M`/`G` suffix (powers of
/// 1024, case-insensitive).
fn parse_bytes(s: &str) -> Result<u64, String> {
    let (digits, shift) = match s.as_bytes().last() {
        Some(b'k' | b'K') => (&s[..s.len() - 1], 10),
        Some(b'm' | b'M') => (&s[..s.len() - 1], 20),
        Some(b'g' | b'G') => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("'{s}' is not a byte count (try 64M, 512K, 1G)"))?;
    n.checked_shl(shift)
        .filter(|v| *v > 0)
        .ok_or_else(|| format!("byte count '{s}' out of range"))
}

/// What one retention pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetentionStats {
    /// Jobs evicted (journal entry, checkpoint, and report removed).
    pub evicted: usize,
    /// Bytes reclaimed by those evictions.
    pub bytes_reclaimed: u64,
    /// Jobs retained after the pass.
    pub remaining_jobs: usize,
    /// Store bytes accounted to retained jobs after the pass.
    pub remaining_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unbounded_and_parse_fills_in_terms() {
        assert!(RetentionPolicy::default().is_unbounded());
        let p = RetentionPolicy::parse("max-jobs=16, max-bytes=2M, min-age-s=60").unwrap();
        assert_eq!(p.max_jobs, 16);
        assert_eq!(p.max_bytes, 2 << 20);
        assert_eq!(p.min_age, Duration::from_secs(60));
        assert!(!p.is_unbounded());

        let partial = RetentionPolicy::parse("max-jobs=4").unwrap();
        assert_eq!(partial.max_jobs, 4);
        assert_eq!(partial.max_bytes, u64::MAX);
        assert!(!partial.is_unbounded());
    }

    #[test]
    fn byte_suffixes_and_bad_terms() {
        assert_eq!(parse_bytes("512").unwrap(), 512);
        assert_eq!(parse_bytes("64k").unwrap(), 64 << 10);
        assert_eq!(parse_bytes("64M").unwrap(), 64 << 20);
        assert_eq!(parse_bytes("1G").unwrap(), 1 << 30);
        assert!(parse_bytes("lots").is_err());
        assert!(parse_bytes("0").is_err());
        for bad in ["max-jobs=0", "max-bytes=", "min-age-s=x", "jobs=1", "nope"] {
            assert!(RetentionPolicy::parse(bad).is_err(), "{bad}");
        }
    }
}
