//! A seeded half-open circuit breaker for the HTTP client path.
//!
//! The [`ClientOpts`](crate::client::ClientOpts) retry budget handles a
//! peer that is briefly restarting; it does nothing for a peer that is
//! *down*, where every caller burns its full connect-retry schedule on
//! every attempt, forever. The breaker sits above that: after
//! `failure_threshold` consecutive failures it opens and refuses calls
//! instantly for a cooldown, then lets exactly one probe through
//! (half-open). A successful probe closes it; a failed one re-opens it
//! for another cooldown.
//!
//! Cooldowns are jittered from a seeded [`SplitMix64`] so a fleet of
//! workers quarantining off the same dead coordinator de-synchronises
//! deterministically: same seeds, same sleeps, every run — the same
//! discipline as the engine's backoff and the fault planner.

use mpstream_core::SplitMix64;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerOpts {
    /// Consecutive failures that open the breaker.
    pub failure_threshold: u32,
    /// Base quarantine after opening.
    pub cooldown: Duration,
    /// Max extra jitter added to each cooldown (0 = none).
    pub max_jitter: Duration,
    /// Seed for the jitter sequence.
    pub seed: u64,
}

impl Default for BreakerOpts {
    fn default() -> Self {
        BreakerOpts {
            failure_threshold: 3,
            cooldown: Duration::from_secs(1),
            max_jitter: Duration::from_millis(500),
            seed: 0x6272_6561_6b65_7221,
        }
    }
}

/// Where the breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow; failures are being counted.
    Closed,
    /// Calls are refused until the cooldown deadline.
    Open,
    /// One probe is in flight; its outcome decides.
    HalfOpen,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    failures: u32,
    open_until: Instant,
    probe_inflight: bool,
    rng: SplitMix64,
    opens: u64,
}

/// The breaker. Cheap to share behind an `Arc`; all state is one mutex.
#[derive(Debug)]
pub struct CircuitBreaker {
    opts: BreakerOpts,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(opts: BreakerOpts) -> CircuitBreaker {
        CircuitBreaker {
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                failures: 0,
                open_until: Instant::now(),
                probe_inflight: false,
                rng: SplitMix64::new(opts.seed),
                opens: 0,
            }),
            opts,
        }
    }

    /// Current state (transitions lazily on [`try_acquire_at`]).
    ///
    /// [`try_acquire_at`]: Self::try_acquire_at
    pub fn state(&self) -> BreakerState {
        self.inner.lock().expect("breaker poisoned").state
    }

    /// How many times the breaker has opened.
    pub fn opens(&self) -> u64 {
        self.inner.lock().expect("breaker poisoned").opens
    }

    /// Remaining quarantine while open, without transitioning state —
    /// callers use this to size a back-off sleep instead of spinning on
    /// refused [`try_acquire`](Self::try_acquire) calls (which would
    /// also steal the half-open probe slot).
    pub fn remaining_quarantine(&self) -> Option<Duration> {
        let inner = self.inner.lock().expect("breaker poisoned");
        match inner.state {
            BreakerState::Open => Some(
                inner
                    .open_until
                    .saturating_duration_since(Instant::now())
                    .max(Duration::from_millis(1)),
            ),
            _ => None,
        }
    }

    /// May a call proceed? `Err(wait)` while open (the remaining
    /// quarantine); an expired cooldown admits exactly one half-open
    /// probe and quarantines everyone else until it resolves.
    pub fn try_acquire_at(&self, now: Instant) -> Result<(), Duration> {
        let mut inner = self.inner.lock().expect("breaker poisoned");
        match inner.state {
            BreakerState::Closed => Ok(()),
            BreakerState::Open => {
                if now < inner.open_until {
                    Err(inner.open_until - now)
                } else {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_inflight = true;
                    Ok(())
                }
            }
            BreakerState::HalfOpen => {
                if inner.probe_inflight {
                    Err(self.opts.cooldown)
                } else {
                    inner.probe_inflight = true;
                    Ok(())
                }
            }
        }
    }

    /// [`try_acquire_at`](Self::try_acquire_at) against the real clock.
    pub fn try_acquire(&self) -> Result<(), Duration> {
        self.try_acquire_at(Instant::now())
    }

    /// Report a successful call: close and reset.
    pub fn on_success(&self) {
        let mut inner = self.inner.lock().expect("breaker poisoned");
        inner.state = BreakerState::Closed;
        inner.failures = 0;
        inner.probe_inflight = false;
    }

    /// Report a failed call at `now`: a failed half-open probe re-opens
    /// immediately; in closed state the threshold decides.
    pub fn on_failure_at(&self, now: Instant) {
        let mut inner = self.inner.lock().expect("breaker poisoned");
        inner.probe_inflight = false;
        inner.failures = inner.failures.saturating_add(1);
        let should_open =
            inner.state == BreakerState::HalfOpen || inner.failures >= self.opts.failure_threshold;
        if should_open {
            let jitter = if self.opts.max_jitter.is_zero() {
                Duration::ZERO
            } else {
                let span = self.opts.max_jitter.as_nanos().max(1) as u64;
                Duration::from_nanos(inner.rng.next_u64() % span)
            };
            inner.state = BreakerState::Open;
            inner.open_until = now + self.opts.cooldown + jitter;
            inner.opens += 1;
        }
    }

    /// [`on_failure_at`](Self::on_failure_at) against the real clock.
    pub fn on_failure(&self) {
        self.on_failure_at(Instant::now());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(threshold: u32, cooldown_ms: u64, jitter_ms: u64, seed: u64) -> BreakerOpts {
        BreakerOpts {
            failure_threshold: threshold,
            cooldown: Duration::from_millis(cooldown_ms),
            max_jitter: Duration::from_millis(jitter_ms),
            seed,
        }
    }

    #[test]
    fn opens_after_threshold_and_admits_one_probe() {
        let b = CircuitBreaker::new(opts(3, 100, 0, 1));
        let t0 = Instant::now();
        for _ in 0..2 {
            assert!(b.try_acquire_at(t0).is_ok());
            b.on_failure_at(t0);
        }
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        assert!(b.try_acquire_at(t0).is_ok());
        b.on_failure_at(t0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);

        // Quarantined, with the exact remaining wait.
        let wait = b
            .try_acquire_at(t0 + Duration::from_millis(40))
            .unwrap_err();
        assert_eq!(wait, Duration::from_millis(60));

        // Cooldown over: exactly one probe gets through.
        let t1 = t0 + Duration::from_millis(101);
        assert!(b.try_acquire_at(t1).is_ok());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.try_acquire_at(t1).is_err(), "second caller quarantined");

        // Probe succeeds: closed, counters reset.
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.try_acquire_at(t1).is_ok());
    }

    #[test]
    fn failed_probe_reopens_immediately() {
        let b = CircuitBreaker::new(opts(2, 50, 0, 2));
        let t0 = Instant::now();
        b.on_failure_at(t0);
        b.on_failure_at(t0);
        assert_eq!(b.state(), BreakerState::Open);
        let t1 = t0 + Duration::from_millis(51);
        assert!(b.try_acquire_at(t1).is_ok(), "probe admitted");
        b.on_failure_at(t1);
        assert_eq!(b.state(), BreakerState::Open, "one failure re-opens");
        assert_eq!(b.opens(), 2);
        assert!(b.try_acquire_at(t1 + Duration::from_millis(10)).is_err());
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let waits = |seed: u64| {
            let b = CircuitBreaker::new(opts(1, 100, 300, seed));
            let t0 = Instant::now();
            let mut out = Vec::new();
            for i in 0..4 {
                // Open it (threshold 1) far past any earlier cooldown.
                let t = t0 + Duration::from_secs(10 * (i + 1));
                b.on_failure_at(t);
                out.push(b.try_acquire_at(t).unwrap_err());
            }
            out
        };
        let a = waits(42);
        assert_eq!(a, waits(42), "same seed, same quarantine schedule");
        assert_ne!(a, waits(43), "different seed de-synchronises");
        for w in &a {
            assert!(*w >= Duration::from_millis(100), "{w:?} below cooldown");
            assert!(
                *w < Duration::from_millis(400),
                "{w:?} above cooldown+jitter"
            );
        }
    }
}
