//! Argument grammar and execution for the service subcommands:
//! `mpstream serve|submit|status|fetch|cancel`. Factored as a library
//! (like `mpstream_core::cli`) so it is unit-testable; the workspace
//! binary dispatches here when the first argument names one of these
//! subcommands.

use crate::client::http_request;
use crate::server::{ServeOpts, Server};
use crate::signal::ShutdownSignal;
use crate::spec;
use mpstream_core::cli as core_cli;
use mpstream_core::json::parse_flat_object;
use std::path::PathBuf;

/// Usage text for the service subcommands.
pub const USAGE: &str = "\
usage: mpstream serve [--addr H:P] [--store DIR] [--jobs N] [--queue N]
       mpstream submit [--addr H:P] [dse] <flags>   queue a sweep or search, print its job id
       mpstream status [--addr H:P] [ID]            one job's progress, or all jobs
       mpstream fetch  [--addr H:P] ID [--results]  fetch the report (or raw results)
       mpstream cancel [--addr H:P] ID              cancel a queued or running job

  --addr <host:port>   server address (default 127.0.0.1:8377)
  serve --store <dir>  result-store directory (default ./mpstream-store)
  serve --jobs <N>     HTTP worker threads (default 4)
  serve --queue <N>    job-queue capacity before 503 (default 16)
  submit takes the same flags as `mpstream sweep` (or, with a leading
  `dse` token, `mpstream dse`; see `mpstream --help`), minus the
  local-only --checkpoint/--resume/--trace.";

/// A parsed service subcommand.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeCommand {
    /// Run the daemon.
    Serve(ServeOpts),
    /// POST a sweep spec.
    Submit {
        /// Server address.
        addr: String,
        /// The job-spec JSON line.
        spec: String,
    },
    /// GET one job's status, or all jobs.
    Status {
        /// Server address.
        addr: String,
        /// Job id, or `None` for the full listing.
        id: Option<u64>,
    },
    /// GET a job's report or raw results.
    Fetch {
        /// Server address.
        addr: String,
        /// Job id.
        id: u64,
        /// Page through the raw checkpoint lines instead.
        results: bool,
    },
    /// POST a cancellation.
    Cancel {
        /// Server address.
        addr: String,
        /// Job id.
        id: u64,
    },
}

/// Does this argument vector start with a service subcommand?
pub fn is_serve_command(args: &[String]) -> bool {
    matches!(
        args.first().map(String::as_str),
        Some("serve" | "submit" | "status" | "fetch" | "cancel")
    )
}

/// Parse a service argument vector (`Ok(None)` for `--help`).
pub fn parse_serve_args(args: &[String]) -> Result<Option<ServeCommand>, String> {
    let (verb, mut rest): (&str, Vec<String>) = match args.split_first() {
        Some((v, rest)) => (v.as_str(), rest.to_vec()),
        None => return Err("missing subcommand".into()),
    };
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(None);
    }
    let mut addr = "127.0.0.1:8377".to_string();
    if let Some(pos) = rest.iter().position(|a| a == "--addr") {
        if pos + 1 >= rest.len() {
            return Err("--addr needs a value".into());
        }
        addr = rest.remove(pos + 1);
        rest.remove(pos);
    }

    match verb {
        "serve" => {
            let mut opts = ServeOpts {
                addr,
                ..ServeOpts::default()
            };
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                let mut need = |flag: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{flag} needs a value"))
                };
                match arg.as_str() {
                    "--store" => opts.store_dir = PathBuf::from(need("--store")?),
                    "--jobs" => {
                        opts.http_workers = need("--jobs")?
                            .parse()
                            .ok()
                            .filter(|&n: &usize| n > 0)
                            .ok_or("--jobs needs a positive integer")?;
                    }
                    "--queue" => {
                        opts.queue_capacity = need("--queue")?
                            .parse()
                            .ok()
                            .filter(|&n: &usize| n > 0)
                            .ok_or("--queue needs a positive integer")?;
                    }
                    other => return Err(format!("unknown serve argument '{other}'")),
                }
            }
            Ok(Some(ServeCommand::Serve(opts)))
        }
        "submit" => {
            // Everything left is sweep or dse grammar; reuse the core
            // parser. A leading `sweep`/`dse` token passes through,
            // anything else defaults to a sweep (the PR-4 grammar).
            let mut core_args: Vec<String> = Vec::new();
            if !matches!(rest.first().map(String::as_str), Some("sweep" | "dse")) {
                core_args.push("sweep".to_string());
            }
            core_args.extend(rest);
            let req = core_cli::parse_args(&core_args)?
                .ok_or("submit takes sweep/dse flags, not --help")?;
            let spec = spec::request_to_spec(&req)?;
            Ok(Some(ServeCommand::Submit { addr, spec }))
        }
        "status" => {
            let id = match rest.as_slice() {
                [] => None,
                [id] => Some(parse_job_id(id)?),
                _ => return Err("status takes at most one job id".into()),
            };
            Ok(Some(ServeCommand::Status { addr, id }))
        }
        "fetch" => {
            let results = rest.iter().any(|a| a == "--results");
            let ids: Vec<&String> = rest.iter().filter(|a| *a != "--results").collect();
            match ids.as_slice() {
                [id] => Ok(Some(ServeCommand::Fetch {
                    addr,
                    id: parse_job_id(id)?,
                    results,
                })),
                _ => Err("fetch takes exactly one job id".into()),
            }
        }
        "cancel" => match rest.as_slice() {
            [id] => Ok(Some(ServeCommand::Cancel {
                addr,
                id: parse_job_id(id)?,
            })),
            _ => Err("cancel takes exactly one job id".into()),
        },
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

fn parse_job_id(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("invalid job id '{s}'"))
}

/// Expect a 2xx reply, turning anything else into a readable error.
fn expect_ok(
    reply: crate::client::HttpReply,
    what: &str,
) -> Result<crate::client::HttpReply, String> {
    if (200..300).contains(&reply.status) {
        Ok(reply)
    } else {
        let detail = parse_flat_object(reply.text().trim())
            .and_then(|o| o.get("error")?.as_str().map(str::to_string))
            .unwrap_or_else(|| reply.text().trim().to_string());
        Err(format!("{what}: HTTP {} — {detail}", reply.status))
    }
}

/// Execute a client subcommand, returning the text to print.
/// ([`ServeCommand::Serve`] is executed by [`run_server`] instead —
/// it blocks for the daemon's lifetime.)
pub fn run_client(cmd: &ServeCommand) -> Result<String, String> {
    match cmd {
        ServeCommand::Serve(_) => Err("serve must go through run_server".into()),
        ServeCommand::Submit { addr, spec } => {
            let reply = expect_ok(
                http_request(addr, "POST", "/jobs", spec.as_bytes())?,
                "submit",
            )?;
            let obj =
                parse_flat_object(reply.text().trim()).ok_or("submit: unparseable server reply")?;
            let id = obj.get("id").and_then(|v| v.as_u64()).unwrap_or(0);
            let total = obj.get("total").and_then(|v| v.as_u64()).unwrap_or(0);
            Ok(format!("job {id} queued ({total} points)\n"))
        }
        ServeCommand::Status { addr, id } => {
            let path = match id {
                Some(id) => format!("/jobs/{id}"),
                None => "/jobs".to_string(),
            };
            let reply = expect_ok(http_request(addr, "GET", &path, b"")?, "status")?;
            let mut out = String::new();
            for line in reply.text().lines() {
                let Some(obj) = parse_flat_object(line) else {
                    continue;
                };
                let field = |k: &str| obj.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
                let state = obj
                    .get("state")
                    .and_then(|v| v.as_str())
                    .unwrap_or("unknown");
                out.push_str(&format!(
                    "job {}: {} ({}/{} points)\n",
                    field("id"),
                    state,
                    field("done"),
                    field("total"),
                ));
            }
            if out.is_empty() {
                out.push_str("no jobs\n");
            }
            Ok(out)
        }
        ServeCommand::Fetch { addr, id, results } => {
            if !results {
                let reply = expect_ok(
                    http_request(addr, "GET", &format!("/jobs/{id}/report"), b"")?,
                    "fetch",
                )?;
                return Ok(reply.text());
            }
            // Page through the raw result feed.
            let mut out = String::new();
            let mut offset = 0usize;
            loop {
                let reply = expect_ok(
                    http_request(
                        addr,
                        "GET",
                        &format!("/jobs/{id}/results?offset={offset}&limit=256"),
                        b"",
                    )?,
                    "fetch",
                )?;
                let count: usize = reply
                    .header("x-count")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0);
                let total: usize = reply
                    .header("x-total")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0);
                out.push_str(&reply.text());
                offset += count;
                if count == 0 || offset >= total {
                    return Ok(out);
                }
            }
        }
        ServeCommand::Cancel { addr, id } => {
            let reply = expect_ok(
                http_request(addr, "POST", &format!("/jobs/{id}/cancel"), b"")?,
                "cancel",
            )?;
            let state = parse_flat_object(reply.text().trim())
                .and_then(|o| o.get("state")?.as_str().map(str::to_string))
                .unwrap_or_else(|| "unknown".into());
            Ok(format!("job {id}: {state}\n"))
        }
    }
}

/// Run the daemon until SIGTERM/SIGINT, then drain and return. Prints
/// the bound address on startup so scripts can scrape it.
pub fn run_server(opts: ServeOpts) -> Result<(), String> {
    let server = Server::bind(opts.clone()).map_err(|e| format!("bind {}: {e}", opts.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    let handle = server.shutdown_handle().map_err(|e| e.to_string())?;
    let signal = ShutdownSignal::install().map_err(|e| format!("signal handler: {e}"))?;
    std::thread::Builder::new()
        .name("mpstream-signal-watch".into())
        .spawn(move || {
            signal.wait();
            handle.trigger();
        })
        .map_err(|e| e.to_string())?;
    let stats = server.store().startup_stats();
    println!(
        "mpstream serve: listening on {addr}, store {} ({} files compacted: {} kept, {} superseded, {} corrupt dropped)",
        opts.store_dir.display(),
        stats.files,
        stats.compaction.kept,
        stats.compaction.superseded,
        stats.compaction.corrupt,
    );
    server.run().map_err(|e| e.to_string())?;
    println!("mpstream serve: drained, exiting");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Option<ServeCommand>, String> {
        parse_serve_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn serve_flags_parse() {
        let cmd = parse(&[
            "serve",
            "--addr",
            "0.0.0.0:9000",
            "--store",
            "/tmp/s",
            "--jobs",
            "8",
            "--queue",
            "2",
        ])
        .unwrap()
        .unwrap();
        match cmd {
            ServeCommand::Serve(opts) => {
                assert_eq!(opts.addr, "0.0.0.0:9000");
                assert_eq!(opts.store_dir, PathBuf::from("/tmp/s"));
                assert_eq!(opts.http_workers, 8);
                assert_eq!(opts.queue_capacity, 2);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["serve", "--jobs", "0"]).is_err());
        assert!(parse(&["serve", "--bogus"]).is_err());
    }

    #[test]
    fn submit_reuses_the_sweep_grammar() {
        let cmd = parse(&[
            "submit",
            "--addr",
            "h:1",
            "--kernel",
            "copy",
            "--vectors",
            "1,2",
        ])
        .unwrap()
        .unwrap();
        match cmd {
            ServeCommand::Submit { addr, spec } => {
                assert_eq!(addr, "h:1");
                let req = spec::spec_to_request(&spec).unwrap();
                assert_eq!(req.widths, vec![1, 2]);
            }
            other => panic!("{other:?}"),
        }
        // Invalid sweep flags fail at parse time, before any network.
        assert!(parse(&["submit", "--kernel", "fma"]).is_err());
        assert!(parse(&["submit", "--checkpoint", "x"]).is_err());
    }

    #[test]
    fn submit_accepts_a_leading_dse_token() {
        let cmd = parse(&["submit", "dse", "--strategy", "genetic", "--budget", "7"])
            .unwrap()
            .unwrap();
        match cmd {
            ServeCommand::Submit { spec, .. } => {
                let req = spec::spec_to_request(&spec).unwrap();
                assert_eq!(req.mode, core_cli::CliMode::Dse);
                assert_eq!(req.strategy, core_cli::DseStrategy::Genetic);
                assert_eq!(req.budget, Some(7));
            }
            other => panic!("{other:?}"),
        }
        // DSE-only flags without the token still fail as sweep flags.
        assert!(parse(&["submit", "--strategy", "genetic"]).is_err());
    }

    #[test]
    fn status_fetch_cancel_grammar() {
        assert_eq!(
            parse(&["status"]).unwrap().unwrap(),
            ServeCommand::Status {
                addr: "127.0.0.1:8377".into(),
                id: None
            }
        );
        assert_eq!(
            parse(&["status", "7"]).unwrap().unwrap(),
            ServeCommand::Status {
                addr: "127.0.0.1:8377".into(),
                id: Some(7)
            }
        );
        assert_eq!(
            parse(&["fetch", "3", "--results"]).unwrap().unwrap(),
            ServeCommand::Fetch {
                addr: "127.0.0.1:8377".into(),
                id: 3,
                results: true
            }
        );
        assert_eq!(
            parse(&["cancel", "3"]).unwrap().unwrap(),
            ServeCommand::Cancel {
                addr: "127.0.0.1:8377".into(),
                id: 3
            }
        );
        assert!(parse(&["fetch"]).is_err());
        assert!(parse(&["cancel", "x"]).is_err());
        assert!(parse(&["status", "1", "2"]).is_err());
        assert_eq!(parse(&["status", "--help"]).unwrap(), None);
    }

    #[test]
    fn serve_command_detection() {
        let v = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert!(is_serve_command(&v(&["serve"])));
        assert!(is_serve_command(&v(&["submit", "--kernel", "copy"])));
        assert!(!is_serve_command(&v(&["sweep"])));
        assert!(!is_serve_command(&v(&[])));
    }
}
