//! Argument grammar and execution for the service subcommands:
//! `mpstream serve|submit|status|fetch|cancel`. Factored as a library
//! (like `mpstream_core::cli`) so it is unit-testable; the workspace
//! binary dispatches here when the first argument names one of these
//! subcommands.

use crate::client::{http_request_keyed, ClientOpts};
use crate::retention::RetentionPolicy;
use crate::server::{ServeOpts, Server};
use crate::signal::ShutdownSignal;
use crate::spec;
use mpstream_core::cli as core_cli;
use mpstream_core::json::parse_flat_object;
use std::path::PathBuf;
use std::time::Duration;

/// Usage text for the service subcommands.
pub const USAGE: &str = "\
usage: mpstream serve [--addr H:P] [--store DIR] [--jobs N] [--queue N]
                      [--tenants FILE] [--retention TERMS]
                      [--deadline-ms N] [--conn-requests N]
       mpstream submit [--addr H:P] [dse] <flags>   queue a sweep or search, print its job id
       mpstream status [--addr H:P] [ID]            one job's progress, or all jobs
       mpstream fetch  [--addr H:P] ID [--results]  fetch the report (or raw results)
       mpstream watch  [--addr H:P] ID              follow a job live: streamed records,
                                                    progress line and bandwidth chart
       mpstream cancel [--addr H:P] ID              cancel a queued or running job

  --addr <host:port>   server address (default 127.0.0.1:8377)
  --api-key <key>      tenant API key for submit/status/fetch/cancel
                       (default $MPSTREAM_API_KEY; sent as Bearer auth)
  serve --store <dir>  result-store directory (default ./mpstream-store)
  serve --jobs <N>     HTTP worker threads (default 4)
  serve --queue <N>    job-queue capacity before 503 (default 16)
  serve --tenants <f>  tenants.jsonl with per-tenant API keys, rate
                       limits, and queue quotas (default anonymous-only)
  serve --retention <t> store bounds: max-jobs=N,max-bytes=N[K|M|G],
                       min-age-s=N (default unbounded)
  serve --deadline-ms <N>  total per-request read deadline (default 10000)
  serve --conn-requests <N> requests served per connection (default 256)
  serve --chaos-profile <p> chaos-test profile (quick); test hook
  submit takes the same flags as `mpstream sweep` (or, with a leading
  `dse` token, `mpstream dse`; see `mpstream --help`), minus the
  local-only --checkpoint/--resume/--trace.";

/// A parsed service subcommand.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeCommand {
    /// Run the daemon.
    Serve(ServeOpts),
    /// POST a sweep spec.
    Submit {
        /// Server address.
        addr: String,
        /// Tenant API key sent as `Authorization: Bearer`.
        api_key: Option<String>,
        /// The job-spec JSON line.
        spec: String,
    },
    /// GET one job's status, or all jobs.
    Status {
        /// Server address.
        addr: String,
        /// Tenant API key sent as `Authorization: Bearer`.
        api_key: Option<String>,
        /// Job id, or `None` for the full listing.
        id: Option<u64>,
    },
    /// GET a job's report or raw results.
    Fetch {
        /// Server address.
        addr: String,
        /// Tenant API key sent as `Authorization: Bearer`.
        api_key: Option<String>,
        /// Job id.
        id: u64,
        /// Page through the raw checkpoint lines instead.
        results: bool,
    },
    /// POST a cancellation.
    Cancel {
        /// Server address.
        addr: String,
        /// Tenant API key sent as `Authorization: Bearer`.
        api_key: Option<String>,
        /// Job id.
        id: u64,
    },
    /// Follow `GET /jobs/{id}/stream` live.
    Watch {
        /// Server address.
        addr: String,
        /// Tenant API key sent as `Authorization: Bearer`.
        api_key: Option<String>,
        /// Job id.
        id: u64,
    },
}

/// Does this argument vector start with a service subcommand?
pub fn is_serve_command(args: &[String]) -> bool {
    matches!(
        args.first().map(String::as_str),
        Some("serve" | "submit" | "status" | "fetch" | "cancel" | "watch")
    )
}

/// Parse a service argument vector (`Ok(None)` for `--help`).
pub fn parse_serve_args(args: &[String]) -> Result<Option<ServeCommand>, String> {
    let (verb, mut rest): (&str, Vec<String>) = match args.split_first() {
        Some((v, rest)) => (v.as_str(), rest.to_vec()),
        None => return Err("missing subcommand".into()),
    };
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(None);
    }
    let mut addr = "127.0.0.1:8377".to_string();
    if let Some(pos) = rest.iter().position(|a| a == "--addr") {
        if pos + 1 >= rest.len() {
            return Err("--addr needs a value".into());
        }
        addr = rest.remove(pos + 1);
        rest.remove(pos);
    }
    // Client subcommands authenticate with --api-key (or the
    // MPSTREAM_API_KEY env); the daemon itself takes --tenants.
    let mut api_key = None;
    if verb != "serve" {
        if let Some(pos) = rest.iter().position(|a| a == "--api-key") {
            if pos + 1 >= rest.len() {
                return Err("--api-key needs a value".into());
            }
            api_key = Some(rest.remove(pos + 1));
            rest.remove(pos);
        }
        if api_key.is_none() {
            api_key = mpstream_core::env::string("MPSTREAM_API_KEY");
        }
    }

    match verb {
        "serve" => {
            let mut opts = ServeOpts {
                addr,
                ..ServeOpts::default()
            };
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                let mut need = |flag: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{flag} needs a value"))
                };
                match arg.as_str() {
                    "--store" => opts.store_dir = PathBuf::from(need("--store")?),
                    "--jobs" => {
                        opts.http_workers = need("--jobs")?
                            .parse()
                            .ok()
                            .filter(|&n: &usize| n > 0)
                            .ok_or("--jobs needs a positive integer")?;
                    }
                    "--queue" => {
                        opts.queue_capacity = need("--queue")?
                            .parse()
                            .ok()
                            .filter(|&n: &usize| n > 0)
                            .ok_or("--queue needs a positive integer")?;
                    }
                    "--tenants" => opts.tenants_file = Some(PathBuf::from(need("--tenants")?)),
                    "--retention" => {
                        opts.retention = RetentionPolicy::parse(&need("--retention")?)?;
                    }
                    "--deadline-ms" => {
                        opts.request_deadline = Duration::from_millis(
                            need("--deadline-ms")?
                                .parse()
                                .ok()
                                .filter(|&n: &u64| n > 0)
                                .ok_or("--deadline-ms needs a positive integer")?,
                        );
                    }
                    "--conn-requests" => {
                        opts.max_requests_per_conn = need("--conn-requests")?
                            .parse()
                            .ok()
                            .filter(|&n: &usize| n > 0)
                            .ok_or("--conn-requests needs a positive integer")?;
                    }
                    "--chaos-profile" => {
                        let profile = need("--chaos-profile")?;
                        // Validate the name at parse time; bind applies it.
                        opts.clone().apply_chaos_profile(&profile)?;
                        opts.chaos_profile = Some(profile);
                    }
                    other => return Err(format!("unknown serve argument '{other}'")),
                }
            }
            Ok(Some(ServeCommand::Serve(opts)))
        }
        "submit" => {
            // Everything left is sweep or dse grammar; reuse the core
            // parser. A leading `sweep`/`dse` token passes through,
            // anything else defaults to a sweep (the PR-4 grammar).
            let mut core_args: Vec<String> = Vec::new();
            if !matches!(rest.first().map(String::as_str), Some("sweep" | "dse")) {
                core_args.push("sweep".to_string());
            }
            core_args.extend(rest);
            let req = core_cli::parse_args(&core_args)?
                .ok_or("submit takes sweep/dse flags, not --help")?;
            let spec = spec::request_to_spec(&req)?;
            Ok(Some(ServeCommand::Submit {
                addr,
                api_key,
                spec,
            }))
        }
        "status" => {
            let id = match rest.as_slice() {
                [] => None,
                [id] => Some(parse_job_id(id)?),
                _ => return Err("status takes at most one job id".into()),
            };
            Ok(Some(ServeCommand::Status { addr, api_key, id }))
        }
        "fetch" => {
            let results = rest.iter().any(|a| a == "--results");
            let ids: Vec<&String> = rest.iter().filter(|a| *a != "--results").collect();
            match ids.as_slice() {
                [id] => Ok(Some(ServeCommand::Fetch {
                    addr,
                    api_key,
                    id: parse_job_id(id)?,
                    results,
                })),
                _ => Err("fetch takes exactly one job id".into()),
            }
        }
        "cancel" => match rest.as_slice() {
            [id] => Ok(Some(ServeCommand::Cancel {
                addr,
                api_key,
                id: parse_job_id(id)?,
            })),
            _ => Err("cancel takes exactly one job id".into()),
        },
        "watch" => match rest.as_slice() {
            [id] => Ok(Some(ServeCommand::Watch {
                addr,
                api_key,
                id: parse_job_id(id)?,
            })),
            _ => Err("watch takes exactly one job id".into()),
        },
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

fn parse_job_id(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("invalid job id '{s}'"))
}

/// Expect a 2xx reply, turning anything else into a readable error.
fn expect_ok(
    reply: crate::client::HttpReply,
    what: &str,
) -> Result<crate::client::HttpReply, String> {
    if (200..300).contains(&reply.status) {
        Ok(reply)
    } else {
        let detail = parse_flat_object(reply.text().trim())
            .and_then(|o| o.get("error")?.as_str().map(str::to_string))
            .unwrap_or_else(|| reply.text().trim().to_string());
        Err(format!("{what}: HTTP {} — {detail}", reply.status))
    }
}

/// Execute a client subcommand, returning the text to print.
/// ([`ServeCommand::Serve`] is executed by [`run_server`] instead —
/// it blocks for the daemon's lifetime.)
pub fn run_client(cmd: &ServeCommand) -> Result<String, String> {
    let request = |addr: &str, api_key: &Option<String>, method: &str, path: &str, body: &[u8]| {
        http_request_keyed(
            addr,
            method,
            path,
            body,
            api_key.as_deref(),
            &ClientOpts::default(),
        )
    };
    match cmd {
        ServeCommand::Serve(_) => Err("serve must go through run_server".into()),
        ServeCommand::Submit {
            addr,
            api_key,
            spec,
        } => {
            let reply = expect_ok(
                request(addr, api_key, "POST", "/jobs", spec.as_bytes())?,
                "submit",
            )?;
            let obj =
                parse_flat_object(reply.text().trim()).ok_or("submit: unparseable server reply")?;
            let id = obj.get("id").and_then(|v| v.as_u64()).unwrap_or(0);
            let total = obj.get("total").and_then(|v| v.as_u64()).unwrap_or(0);
            Ok(format!("job {id} queued ({total} points)\n"))
        }
        ServeCommand::Status { addr, api_key, id } => {
            let path = match id {
                Some(id) => format!("/jobs/{id}"),
                None => "/jobs".to_string(),
            };
            let reply = expect_ok(request(addr, api_key, "GET", &path, b"")?, "status")?;
            let mut out = String::new();
            for line in reply.text().lines() {
                let Some(obj) = parse_flat_object(line) else {
                    continue;
                };
                let field = |k: &str| obj.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
                let state = obj
                    .get("state")
                    .and_then(|v| v.as_str())
                    .unwrap_or("unknown");
                out.push_str(&format!(
                    "job {}: {} ({}/{} points)\n",
                    field("id"),
                    state,
                    field("done"),
                    field("total"),
                ));
            }
            if out.is_empty() {
                out.push_str("no jobs\n");
            }
            Ok(out)
        }
        ServeCommand::Fetch {
            addr,
            api_key,
            id,
            results,
        } => {
            if !results {
                let reply = expect_ok(
                    request(addr, api_key, "GET", &format!("/jobs/{id}/report"), b"")?,
                    "fetch",
                )?;
                return Ok(reply.text());
            }
            // Page through the raw result feed.
            let mut out = String::new();
            let mut offset = 0usize;
            loop {
                let reply = expect_ok(
                    request(
                        addr,
                        api_key,
                        "GET",
                        &format!("/jobs/{id}/results?offset={offset}&limit=256"),
                        b"",
                    )?,
                    "fetch",
                )?;
                let count: usize = reply
                    .header("x-count")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0);
                let total: usize = reply
                    .header("x-total")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0);
                out.push_str(&reply.text());
                offset += count;
                if count == 0 || offset >= total {
                    return Ok(out);
                }
            }
        }
        ServeCommand::Cancel { addr, api_key, id } => {
            let reply = expect_ok(
                request(addr, api_key, "POST", &format!("/jobs/{id}/cancel"), b"")?,
                "cancel",
            )?;
            let state = parse_flat_object(reply.text().trim())
                .and_then(|o| o.get("state")?.as_str().map(str::to_string))
                .unwrap_or_else(|| "unknown".into());
            Ok(format!("job {id}: {state}\n"))
        }
        ServeCommand::Watch { addr, api_key, id } => {
            let tty = std::io::IsTerminal::is_terminal(&std::io::stdout());
            watch_job(addr, api_key.as_deref(), *id, tty)
        }
    }
}

/// `mpstream watch`: consume `GET /jobs/{id}/stream` to the end. On a
/// TTY, records update an in-place progress line (count + a bandwidth
/// sparkline) and the summary closes with a full chart; off a TTY
/// (pipe, CI log) every record line is echoed verbatim — the stream is
/// then byte-material for scripts, not a display.
fn watch_job(addr: &str, api_key: Option<&str>, id: u64, tty: bool) -> Result<String, String> {
    use crate::client::{http_stream_keyed, StreamReply};
    let reply = http_stream_keyed(
        addr,
        &format!("/jobs/{id}/stream"),
        api_key,
        &ClientOpts::default(),
    )?;
    let mut stream = match reply {
        StreamReply::Open(s) => s,
        StreamReply::Refused(r) => {
            expect_ok(r, "watch")?;
            return Err("watch: server answered without a stream".into());
        }
    };
    let mut gbps: Vec<f64> = Vec::new();
    let mut records = 0usize;
    let mut errors = 0usize;
    let mut status: Option<String> = None;
    while let Some(line) = stream.next_line()? {
        if line.starts_with(':') {
            continue; // heartbeat / comment chunk
        }
        let Some(obj) = parse_flat_object(&line) else {
            continue;
        };
        if obj.contains_key("key") {
            records += 1;
            // Bandwidth from the record's own fields: bytes over the
            // best wall time; bytes/ns is numerically GB/s.
            let raw = |k: &str| obj.get(k).and_then(|v| v.as_raw()?.parse::<f64>().ok());
            match (raw("bytes_moved"), raw("best_wall_ns")) {
                (Some(bytes), Some(ns)) if ns > 0.0 => gbps.push(bytes / ns),
                _ => errors += 1,
            }
            if tty {
                let tail = &gbps[gbps.len().saturating_sub(48)..];
                let last = tail.last().map_or(0.0, |v| *v);
                print!(
                    "\rjob {id}: {records} records  [{}] {last:.3} GB/s   ",
                    mpstream_core::sparkline(tail)
                );
                let _ = std::io::Write::flush(&mut std::io::stdout());
            } else {
                println!("{line}");
            }
        } else if obj.contains_key("state") {
            if !tty {
                println!("{line}");
            }
            status = Some(line);
        }
    }
    if tty && records > 0 {
        println!();
    }
    let status = status.ok_or("watch: stream ended without a status line")?;
    let obj = parse_flat_object(&status).ok_or("watch: malformed status line")?;
    let field = |k: &str| obj.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
    let state = obj
        .get("state")
        .and_then(|v| v.as_str())
        .unwrap_or("unknown");
    let mut out = String::new();
    if tty && !gbps.is_empty() {
        let points: Vec<(f64, f64)> = gbps
            .iter()
            .enumerate()
            .map(|(i, &y)| ((i + 1) as f64, y))
            .collect();
        let chart = mpstream_core::Chart::new(format!("job {id}: bandwidth by completion order"))
            .size(64, 12)
            .y_scale(mpstream_core::Scale::Log10)
            .x_label("record")
            .y_label("GB/s")
            .line(mpstream_core::Series::new("GB/s", points));
        out.push_str(&chart.render());
    }
    out.push_str(&format!(
        "job {id}: {state} ({}/{} points, {records} records streamed",
        field("done"),
        field("total"),
    ));
    if errors > 0 {
        out.push_str(&format!(", {errors} without a measurement"));
    }
    out.push_str(")\n");
    Ok(out)
}

/// Run the daemon until SIGTERM/SIGINT, then drain and return. Prints
/// the bound address on startup so scripts can scrape it.
pub fn run_server(opts: ServeOpts) -> Result<(), String> {
    let server = Server::bind(opts.clone()).map_err(|e| format!("bind {}: {e}", opts.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    let handle = server.shutdown_handle().map_err(|e| e.to_string())?;
    let signal = ShutdownSignal::install().map_err(|e| format!("signal handler: {e}"))?;
    std::thread::Builder::new()
        .name("mpstream-signal-watch".into())
        .spawn(move || {
            signal.wait();
            handle.trigger();
        })
        .map_err(|e| e.to_string())?;
    let stats = server.store().startup_stats();
    println!(
        "mpstream serve: listening on {addr}, store {} ({} files compacted: {} kept, {} superseded, {} corrupt dropped)",
        opts.store_dir.display(),
        stats.files,
        stats.compaction.kept,
        stats.compaction.superseded,
        stats.compaction.corrupt,
    );
    if let Some(profile) = &opts.chaos_profile {
        println!("mpstream serve: chaos profile '{profile}' active");
    }
    if opts.tenants_file.is_some() || !opts.retention.is_unbounded() {
        println!(
            "mpstream serve: tenants {}, retention {}",
            match &opts.tenants_file {
                Some(p) => p.display().to_string(),
                None => "anonymous-only".into(),
            },
            if opts.retention.is_unbounded() {
                "unbounded".into()
            } else {
                format!(
                    "max-jobs={} max-bytes={} min-age-s={}",
                    opts.retention.max_jobs,
                    opts.retention.max_bytes,
                    opts.retention.min_age.as_secs()
                )
            }
        );
    }
    server.run().map_err(|e| e.to_string())?;
    println!("mpstream serve: drained, exiting");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Option<ServeCommand>, String> {
        parse_serve_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn serve_flags_parse() {
        let cmd = parse(&[
            "serve",
            "--addr",
            "0.0.0.0:9000",
            "--store",
            "/tmp/s",
            "--jobs",
            "8",
            "--queue",
            "2",
        ])
        .unwrap()
        .unwrap();
        match cmd {
            ServeCommand::Serve(opts) => {
                assert_eq!(opts.addr, "0.0.0.0:9000");
                assert_eq!(opts.store_dir, PathBuf::from("/tmp/s"));
                assert_eq!(opts.http_workers, 8);
                assert_eq!(opts.queue_capacity, 2);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["serve", "--jobs", "0"]).is_err());
        assert!(parse(&["serve", "--bogus"]).is_err());
    }

    #[test]
    fn serve_hardening_flags_parse() {
        let cmd = parse(&[
            "serve",
            "--tenants",
            "/tmp/tenants.jsonl",
            "--retention",
            "max-jobs=32,max-bytes=64M",
            "--deadline-ms",
            "2500",
            "--conn-requests",
            "100",
        ])
        .unwrap()
        .unwrap();
        match cmd {
            ServeCommand::Serve(opts) => {
                assert_eq!(opts.tenants_file, Some(PathBuf::from("/tmp/tenants.jsonl")));
                assert_eq!(opts.retention.max_jobs, 32);
                assert_eq!(opts.retention.max_bytes, 64 << 20);
                assert_eq!(opts.request_deadline, Duration::from_millis(2500));
                assert_eq!(opts.max_requests_per_conn, 100);
                assert_eq!(opts.chaos_profile, None);
            }
            other => panic!("{other:?}"),
        }
        match parse(&["serve", "--chaos-profile", "quick"])
            .unwrap()
            .unwrap()
        {
            ServeCommand::Serve(opts) => assert_eq!(opts.chaos_profile.as_deref(), Some("quick")),
            other => panic!("{other:?}"),
        }
        assert!(parse(&["serve", "--chaos-profile", "nope"]).is_err());
        assert!(parse(&["serve", "--retention", "max-jobs=zero"]).is_err());
        assert!(parse(&["serve", "--deadline-ms", "0"]).is_err());
    }

    #[test]
    fn submit_reuses_the_sweep_grammar() {
        let cmd = parse(&[
            "submit",
            "--addr",
            "h:1",
            "--kernel",
            "copy",
            "--vectors",
            "1,2",
        ])
        .unwrap()
        .unwrap();
        match cmd {
            ServeCommand::Submit { addr, spec, .. } => {
                assert_eq!(addr, "h:1");
                let req = spec::spec_to_request(&spec).unwrap();
                assert_eq!(req.widths, vec![1, 2]);
            }
            other => panic!("{other:?}"),
        }
        // --api-key is peeled off before the sweep grammar sees it.
        match parse(&["submit", "--api-key", "k1", "--kernel", "copy"])
            .unwrap()
            .unwrap()
        {
            ServeCommand::Submit { api_key, .. } => assert_eq!(api_key.as_deref(), Some("k1")),
            other => panic!("{other:?}"),
        }
        assert!(parse(&["submit", "--kernel", "copy", "--api-key"]).is_err());
        // The daemon does not take --api-key; it takes --tenants.
        assert!(parse(&["serve", "--api-key", "k1"]).is_err());
        // Invalid sweep flags fail at parse time, before any network.
        assert!(parse(&["submit", "--kernel", "fma"]).is_err());
        assert!(parse(&["submit", "--checkpoint", "x"]).is_err());
    }

    #[test]
    fn submit_accepts_a_leading_dse_token() {
        let cmd = parse(&["submit", "dse", "--strategy", "genetic", "--budget", "7"])
            .unwrap()
            .unwrap();
        match cmd {
            ServeCommand::Submit { spec, .. } => {
                let req = spec::spec_to_request(&spec).unwrap();
                assert_eq!(req.mode, core_cli::CliMode::Dse);
                assert_eq!(req.strategy, core_cli::DseStrategy::Genetic);
                assert_eq!(req.budget, Some(7));
            }
            other => panic!("{other:?}"),
        }
        // DSE-only flags without the token still fail as sweep flags.
        assert!(parse(&["submit", "--strategy", "genetic"]).is_err());
    }

    #[test]
    fn status_fetch_cancel_grammar() {
        assert_eq!(
            parse(&["status"]).unwrap().unwrap(),
            ServeCommand::Status {
                addr: "127.0.0.1:8377".into(),
                api_key: None,
                id: None
            }
        );
        assert_eq!(
            parse(&["status", "7"]).unwrap().unwrap(),
            ServeCommand::Status {
                addr: "127.0.0.1:8377".into(),
                api_key: None,
                id: Some(7)
            }
        );
        assert_eq!(
            parse(&["fetch", "3", "--results"]).unwrap().unwrap(),
            ServeCommand::Fetch {
                addr: "127.0.0.1:8377".into(),
                api_key: None,
                id: 3,
                results: true
            }
        );
        assert_eq!(
            parse(&["cancel", "3", "--api-key", "k2"]).unwrap().unwrap(),
            ServeCommand::Cancel {
                addr: "127.0.0.1:8377".into(),
                api_key: Some("k2".into()),
                id: 3
            }
        );
        assert!(parse(&["fetch"]).is_err());
        assert!(parse(&["cancel", "x"]).is_err());
        assert!(parse(&["status", "1", "2"]).is_err());
        assert_eq!(parse(&["status", "--help"]).unwrap(), None);
    }

    #[test]
    fn serve_command_detection() {
        let v = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert!(is_serve_command(&v(&["serve"])));
        assert!(is_serve_command(&v(&["submit", "--kernel", "copy"])));
        assert!(!is_serve_command(&v(&["sweep"])));
        assert!(!is_serve_command(&v(&[])));
    }
}
