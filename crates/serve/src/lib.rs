//! # mpstream-serve — benchmark-as-a-service
//!
//! The daemon layer over the core sweep/DSE engine: a zero-dependency
//! HTTP/1.1 server (`std::net` only) that accepts sweep jobs, runs
//! them on the [`mpstream_core::Engine`], persists every finished
//! point to a crash-safe store, and exposes progress and Prometheus
//! metrics. The pieces:
//!
//! * [`http`] — the defensive request parser and response writer;
//! * [`spec`] — the wire form of a sweep job (flat JSON ⇄ the CLI's
//!   own [`CliRequest`](mpstream_core::cli::CliRequest), so submitted
//!   jobs have exactly the offline semantics);
//! * [`store`] — the persistent result store: job journal, per-job
//!   sweep checkpoints, rendered reports; compacts itself on startup;
//! * [`jobs`] — the bounded job queue and runner thread, with
//!   cooperative cancellation and resume-after-restart;
//! * [`metrics`] — daemon counters in Prometheus exposition format;
//! * [`server`] — accept loop, worker pool, routing, graceful drain;
//! * [`signal`] — SIGTERM/SIGINT via the self-pipe trick, no libc
//!   crate;
//! * [`client`] — the minimal HTTP client behind `mpstream
//!   submit|status|fetch|cancel|watch`, including the incremental
//!   chunked-stream reader `watch` renders from;
//! * [`cli`] — argument grammar and execution for the service
//!   subcommands.
//!
//! The production-hardening layer rides on three more modules:
//! [`tenant`] (API keys, token-bucket rate limits, queue quotas),
//! [`retention`] (bounded job history), and [`breaker`] (the client's
//! seeded half-open circuit breaker).

pub mod breaker;
pub mod cli;
pub mod client;
pub mod http;
pub mod jobs;
pub mod metrics;
pub mod retention;
pub mod server;
pub mod signal;
pub mod spec;
pub mod store;
pub mod tenant;

pub use breaker::{BreakerOpts, BreakerState, CircuitBreaker};
pub use cli::{is_serve_command, parse_serve_args, run_client, run_server, ServeCommand, USAGE};
pub use jobs::{JobExecutor, JobManager};
pub use metrics::Metrics;
pub use retention::{RetentionPolicy, RetentionStats};
pub use server::{RouteHook, ServeOpts, Server};
pub use store::{JobRecord, JobState, ResultStore};
pub use tenant::{Tenant, TenantRegistry, TenantSpec};
