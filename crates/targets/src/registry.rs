//! The standard four-target registry, mirroring the paper's experimental
//! setup (§IV).

use crate::{AoclBackend, CpuBackend, GpuBackend, SdaccelBackend};
use mpcl::{Device, Platform};

/// The four targets, named as the paper's figure legends name them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetId {
    /// Altera Stratix V via AOCL ("aocl").
    FpgaAocl,
    /// Xilinx Virtex-7 via SDAccel ("sdaccel").
    FpgaSdaccel,
    /// Intel Xeon E5-2609 v2 ("cpu").
    Cpu,
    /// GTX Titan Black ("gpu").
    Gpu,
}

impl TargetId {
    /// All four, in the paper's legend order.
    pub const ALL: [TargetId; 4] = [
        TargetId::FpgaAocl,
        TargetId::FpgaSdaccel,
        TargetId::Cpu,
        TargetId::Gpu,
    ];

    /// The figure-legend label.
    pub fn label(self) -> &'static str {
        match self {
            TargetId::FpgaAocl => "aocl",
            TargetId::FpgaSdaccel => "sdaccel",
            TargetId::Cpu => "cpu",
            TargetId::Gpu => "gpu",
        }
    }

    /// Parse a figure-legend label.
    pub fn from_label(s: &str) -> Option<TargetId> {
        match s {
            "aocl" => Some(TargetId::FpgaAocl),
            "sdaccel" => Some(TargetId::FpgaSdaccel),
            "cpu" => Some(TargetId::Cpu),
            "gpu" => Some(TargetId::Gpu),
            _ => None,
        }
    }

    /// Is this one of the FPGA flows?
    pub fn is_fpga(self) -> bool {
        matches!(self, TargetId::FpgaAocl | TargetId::FpgaSdaccel)
    }
}

/// A fresh device for one target, with default (paper-calibrated) tuning.
pub fn standard_device(id: TargetId) -> Device {
    match id {
        TargetId::Cpu => Device::new(Box::new(CpuBackend::new())),
        TargetId::Gpu => Device::new(Box::new(GpuBackend::new())),
        TargetId::FpgaAocl => Device::new(Box::new(AoclBackend::new())),
        TargetId::FpgaSdaccel => Device::new(Box::new(SdaccelBackend::new())),
    }
}

/// The full experimental setup: four platforms, one device each, exactly
/// as `clGetPlatformIDs` would enumerate them on the paper's machines.
pub fn standard_platforms() -> Vec<Platform> {
    vec![
        Platform::new(
            "Intel(R) OpenCL",
            "Intel(R) Corporation",
            "OpenCL 1.2",
            vec![standard_device(TargetId::Cpu)],
        ),
        Platform::new(
            "NVIDIA CUDA",
            "NVIDIA Corporation",
            "OpenCL 1.2 CUDA",
            vec![standard_device(TargetId::Gpu)],
        ),
        Platform::new(
            "Altera SDK for OpenCL",
            "Altera Corporation",
            "OpenCL 1.0 Altera SDK v15.1",
            vec![standard_device(TargetId::FpgaAocl)],
        ),
        Platform::new(
            "Xilinx SDAccel",
            "Xilinx, Inc.",
            "OpenCL 1.0 SDAccel 2015.1",
            vec![standard_device(TargetId::FpgaSdaccel)],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcl::DeviceType;

    #[test]
    fn four_platforms_with_one_device_each() {
        let ps = standard_platforms();
        assert_eq!(ps.len(), 4);
        assert!(ps.iter().all(|p| p.devices().len() == 1));
    }

    #[test]
    fn labels_round_trip() {
        for id in TargetId::ALL {
            assert_eq!(TargetId::from_label(id.label()), Some(id));
        }
        assert_eq!(TargetId::from_label("tpu"), None);
    }

    #[test]
    fn device_types_match() {
        assert_eq!(
            standard_device(TargetId::Cpu).info().device_type,
            DeviceType::Cpu
        );
        assert_eq!(
            standard_device(TargetId::Gpu).info().device_type,
            DeviceType::Gpu
        );
        assert_eq!(
            standard_device(TargetId::FpgaAocl).info().device_type,
            DeviceType::Accelerator
        );
    }

    #[test]
    fn peak_bandwidths_match_paper_quotes() {
        // §IV: CPU 34, GPU 336, AOCL 25, SDAccel 10 GB/s.
        let peak = |id| standard_device(id).info().peak_gbps;
        assert!((peak(TargetId::Cpu) - 34.0).abs() < 1.0);
        assert!((peak(TargetId::Gpu) - 336.0).abs() < 2.0);
        assert!((peak(TargetId::FpgaAocl) - 25.6).abs() < 1.0);
        assert!((peak(TargetId::FpgaSdaccel) - 10.6).abs() < 1.0);
    }

    #[test]
    fn fpga_flag() {
        assert!(TargetId::FpgaAocl.is_fpga());
        assert!(!TargetId::Gpu.is_fpga());
    }
}
