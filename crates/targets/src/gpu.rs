//! GPU target: Nvidia GeForce GTX Titan Black (Kepler GK110B, 15 SMX,
//! 384-bit GDDR5 @ 7 GT/s — "336 GB/s Peak BW" in the paper).
//!
//! NDRange kernels expose enormous memory-level parallelism: each warp's
//! 32 lane accesses coalesce into aligned 128 B segments, and hundreds of
//! outstanding segments keep the GDDR5 bus near saturation — the GPU's
//! sustained bandwidth sits close to peak (Fig. 1). A *single work-item*
//! kernel collapses to one latency-bound thread (Fig. 3). The
//! column-major pattern breaks intra-warp coalescing (32 separate
//! segments per instruction); bandwidth is then bounded by the L2 while
//! column working sets fit and by 32x-wasted DRAM bursts beyond — the
//! Fig. 2 strided curve, including its collapse past ~100 MB.

use crate::common::run_plan;
use kernelgen::{ExecPlan, KernelConfig, LoopMode};
use memsim::{
    CacheConfig, Coalescer, DramConfig, Link, LinkConfig, MemHierarchy, MemHierarchyConfig,
    WritePolicy,
};
use mpcl::{BuildArtifact, ClError, DeviceBackend, DeviceInfo, DeviceType, KernelCost, PowerModel};

/// Tuning constants of the GPU model.
#[derive(Debug, Clone)]
pub struct GpuTuning {
    /// Warp width (lane group for NDRange coalescing).
    pub warp: u32,
    /// Memory transaction segment size, bytes.
    pub segment_bytes: u32,
    /// L2 cache geometry.
    pub l2: CacheConfig,
    /// Amortized L2 hit cost per transaction under full occupancy, ns.
    pub l2_hit_ns: f64,
    /// Per-transaction issue slot cost under full occupancy, ns.
    pub issue_ns_per_transaction: f64,
    /// Outstanding memory transactions at full occupancy.
    pub mlp_full: usize,
    /// GDDR5 device.
    pub dram: DramConfig,
    /// Interconnect + controller latency per demand miss, ns.
    pub dram_extra_latency_ns: f64,
    /// Per-warp-instruction front-end cost, ns (charged per *lane*
    /// access before coalescing: `warp_issue_ns / warp`).
    pub warp_issue_ns: f64,
    /// Single-thread (single work-item) parameters: per-access issue
    /// cost, L2 hit latency and usable MLP.
    pub single_issue_ns: f64,
    pub single_l2_hit_ns: f64,
    pub single_mlp: usize,
    /// Kernel launch overhead (driver + PCIe doorbell), ns.
    pub launch_overhead_ns: f64,
    /// PCIe link.
    pub link: LinkConfig,
    /// Simulation sample cap (kernel-side accesses).
    pub sample_cap: u64,
}

impl Default for GpuTuning {
    fn default() -> Self {
        GpuTuning {
            warp: 32,
            segment_bytes: 128,
            l2: CacheConfig {
                size_bytes: 1536 << 10,
                ways: 16,
                line_bytes: 128,
            },
            l2_hit_ns: 0.07,
            issue_ns_per_transaction: 0.07,
            mlp_full: 768,
            dram: DramConfig::gddr5_titan(),
            dram_extra_latency_ns: 250.0,
            warp_issue_ns: 0.10,
            single_issue_ns: 1.0,
            single_l2_hit_ns: 100.0,
            single_mlp: 1,
            launch_overhead_ns: 7_000.0,
            link: LinkConfig::pcie_gen3_x16(),
            sample_cap: 1_500_000,
        }
    }
}

/// The GPU device model.
#[derive(Debug)]
pub struct GpuBackend {
    tuning: GpuTuning,
    link: Link,
}

impl GpuBackend {
    /// Build with the paper-calibrated defaults.
    pub fn new() -> Self {
        Self::with_tuning(GpuTuning::default())
    }

    /// Build with explicit tuning.
    pub fn with_tuning(tuning: GpuTuning) -> Self {
        let link = Link::new(tuning.link);
        GpuBackend { tuning, link }
    }

    /// The tuning in effect.
    pub fn tuning(&self) -> &GpuTuning {
        &self.tuning
    }

    /// Occupancy-limited MLP: wide vector types increase per-thread
    /// register and access footprint, reducing resident warps (the
    /// Fig. 1b decline at width 16); work-groups smaller than a warp
    /// waste scheduler slots and throttle resident parallelism.
    fn occupancy_mlp(&self, cfg: &KernelConfig) -> usize {
        let w = cfg.vector_width.get() as f64;
        let dtype_words = cfg.dtype.word_bytes() as f64 / 4.0;
        let footprint = (w * dtype_words - 1.0) / 8.0;
        let wg_factor = (cfg.work_group_size as f64 / self.tuning.warp as f64).min(1.0);
        ((self.tuning.mlp_full as f64 * wg_factor / (1.0 + footprint)) as usize).max(4)
    }

    fn hierarchy_for(&self, cfg: &KernelConfig) -> MemHierarchy {
        let t = &self.tuning;
        let ndrange = cfg.loop_mode == LoopMode::NdRange;
        MemHierarchyConfig {
            caches: vec![t.l2],
            hit_ns: vec![if ndrange {
                t.l2_hit_ns
            } else {
                t.single_l2_hit_ns
            }],
            tlb: None,
            prefetch: None,
            dram: t.dram.clone(),
            issue_bytes_per_ns: 50_000.0, // not the binding resource
            issue_ns_per_access: if ndrange {
                t.issue_ns_per_transaction
            } else {
                t.single_issue_ns
            },
            mlp: if ndrange {
                self.occupancy_mlp(cfg)
            } else {
                t.single_mlp
            },
            dram_extra_latency_ns: if ndrange {
                t.dram_extra_latency_ns
            } else {
                350.0
            },
            // Write-back L2 with write-validate for full segments: the
            // L2 absorbs strided stores (the Fig. 2 mid-size plateau)
            // while full-line stores skip the read-for-ownership.
            write_policy: WritePolicy::WriteAllocate,
            wc_flush_bytes: 512,
        }
        .pipe(MemHierarchy::new)
    }
}

/// Small piping helper to keep construction readable.
trait Pipe: Sized {
    fn pipe<R>(self, f: impl FnOnce(Self) -> R) -> R {
        f(self)
    }
}
impl<T> Pipe for T {}

impl Default for GpuBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl DeviceBackend for GpuBackend {
    fn info(&self) -> DeviceInfo {
        DeviceInfo {
            name: "GeForce GTX Titan Black".into(),
            vendor: "NVIDIA Corporation".into(),
            device_type: DeviceType::Gpu,
            global_mem_bytes: 6 << 30,
            peak_gbps: self.tuning.dram.peak_gbps(),
            max_compute_units: 15,
            max_work_group_size: 1024,
        }
    }

    fn build(&mut self, cfg: &KernelConfig) -> Result<BuildArtifact, ClError> {
        let lane_group = if cfg.loop_mode == LoopMode::NdRange {
            self.tuning.warp
        } else {
            1
        };
        Ok(BuildArtifact {
            build_log: "clBuildProgram: ok (nvcc ptx)".into(),
            fmax_mhz: None,
            resources: None,
            lane_group,
            synthesis_ns: 45_000_000.0,
        })
    }

    fn kernel_cost(&mut self, artifact: &BuildArtifact, plan: &ExecPlan) -> KernelCost {
        let key = crate::common::cost_key("gpu", &self.tuning, artifact, plan);
        crate::common::memoized_kernel_cost(key, || {
            let ndrange = plan.cfg.loop_mode == LoopMode::NdRange;
            let mut h = self.hierarchy_for(&plan.cfg);
            let co = ndrange
                .then(|| Coalescer::new(self.tuning.segment_bytes, self.tuning.warp as usize));
            let out = run_plan(
                &mut h,
                plan,
                artifact.lane_group,
                co,
                self.tuning.sample_cap,
            );
            let mut ns = out.ns;
            if ndrange {
                // Warp-instruction front-end cost (charged on the raw lane
                // accesses, which the coalescer absorbed before the
                // hierarchy could see them).
                let lane_accesses = kernelgen::total_accesses(&plan.cfg) as f64;
                ns += lane_accesses * self.tuning.warp_issue_ns / self.tuning.warp as f64;
            }
            let cfg = &plan.cfg;
            // DGEMM-lite arithmetic roofline: ~2000 int multiply-adds
            // per ns across the SMX array.
            let base_ns = crate::common::dgemm_roofline_ns(cfg, ns, 2000.0);
            let per_elem_ns = base_ns / cfg.n_vectors().max(1) as f64;
            let (ns, stall_ns) =
                crate::common::channel_overlay(cfg, base_ns, per_elem_ns).unwrap_or((base_ns, 0.0));
            KernelCost {
                ns,
                dram_bytes: out.stats.dram_bytes,
                stats: out.stats,
                stall_ns,
            }
        })
    }

    fn transfer_ns(&mut self, bytes: u64) -> f64 {
        self.link.transfer_ns(bytes)
    }

    fn launch_overhead_ns(&self) -> f64 {
        self.tuning.launch_overhead_ns
    }

    fn power_model(&self) -> Option<PowerModel> {
        Some(crate::power::gpu())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelgen::{AccessPattern, StreamOp, VectorWidth};

    fn gbps(cfg: &KernelConfig, backend: &mut GpuBackend) -> f64 {
        let art = backend.build(cfg).unwrap();
        let bytes = cfg.array_bytes();
        let plan = ExecPlan::new(cfg.clone(), 4096, 4096 + bytes, 8192 + 2 * bytes);
        let ns = backend.kernel_cost(&art, &plan).ns + backend.launch_overhead_ns();
        cfg.bytes_moved() as f64 / ns
    }

    fn copy_cfg(mb: f64) -> KernelConfig {
        let n = (mb * 1e6 / 4.0) as u64;
        KernelConfig::baseline(StreamOp::Copy, n.next_power_of_two())
    }

    #[test]
    fn contiguous_16mb_near_paper_value() {
        // Paper Fig 1a: gpu at 16 MB ≈ 204 GB/s (peak 336).
        let mut b = GpuBackend::new();
        let bw = gbps(&copy_cfg(16.0), &mut b);
        assert!(bw > 130.0 && bw < 336.0, "gpu contiguous 16MB: {bw} GB/s");
    }

    #[test]
    fn small_arrays_launch_bound() {
        // Paper: 1 KB ≈ 0.14 GB/s.
        let mut b = GpuBackend::new();
        let bw = gbps(&copy_cfg(0.001), &mut b);
        assert!(bw < 1.0, "gpu 1KB: {bw}");
    }

    #[test]
    fn gpu_beats_everything_at_size() {
        let mut b = GpuBackend::new();
        let s = [0.01, 0.1, 1.0, 4.0, 16.0, 64.0].map(|mb| gbps(&copy_cfg(mb), &mut b));
        for w in s.windows(2) {
            assert!(w[1] > w[0] * 0.9, "roughly monotone: {s:?}");
        }
        assert!(s[5] > 100.0);
    }

    #[test]
    fn strided_mid_size_l2_bound_then_collapses() {
        // Paper Fig 2: gpu-strided ≈ 29 GB/s at 4-16 MB, < 10 at 256 MB+.
        let mut b = GpuBackend::new();
        let mut at = |mb: f64| {
            let mut c = copy_cfg(mb);
            c.pattern = AccessPattern::ColMajor { cols: None };
            gbps(&c, &mut b)
        };
        let mid = at(4.0);
        let huge = at(512.0);
        let contig = gbps(&copy_cfg(4.0), &mut b);
        assert!(mid < contig / 3.0, "strided mid {mid} vs contig {contig}");
        assert!(mid > 8.0, "L2 keeps mid-size strided alive: {mid}");
        assert!(huge < mid / 1.8, "collapse at huge sizes: {huge} vs {mid}");
    }

    #[test]
    fn single_work_item_is_catastrophic() {
        // Paper Fig 3: GPU single-work-item orders of magnitude slower.
        let mut b = GpuBackend::new();
        let nd = gbps(&copy_cfg(4.0), &mut b);
        let mut flat = copy_cfg(4.0);
        flat.loop_mode = LoopMode::SingleWorkItemFlat;
        let fl = gbps(&flat, &mut b);
        assert!(nd > 100.0 * fl, "ndrange {nd} vs single {fl}");
    }

    #[test]
    fn width16_slower_than_width4() {
        // Paper Fig 1b: gpu declines at width 16 (173 -> 201 -> 117).
        let mut b = GpuBackend::new();
        let mut w4 = copy_cfg(4.0);
        w4.vector_width = VectorWidth::new(4).unwrap();
        let mut w16 = copy_cfg(4.0);
        w16.vector_width = VectorWidth::new(16).unwrap();
        let b4 = gbps(&w4, &mut b);
        let b16 = gbps(&w16, &mut b);
        assert!(b16 < b4, "w16 {b16} vs w4 {b4}");
    }

    #[test]
    fn tiny_work_groups_throttle_bandwidth() {
        // The paper's reqd_work_group_size knob: groups below the warp
        // width waste scheduler slots.
        let mut b = GpuBackend::new();
        let mut small = copy_cfg(4.0);
        small.work_group_size = 4;
        let mut normal = copy_cfg(4.0);
        normal.work_group_size = 256;
        let bs = gbps(&small, &mut b);
        let bn = gbps(&normal, &mut b);
        assert!(bn > 1.5 * bs, "wg256 {bn} vs wg4 {bs}");
    }

    #[test]
    fn occupancy_shrinks_with_width() {
        let b = GpuBackend::new();
        let mut cfg = copy_cfg(4.0);
        let m1 = b.occupancy_mlp(&cfg);
        cfg.vector_width = VectorWidth::new(16).unwrap();
        let m16 = b.occupancy_mlp(&cfg);
        assert!(m16 < m1 / 2);
    }

    #[test]
    fn transfers_ride_pcie() {
        let mut b = GpuBackend::new();
        let eff = (1u64 << 26) as f64 / b.transfer_ns(1 << 26);
        assert!(eff > 6.0 && eff < 13.0, "pcie x16 effective {eff} GB/s");
    }
}
