//! # targets — device models for the MP-STREAM evaluation targets
//!
//! One backend per device the paper evaluates (§IV):
//!
//! * [`cpu::CpuBackend`] — Intel Xeon E5-2609 v2 (10 MB LLC, 34 GB/s
//!   peak): multicore cache hierarchy with a stream prefetcher; NDRange
//!   kernels fan out over all cores, single-work-item kernels run on one;
//! * [`gpu::GpuBackend`] — Nvidia GTX Titan Black (336 GB/s peak):
//!   warp-level coalescing over a wide GDDR5 device, huge memory-level
//!   parallelism for NDRange, catastrophic single-thread performance;
//! * [`aocl::AoclBackend`] — Altera Stratix V with the AOCL 15.1 flow
//!   (25.6 GB/s peak): single-work-item pipelines with burst-coalescing
//!   LSUs, `num_simd_work_items` / `num_compute_units` replication with
//!   fmax and arbitration costs, and a Stratix-V resource model;
//! * [`sdaccel::SdaccelBackend`] — Xilinx Virtex-7 with SDAccel 2015.1
//!   (10.6 GB/s peak): shared-port pipelines whose burst inference
//!   prefers the *nested* loop form (the paper's Figure 3 surprise).
//!
//! [`registry::standard_platforms`] assembles the four as mpcl platforms;
//! [`registry::TargetId`] names them the way the paper's figures do
//! (`aocl`, `sdaccel`, `cpu`, `gpu`).
//!
//! Every constant that shapes a figure lives in the backend's `*Tuning`
//! struct with datasheet-level defaults; the calibration tests in this
//! crate pin the *shapes* (orderings, crossovers, ratio bands), not the
//! absolute numbers.

pub mod aocl;
pub mod common;
pub mod cpu;
pub mod gpu;
pub mod hmc;
pub mod power;
pub mod registry;
pub mod resources;
pub mod sdaccel;

pub use aocl::{arria10_device, AoclBackend};
pub use cpu::CpuBackend;
pub use gpu::GpuBackend;
pub use hmc::{hmc_device, HmcBackend};
pub use registry::{standard_device, standard_platforms, TargetId};
pub use sdaccel::SdaccelBackend;
