//! Extension target: a hypothetical AOCL-flow FPGA board with a Hybrid
//! Memory Cube instead of DDR3.
//!
//! The paper's outlook (§IV): "the introduction of high-throughput
//! Hybrid-Memory Cube on FPGA boards which have much higher peak
//! bandwidths can change the picture we present in this paper
//! considerably." This target quantifies that: the same AOCL pipeline
//! model (so the same kernels, synthesis rules and resource limits) in
//! front of an HMC — ~60 GB/s peak, many narrow pseudo-channels, tiny
//! closed pages — instead of 25.6 GB/s dual-channel DDR3. The
//! interesting prediction is not just the higher contiguous plateau but
//! the *strided* behaviour: HMC's short rows make column-major access
//! merely bad instead of catastrophic.

use crate::aocl::{AoclBackend, AoclTuning};
use kernelgen::{ExecPlan, KernelConfig};
use memsim::DramConfig;
use mpcl::{BuildArtifact, ClError, DeviceBackend, DeviceInfo, DeviceType, KernelCost, PowerModel};

/// The HMC-equipped FPGA model: an [`AoclBackend`] with HMC memory, a
/// newer-generation clock, and deeper outstanding-burst support (HMC
/// links are packetized and love concurrency).
#[derive(Debug)]
pub struct HmcBackend {
    inner: AoclBackend,
}

impl HmcBackend {
    /// Build with the HMC board tuning.
    pub fn new() -> Self {
        HmcBackend {
            inner: AoclBackend::with_tuning(AoclTuning {
                dram: DramConfig::hmc_fpga(),
                base_fmax_mhz: 320.0,
                mlp_per_cu: 64,
                dram_extra_latency_ns: 140.0, // SerDes adds latency
                ..Default::default()
            }),
        }
    }

    /// The underlying AOCL tuning.
    pub fn tuning(&self) -> &AoclTuning {
        self.inner.tuning()
    }
}

impl Default for HmcBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl DeviceBackend for HmcBackend {
    fn info(&self) -> DeviceInfo {
        DeviceInfo {
            name: "Hypothetical Stratix-class FPGA + HMC, AOCL flow".into(),
            vendor: "Altera Corporation".into(),
            device_type: DeviceType::Accelerator,
            global_mem_bytes: 4 << 30, // HMC stacks are small
            peak_gbps: DramConfig::hmc_fpga().peak_gbps(),
            max_compute_units: 16,
            max_work_group_size: 2048,
        }
    }

    fn build(&mut self, cfg: &KernelConfig) -> Result<BuildArtifact, ClError> {
        self.inner.build(cfg)
    }

    fn kernel_cost(&mut self, artifact: &BuildArtifact, plan: &ExecPlan) -> KernelCost {
        self.inner.kernel_cost(artifact, plan)
    }

    fn transfer_ns(&mut self, bytes: u64) -> f64 {
        self.inner.transfer_ns(bytes)
    }

    fn launch_overhead_ns(&self) -> f64 {
        self.inner.launch_overhead_ns()
    }

    fn power_model(&self) -> Option<PowerModel> {
        // HMC stacks draw more than DDR3 DIMMs but far less than GDDR5.
        Some(PowerModel {
            idle_w: 16.0,
            active_w: 12.0,
            pj_per_byte: 22.0,
        })
    }
}

/// Convenience: the HMC board as an mpcl device.
pub fn hmc_device() -> mpcl::Device {
    mpcl::Device::new(Box::new(HmcBackend::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelgen::{LoopMode, StreamOp, VectorWidth};

    fn gbps(cfg: &KernelConfig, b: &mut HmcBackend) -> f64 {
        let art = b.build(cfg).expect("build");
        let bytes = cfg.array_bytes();
        let plan = ExecPlan::new(cfg.clone(), 4096, 4096 + bytes, 8192 + 2 * bytes);
        let ns = b.kernel_cost(&art, &plan).ns + b.launch_overhead_ns();
        cfg.bytes_moved() as f64 / ns
    }

    fn copy_vec16(mb: f64) -> KernelConfig {
        let mut cfg = KernelConfig::baseline(
            StreamOp::Copy,
            ((mb * 1e6 / 4.0) as u64).next_power_of_two(),
        );
        cfg.loop_mode = LoopMode::SingleWorkItemFlat;
        cfg.vector_width = VectorWidth::new(16).expect("allowed");
        cfg
    }

    #[test]
    fn peak_bandwidth_is_hmc_class() {
        let peak = DramConfig::hmc_fpga().peak_gbps();
        assert!(peak > 55.0 && peak < 70.0, "peak {peak}");
    }

    #[test]
    fn vectorized_copy_beats_the_ddr3_board_substantially() {
        let mut hmc = HmcBackend::new();
        let mut ddr = AoclBackend::new();
        let cfg = copy_vec16(4.0);
        let art = ddr.build(&cfg).expect("build");
        let bytes = cfg.array_bytes();
        let plan = ExecPlan::new(cfg.clone(), 4096, 4096 + bytes, 8192 + 2 * bytes);
        let ddr_bw =
            cfg.bytes_moved() as f64 / (ddr.kernel_cost(&art, &plan).ns + ddr.launch_overhead_ns());
        let hmc_bw = gbps(&cfg, &mut hmc);
        assert!(hmc_bw > 1.5 * ddr_bw, "hmc {hmc_bw} vs ddr3 {ddr_bw}");
    }

    #[test]
    fn strided_access_degrades_far_more_gracefully_than_ddr3() {
        let mut hmc = HmcBackend::new();
        let mut contig = copy_vec16(4.0);
        contig.vector_width = VectorWidth::new(1).expect("allowed");
        let mut strided = contig.clone();
        strided.pattern = kernelgen::AccessPattern::ColMajor { cols: None };
        let c = gbps(&contig, &mut hmc);
        let s = gbps(&strided, &mut hmc);
        // DDR3 AOCL collapses ~10-30x; HMC should stay within ~6x.
        assert!(c / s < 6.0, "contig {c} vs strided {s} (ratio {})", c / s);
        assert!(s > 0.2, "strided must stay usable: {s}");
    }

    #[test]
    fn synthesis_rules_are_inherited_from_the_aocl_flow() {
        let mut hmc = HmcBackend::new();
        let mut over = copy_vec16(4.0);
        over.unroll = 16; // 16 wide x 16 unroll: over capacity
        assert!(matches!(
            hmc.build(&over),
            Err(ClError::BuildProgramFailure(_))
        ));
    }

    #[test]
    fn device_wrapper_reports_hmc_info() {
        let d = hmc_device();
        assert!(d.info().name.contains("HMC"));
        assert!(d.power_model().is_some());
    }
}
