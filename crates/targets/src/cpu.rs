//! CPU target: Intel Xeon E5-2609 v2 (Ivy Bridge EP, 4 cores, 2.5 GHz,
//! 10 MB L3, quad-channel DDR3 — "34 GB/s Peak BW" in the paper).
//!
//! NDRange kernels spread work-items across all cores (modelled as one
//! aggregate hierarchy with pooled issue bandwidth and miss parallelism);
//! single-work-item kernels run on one core — which is why the CPU
//! prefers NDRange in Figure 3. Contiguous traversals are kept near DRAM
//! peak by the stream prefetcher; the column-major pattern defeats both
//! the prefetcher and, past the LLC, all cache reuse — reproducing the
//! strided collapse of Figure 2. Stores are modelled as streaming
//! (non-temporal with write combining), as Intel's OpenCL CPU runtime
//! emits for simple elementwise kernels.

use crate::common::run_plan;
use kernelgen::{ExecPlan, KernelConfig, LoopMode};
use memsim::{
    CacheConfig, DramConfig, Link, LinkConfig, MemHierarchy, MemHierarchyConfig, PrefetchConfig,
    TlbConfig, WritePolicy,
};
use mpcl::{BuildArtifact, ClError, DeviceBackend, DeviceInfo, DeviceType, KernelCost, PowerModel};

/// Everything that shapes the CPU model (datasheet-level defaults).
#[derive(Debug, Clone)]
pub struct CpuTuning {
    /// Physical cores.
    pub cores: u32,
    /// Per-core streaming issue bandwidth, bytes/ns (load+store ports).
    pub issue_bytes_per_ns_per_core: f64,
    /// Per-core outstanding L1 misses (line-fill buffers).
    pub mlp_per_core: usize,
    /// Prefetch run-ahead distance in lines.
    pub prefetch_degree: u32,
    /// L1D / L2 / L3 geometries.
    pub l1: CacheConfig,
    pub l2: CacheConfig,
    pub l3: CacheConfig,
    /// Amortized per-line hit costs at L1/L2/L3 for a single core, ns.
    pub hit_ns_one_core: [f64; 3],
    /// DRAM configuration.
    pub dram: DramConfig,
    /// Uncore + controller latency added per demand miss, ns.
    pub dram_extra_latency_ns: f64,
    /// TLB entries and page size (transparent huge pages).
    pub tlb_entries: usize,
    pub page_bytes: u64,
    pub walk_ns: f64,
    /// OpenCL kernel dispatch overhead on the CPU runtime (thread-pool
    /// wake-up + work-group scheduling) — large, and clearly visible in
    /// the paper's small-array points (~40 µs).
    pub launch_overhead_ns: f64,
    /// "Host-device" link: loopback through shared memory.
    pub link: LinkConfig,
    /// Simulation sample cap (accesses per kernel timing run).
    pub sample_cap: u64,
}

impl Default for CpuTuning {
    fn default() -> Self {
        CpuTuning {
            cores: 4,
            issue_bytes_per_ns_per_core: 16.0,
            mlp_per_core: 10,
            prefetch_degree: 32,
            l1: CacheConfig {
                size_bytes: 32 << 10,
                ways: 8,
                line_bytes: 64,
            },
            l2: CacheConfig {
                size_bytes: 256 << 10,
                ways: 8,
                line_bytes: 64,
            },
            l3: CacheConfig {
                size_bytes: 10 << 20,
                ways: 20,
                line_bytes: 64,
            },
            hit_ns_one_core: [0.0, 1.2, 3.2],
            dram: DramConfig::ddr3_quad_channel(),
            dram_extra_latency_ns: 45.0,
            tlb_entries: 64,
            page_bytes: 2 << 20,
            walk_ns: 80.0,
            launch_overhead_ns: 40_000.0,
            link: LinkConfig::loopback(),
            sample_cap: 1_500_000,
        }
    }
}

/// The CPU device model.
#[derive(Debug)]
pub struct CpuBackend {
    tuning: CpuTuning,
    link: Link,
}

impl CpuBackend {
    /// Build with the paper-calibrated defaults.
    pub fn new() -> Self {
        Self::with_tuning(CpuTuning::default())
    }

    /// Build with explicit tuning (ablations, tests).
    pub fn with_tuning(tuning: CpuTuning) -> Self {
        let link = Link::new(tuning.link);
        CpuBackend { tuning, link }
    }

    /// The tuning in effect.
    pub fn tuning(&self) -> &CpuTuning {
        &self.tuning
    }

    fn hierarchy_for(&self, cfg: &KernelConfig) -> MemHierarchy {
        let t = &self.tuning;
        // NDRange uses every core; a single work-item is one thread.
        let active = if cfg.loop_mode == LoopMode::NdRange {
            t.cores
        } else {
            1
        } as f64;
        MemHierarchy::new(MemHierarchyConfig {
            caches: vec![t.l1, t.l2, t.l3],
            hit_ns: t.hit_ns_one_core.iter().map(|h| h / active).collect(),
            tlb: Some(TlbConfig {
                entries: t.tlb_entries,
                page_bytes: t.page_bytes,
                walk_ns: t.walk_ns / active,
            }),
            prefetch: Some(PrefetchConfig {
                degree: t.prefetch_degree,
            }),
            dram: t.dram.clone(),
            issue_bytes_per_ns: t.issue_bytes_per_ns_per_core * active,
            issue_ns_per_access: 0.0,
            mlp: t.mlp_per_core * active as usize,
            dram_extra_latency_ns: t.dram_extra_latency_ns,
            write_policy: WritePolicy::Streaming,
            wc_flush_bytes: 2048,
        })
    }
}

impl Default for CpuBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl DeviceBackend for CpuBackend {
    fn info(&self) -> DeviceInfo {
        DeviceInfo {
            name: "Intel(R) Xeon(R) CPU E5-2609 v2 @ 2.50GHz".into(),
            vendor: "Intel(R) Corporation".into(),
            device_type: DeviceType::Cpu,
            global_mem_bytes: 32 << 30,
            peak_gbps: self.tuning.dram.peak_gbps(),
            max_compute_units: self.tuning.cores,
            max_work_group_size: 8192,
        }
    }

    fn build(&mut self, _cfg: &KernelConfig) -> Result<BuildArtifact, ClError> {
        // The CPU runtime JIT-compiles instantly and vectorizes
        // internally; work-items execute in traversal order.
        Ok(BuildArtifact {
            build_log: "clBuildProgram: ok (cpu jit)".into(),
            fmax_mhz: None,
            resources: None,
            lane_group: 1,
            synthesis_ns: 12_000.0,
        })
    }

    fn kernel_cost(&mut self, artifact: &BuildArtifact, plan: &ExecPlan) -> KernelCost {
        let key = crate::common::cost_key("cpu", &self.tuning, artifact, plan);
        crate::common::memoized_kernel_cost(key, || {
            let cfg = &plan.cfg;
            let mut h = self.hierarchy_for(cfg);
            let out = run_plan(
                &mut h,
                plan,
                artifact.lane_group,
                None,
                self.tuning.sample_cap,
            );
            // DGEMM-lite can be arithmetic-bound: 4 cores x 2.5 GHz x
            // ~4 multiply-adds per cycle.
            let base_ns = crate::common::dgemm_roofline_ns(cfg, out.ns, 40.0);
            // Channeled variants run the load/store halves as concurrent
            // pipeline stages (the CPU runtime maps the FIFO to a shared
            // queue); fill is paced at the kernel's own element rate.
            let per_elem_ns = base_ns / cfg.n_vectors().max(1) as f64;
            let (ns, stall_ns) =
                crate::common::channel_overlay(cfg, base_ns, per_elem_ns).unwrap_or((base_ns, 0.0));
            KernelCost {
                ns,
                dram_bytes: out.stats.dram_bytes,
                stats: out.stats,
                stall_ns,
            }
        })
    }

    fn transfer_ns(&mut self, bytes: u64) -> f64 {
        self.link.transfer_ns(bytes)
    }

    fn launch_overhead_ns(&self) -> f64 {
        self.tuning.launch_overhead_ns
    }

    fn power_model(&self) -> Option<PowerModel> {
        Some(crate::power::cpu())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelgen::{AccessPattern, StreamOp};

    fn gbps(cfg: &KernelConfig, backend: &mut CpuBackend, include_launch: bool) -> f64 {
        let art = backend.build(cfg).unwrap();
        let bytes = cfg.array_bytes();
        let plan = ExecPlan::new(cfg.clone(), 4096, 4096 + bytes, 8192 + 2 * bytes);
        let mut ns = backend.kernel_cost(&art, &plan).ns;
        if include_launch {
            ns += backend.launch_overhead_ns();
        }
        cfg.bytes_moved() as f64 / ns
    }

    fn copy_cfg(mb: f64) -> KernelConfig {
        let n = (mb * 1e6 / 4.0) as u64;
        KernelConfig::baseline(StreamOp::Copy, n.next_power_of_two())
    }

    #[test]
    fn contiguous_4mb_lands_in_paper_band() {
        // Paper Fig 1a: cpu at 4 MB ≈ 27 GB/s (peak 34).
        let mut b = CpuBackend::new();
        let bw = gbps(&copy_cfg(4.0), &mut b, true);
        assert!(bw > 18.0 && bw < 34.0, "cpu contiguous 4MB: {bw} GB/s");
    }

    #[test]
    fn small_arrays_are_overhead_bound() {
        // Paper: 1 KB arrays measure ~0.05 GB/s on the CPU.
        let mut b = CpuBackend::new();
        let bw = gbps(&copy_cfg(0.001), &mut b, true);
        assert!(bw < 0.2, "cpu 1KB: {bw} GB/s");
    }

    #[test]
    fn bandwidth_grows_with_array_size() {
        let mut b = CpuBackend::new();
        let small = gbps(&copy_cfg(0.01), &mut b, true);
        let mid = gbps(&copy_cfg(0.25), &mut b, true);
        let large = gbps(&copy_cfg(4.0), &mut b, true);
        assert!(small < mid && mid < large, "{small} {mid} {large}");
    }

    #[test]
    fn strided_large_array_collapses() {
        // Paper Fig 2: cpu-strided at 64 MB ≈ 0.8 GB/s vs contig ≈ 25.
        let mut b = CpuBackend::new();
        let mut strided = copy_cfg(64.0);
        strided.pattern = AccessPattern::ColMajor { cols: None };
        let contig = gbps(&copy_cfg(64.0), &mut b, true);
        let s = gbps(&strided, &mut b, true);
        assert!(s < contig / 8.0, "strided {s} vs contig {contig}");
    }

    #[test]
    fn strided_has_cache_resident_bump() {
        // Paper Fig 2: cpu-strided peaks around 1-4 MB (LLC-resident).
        let mut b = CpuBackend::new();
        let mut at = |mb: f64| {
            let mut c = copy_cfg(mb);
            c.pattern = AccessPattern::ColMajor { cols: None };
            gbps(&c, &mut b, true)
        };
        let small = at(0.016);
        let bump = at(1.0);
        let large = at(64.0);
        assert!(bump > small, "bump {bump} vs small {small}");
        assert!(bump > 2.0 * large, "bump {bump} vs large {large}");
    }

    #[test]
    fn ndrange_beats_single_work_item() {
        // Paper Fig 3: the CPU performs best with NDRange.
        let mut b = CpuBackend::new();
        let nd = gbps(&copy_cfg(4.0), &mut b, true);
        let mut flat = copy_cfg(4.0);
        flat.loop_mode = LoopMode::SingleWorkItemFlat;
        let fl = gbps(&flat, &mut b, true);
        assert!(nd > fl, "ndrange {nd} vs flat {fl}");
        assert!(fl > 5.0, "single core still respectable: {fl}");
    }

    #[test]
    fn all_four_kernels_memory_bound() {
        // Paper Fig 4a: all kernels land in the same envelope.
        let mut b = CpuBackend::new();
        let mut bws = Vec::new();
        for op in StreamOp::ALL {
            let mut cfg = copy_cfg(4.0);
            cfg.op = op;
            bws.push(gbps(&cfg, &mut b, true));
        }
        let min = bws.iter().cloned().fold(f64::MAX, f64::min);
        let max = bws.iter().cloned().fold(0.0, f64::max);
        assert!(max / min < 2.0, "kernels within 2x: {bws:?}");
    }

    #[test]
    fn transfer_uses_loopback_link() {
        let mut b = CpuBackend::new();
        let ns = b.transfer_ns(1 << 20);
        assert!(ns < 100_000.0, "loopback should be fast: {ns}");
    }
}
