//! FPGA target #2: Xilinx Virtex-7 690T on an Alpha-Data ADM-PCIE card,
//! compiled with SDAccel 2015.1 — "10 GB/s Peak BW" in the paper.
//!
//! The 2015-era SDAccel flow gives each kernel a single shared AXI
//! memory port by default, so a scalar loop takes two clocks per element
//! (read beat + write beat) — the paper's ~0.76 GB/s plateau. Burst
//! inference is the interesting quirk: the tool infers long AXI bursts
//! for a *simple inner loop over a 2D array*, and pipelines it at II=1
//! with both directions overlapped, but is conservative for the flat 1-D
//! form — which is why the nested loop "surprisingly shows much better
//! performance" in Figure 3 even though the address sequence is
//! identical. The `xcl_pipeline_loop` / `max_memory_ports` attributes
//! recover the same effect explicitly.

use crate::common::run_plan;
use crate::resources::{FpgaCapacity, ResourceModel};
use kernelgen::{ExecPlan, KernelConfig, LoopMode, VendorOpts, XilinxOpts};
use memsim::{
    Coalescer, DramConfig, Link, LinkConfig, MemHierarchy, MemHierarchyConfig, WritePolicy,
};
use mpcl::{BuildArtifact, ClError, DeviceBackend, DeviceInfo, DeviceType, KernelCost, PowerModel};

/// Tuning constants of the SDAccel model.
#[derive(Debug, Clone)]
pub struct SdaccelTuning {
    /// Kernel clock before congestion degradation, MHz.
    pub base_fmax_mhz: f64,
    /// fmax loss per unit of device utilisation.
    pub fmax_util_slope: f64,
    /// Burst buffering for the conservative flat-loop inference,
    /// elements.
    pub flat_burst_elems: u32,
    /// Burst buffering when the tool infers long bursts (nested loop or
    /// explicit pipeline attributes), elements.
    pub inferred_burst_elems: u32,
    /// Maximum AXI burst, bytes.
    pub max_burst_bytes: u32,
    /// Outstanding bursts the AXI masters sustain.
    pub mlp: usize,
    /// Board DRAM (single channel).
    pub dram: DramConfig,
    /// AXI interconnect latency per burst, ns.
    pub dram_extra_latency_ns: f64,
    /// NDRange work-item scheduling II factor.
    pub ndrange_ii_factor: f64,
    /// Kernel launch overhead, ns.
    pub launch_overhead_ns: f64,
    /// PCIe link.
    pub link: LinkConfig,
    /// Resource model and device capacity.
    pub resources: ResourceModel,
    pub capacity: FpgaCapacity,
    /// Simulation sample cap.
    pub sample_cap: u64,
}

impl Default for SdaccelTuning {
    fn default() -> Self {
        SdaccelTuning {
            base_fmax_mhz: 195.0,
            fmax_util_slope: 0.30,
            flat_burst_elems: 16,
            inferred_burst_elems: 64,
            max_burst_bytes: 4096,
            mlp: 4,
            dram: DramConfig::ddr3_fpga_sdaccel(),
            dram_extra_latency_ns: 150.0,
            ndrange_ii_factor: 2.0,
            launch_overhead_ns: 70_000.0,
            link: LinkConfig::pcie_gen3_x8(),
            resources: ResourceModel::default(),
            capacity: FpgaCapacity::virtex7_690t(),
            sample_cap: 1_000_000,
        }
    }
}

/// The SDAccel FPGA device model.
#[derive(Debug)]
pub struct SdaccelBackend {
    tuning: SdaccelTuning,
    link: Link,
}

impl SdaccelBackend {
    /// Build with the paper-calibrated defaults.
    pub fn new() -> Self {
        Self::with_tuning(SdaccelTuning::default())
    }

    /// Build with explicit tuning.
    pub fn with_tuning(tuning: SdaccelTuning) -> Self {
        let link = Link::new(tuning.link);
        SdaccelBackend { tuning, link }
    }

    /// The tuning in effect.
    pub fn tuning(&self) -> &SdaccelTuning {
        &self.tuning
    }

    fn xilinx_opts(cfg: &KernelConfig) -> XilinxOpts {
        match cfg.vendor {
            VendorOpts::Xilinx(x) => x,
            _ => XilinxOpts::default(),
        }
    }

    /// Does this configuration get the II=1 dual-direction pipeline?
    /// Nested loops trigger the tool's burst inference; the explicit
    /// attributes force it for other shapes.
    fn fully_pipelined(cfg: &KernelConfig) -> bool {
        let x = Self::xilinx_opts(cfg);
        cfg.loop_mode == LoopMode::SingleWorkItemNested || x.pipeline_loop || x.max_memory_ports
    }

    /// The actual cost model; `DeviceBackend::kernel_cost` wraps it in
    /// the per-(config, target) memo.
    fn kernel_cost_uncached(&self, artifact: &BuildArtifact, plan: &ExecPlan) -> KernelCost {
        let t = &self.tuning;
        let cfg = &plan.cfg;
        let fmax = artifact
            .fmax_mhz
            .expect("sdaccel kernels always report fmax");
        let cycle_ns = 1000.0 / fmax;

        // Initiation interval per access: one beat per access through the
        // shared port, unless the pipeline got dual-direction ports.
        let base = match cfg.loop_mode {
            LoopMode::NdRange => cycle_ns * t.ndrange_ii_factor,
            _ if Self::fully_pipelined(cfg) => cycle_ns / 2.0,
            _ => cycle_ns,
        };
        let issue = base / cfg.unroll.max(1) as f64;

        // Explicit port-width override caps the effective burst length.
        let burst_cap = match Self::xilinx_opts(cfg).memory_port_width_bits {
            Some(bits) => (bits / 8).max(4) * 16,
            None => t.max_burst_bytes,
        }
        .min(t.max_burst_bytes);

        let mut h = MemHierarchy::new(MemHierarchyConfig {
            caches: vec![],
            hit_ns: vec![],
            tlb: None,
            prefetch: None,
            dram: t.dram.clone(),
            issue_bytes_per_ns: 1e9,
            issue_ns_per_access: issue,
            mlp: t.mlp,
            dram_extra_latency_ns: t.dram_extra_latency_ns,
            write_policy: WritePolicy::WriteAllocate, // no caches: unused
            wc_flush_bytes: 512,
        });
        let co = Coalescer::extent(burst_cap, artifact.lane_group as usize);
        let out = run_plan(&mut h, plan, artifact.lane_group, Some(co), t.sample_cap);

        // The hierarchy paces bursts; the port's initiation interval is
        // per kernel-side access (one AXI beat per access).
        let pipe_ns = kernelgen::total_accesses(cfg) as f64 * issue;
        let mem_ns = out.ns.max(pipe_ns);

        // DGEMM-lite arithmetic roofline: one multiply-add per unrolled
        // datapath copy per clock.
        let macs_per_ns = cfg.unroll.max(1) as f64 / cycle_ns;
        let base_ns = crate::common::dgemm_roofline_ns(cfg, mem_ns, 2.0 * macs_per_ns);

        // OpenCL 2.0 pipes never fuse: the two kernels always run as
        // separate compute units, and the host pays a second dispatch.
        let (mut ns, stall_ns) =
            crate::common::channel_overlay(cfg, base_ns, cycle_ns).unwrap_or((base_ns, 0.0));
        if cfg.channel.is_some() {
            ns += t.launch_overhead_ns;
        }
        KernelCost {
            ns,
            dram_bytes: out.stats.dram_bytes,
            stats: out.stats,
            stall_ns,
        }
    }
}

impl Default for SdaccelBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl DeviceBackend for SdaccelBackend {
    fn info(&self) -> DeviceInfo {
        DeviceInfo {
            name: "Alpha-Data ADM-PCIE (Virtex-7 690T), SDAccel 2015.1".into(),
            vendor: "Xilinx, Inc.".into(),
            device_type: DeviceType::Accelerator,
            global_mem_bytes: 16 << 30,
            peak_gbps: self.tuning.dram.peak_gbps(),
            max_compute_units: 8,
            max_work_group_size: 1024,
        }
    }

    fn build(&mut self, cfg: &KernelConfig) -> Result<BuildArtifact, ClError> {
        let t = &self.tuning;
        // OpenCL 2.0 pipes require a power-of-two depth; SDAccel has no
        // AOCL-style depth-0 fusion, so 0 is rejected too.
        if let Some(ch) = cfg.channel {
            if !ch.depth.is_power_of_two() {
                return Err(ClError::BuildProgramFailure(format!(
                    "xocc: xcl_reqd_pipe_depth must be a power of two, got {}",
                    ch.depth
                )));
            }
        }
        let usage = t.resources.estimate(cfg);
        let util = t.resources.utilisation(cfg, t.capacity);
        let report = t.resources.report(cfg, t.capacity);
        if util > 1.0 {
            return Err(ClError::BuildProgramFailure(format!(
                "xocc: design does not fit Virtex-7 690T (utilisation {:.0}%)\n{report}",
                util * 100.0
            )));
        }
        let fmax = t.base_fmax_mhz * (1.0 - t.fmax_util_slope * util);
        let lane_group = if Self::fully_pipelined(cfg) {
            t.inferred_burst_elems
        } else {
            t.flat_burst_elems
        };
        Ok(BuildArtifact {
            build_log: format!("xocc: build ok, fmax {fmax:.0} MHz\n{report}"),
            fmax_mhz: Some(fmax),
            resources: Some(usage),
            lane_group,
            // Full place-and-route: hours, growing with congestion.
            synthesis_ns: (1.0 + util) * 3.6e12,
        })
    }

    fn kernel_cost(&mut self, artifact: &BuildArtifact, plan: &ExecPlan) -> KernelCost {
        let key = crate::common::cost_key("sdaccel", &self.tuning, artifact, plan);
        crate::common::memoized_kernel_cost(key, || self.kernel_cost_uncached(artifact, plan))
    }

    fn transfer_ns(&mut self, bytes: u64) -> f64 {
        self.link.transfer_ns(bytes)
    }

    fn launch_overhead_ns(&self) -> f64 {
        self.tuning.launch_overhead_ns
    }

    fn power_model(&self) -> Option<PowerModel> {
        Some(crate::power::fpga_sdaccel())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelgen::{AccessPattern, StreamOp, VectorWidth};

    fn gbps(cfg: &KernelConfig, backend: &mut SdaccelBackend) -> f64 {
        let art = backend.build(cfg).unwrap();
        let bytes = cfg.array_bytes();
        let plan = ExecPlan::new(cfg.clone(), 4096, 4096 + bytes, 8192 + 2 * bytes);
        let ns = backend.kernel_cost(&art, &plan).ns + backend.launch_overhead_ns();
        cfg.bytes_moved() as f64 / ns
    }

    fn copy_cfg(mb: f64) -> KernelConfig {
        let n = (mb * 1e6 / 4.0) as u64;
        let mut cfg = KernelConfig::baseline(StreamOp::Copy, n.next_power_of_two());
        cfg.loop_mode = LoopMode::SingleWorkItemFlat;
        cfg
    }

    #[test]
    fn scalar_flat_near_paper_value() {
        // Paper Fig 1a: sdaccel ≈ 0.74-0.76 GB/s at 4-64 MB.
        let mut b = SdaccelBackend::new();
        let bw = gbps(&copy_cfg(16.0), &mut b);
        assert!(bw > 0.4 && bw < 1.2, "sdaccel scalar: {bw} GB/s");
    }

    #[test]
    fn vectorization_scales_toward_port_limit() {
        // Paper Fig 1b: 0.74 -> 1.41 -> 2.47 -> 4.14 -> 6.27.
        let mut b = SdaccelBackend::new();
        let mut last = 0.0;
        for w in [1u32, 2, 4, 8, 16] {
            let mut cfg = copy_cfg(4.0);
            cfg.vector_width = VectorWidth::new(w).unwrap();
            let bw = gbps(&cfg, &mut b);
            assert!(bw > last, "increasing with width: {bw} after {last}");
            last = bw;
        }
        assert!(last > 3.0 && last < 10.6, "w16: {last}");
    }

    #[test]
    fn nested_loop_beats_flat_loop() {
        // Paper Fig 3: the SDAccel surprise.
        let mut b = SdaccelBackend::new();
        let flat = gbps(&copy_cfg(4.0), &mut b);
        let mut nested = copy_cfg(4.0);
        nested.loop_mode = LoopMode::SingleWorkItemNested;
        let n = gbps(&nested, &mut b);
        assert!(n > 1.5 * flat, "nested {n} vs flat {flat}");
    }

    #[test]
    fn ndrange_is_worst() {
        let mut b = SdaccelBackend::new();
        let flat = gbps(&copy_cfg(4.0), &mut b);
        let mut nd = copy_cfg(4.0);
        nd.loop_mode = LoopMode::NdRange;
        let ndv = gbps(&nd, &mut b);
        assert!(ndv < flat, "ndrange {ndv} vs flat {flat}");
    }

    #[test]
    fn pipeline_attribute_recovers_nested_performance() {
        let mut b = SdaccelBackend::new();
        let mut piped = copy_cfg(4.0);
        piped.vendor = VendorOpts::Xilinx(XilinxOpts {
            pipeline_loop: true,
            ..Default::default()
        });
        let p = gbps(&piped, &mut b);
        let mut nested = copy_cfg(4.0);
        nested.loop_mode = LoopMode::SingleWorkItemNested;
        let n = gbps(&nested, &mut b);
        assert!((p / n - 1.0).abs() < 0.25, "pipeline_loop {p} ~ nested {n}");
    }

    #[test]
    fn strided_is_catastrophic() {
        // Paper Fig 2: sdaccel-strided ≈ 0.01 GB/s flat across sizes.
        let mut b = SdaccelBackend::new();
        let mut strided = copy_cfg(4.0);
        strided.pattern = AccessPattern::ColMajor { cols: None };
        let s = gbps(&strided, &mut b);
        assert!(s < 0.2, "sdaccel strided: {s}");
    }

    #[test]
    fn small_arrays_overhead_bound() {
        let mut b = SdaccelBackend::new();
        let bw = gbps(&copy_cfg(0.001), &mut b);
        assert!(bw < 0.1, "sdaccel 1KB: {bw}");
    }

    #[test]
    fn pipe_depth_must_be_a_power_of_two() {
        let mut b = SdaccelBackend::new();
        for bad in [0u32, 3, 6, 100] {
            let mut cfg = copy_cfg(4.0);
            cfg.channel = Some(kernelgen::ChannelSpec { depth: bad });
            match b.build(&cfg) {
                Err(mpcl::ClError::BuildProgramFailure(log)) => {
                    assert!(log.contains("power of two"), "{log}");
                }
                other => panic!("depth {bad} must fail synthesis, got {other:?}"),
            }
        }
        let mut ok = copy_cfg(4.0);
        ok.channel = Some(kernelgen::ChannelSpec { depth: 16 });
        b.build(&ok).expect("power-of-two depth synthesizes");
    }

    #[test]
    fn pipes_cost_a_second_dispatch() {
        let mut b = SdaccelBackend::new();
        let plain = copy_cfg(4.0);
        let art = b.build(&plain).unwrap();
        let bytes = plain.array_bytes();
        let base = b
            .kernel_cost(
                &art,
                &ExecPlan::new(plain.clone(), 4096, 4096 + bytes, 8192 + 2 * bytes),
            )
            .ns;
        let mut piped = plain;
        piped.channel = Some(kernelgen::ChannelSpec { depth: 16 });
        let part = b.build(&piped).unwrap();
        let cost = b.kernel_cost(
            &part,
            &ExecPlan::new(piped, 4096, 4096 + bytes, 8192 + 2 * bytes),
        );
        // Stage overlap saves up to half the memory time, but the extra
        // kernel dispatch is charged unconditionally — the AOCL/SDAccel
        // synthesis difference the DSE should discover.
        assert!(cost.ns > base / 2.0, "piped {} vs plain {}", cost.ns, base);
        assert!(
            cost.ns >= base / 2.0 + b.tuning().launch_overhead_ns,
            "second dispatch charged: {} vs {}",
            cost.ns,
            base
        );
    }

    #[test]
    fn narrow_port_width_override_hurts() {
        let mut b = SdaccelBackend::new();
        let mut narrow = copy_cfg(4.0);
        narrow.loop_mode = LoopMode::SingleWorkItemNested;
        narrow.vendor = VendorOpts::Xilinx(XilinxOpts {
            memory_port_width_bits: Some(32),
            ..Default::default()
        });
        let mut wide = copy_cfg(4.0);
        wide.loop_mode = LoopMode::SingleWorkItemNested;
        let nw = gbps(&narrow, &mut b);
        let wd = gbps(&wide, &mut b);
        assert!(nw <= wd, "narrow port {nw} vs default {wd}");
    }
}
