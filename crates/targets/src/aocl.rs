//! FPGA target #1: Altera Stratix V GS D5 on a Nallatech PCIe-385N,
//! compiled with the Altera SDK for OpenCL (AOCL) 15.1 — "25 GB/s Peak
//! BW" in the paper.
//!
//! AOCL synthesizes single-work-item kernels into a pipeline with one
//! load/store unit per pointer argument. Scalar kernels issue one element
//! per clock, so bandwidth is pipeline-bound far below DRAM peak; OpenCL
//! vector types widen the LSU data path ("translates to a memory
//! controller on the FPGA that coalesces memory accesses"), approaching
//! peak at width 16 (Fig. 1b). LSUs buffer consecutive accesses into DRAM
//! bursts; the column-major pattern defeats burst formation and row
//! locality, collapsing bandwidth (Fig. 2). The vendor replication
//! attributes (`num_simd_work_items`, `num_compute_units`) add datapath
//! copies but cost resources, fmax and memory-controller arbitration —
//! which is why they underperform native vectorization (Fig. 4b).

use crate::common::run_plan;
use crate::resources::{FpgaCapacity, ResourceModel};
use kernelgen::{ExecPlan, KernelConfig, LoopMode, VendorOpts};
use memsim::{
    Coalescer, DramConfig, Link, LinkConfig, MemHierarchy, MemHierarchyConfig, WritePolicy,
};
use mpcl::{BuildArtifact, ClError, DeviceBackend, DeviceInfo, DeviceType, KernelCost, PowerModel};

/// Tuning constants of the AOCL model.
#[derive(Debug, Clone)]
pub struct AoclTuning {
    /// Kernel clock before congestion degradation, MHz.
    pub base_fmax_mhz: f64,
    /// fmax loss per unit of device utilisation (routing congestion).
    pub fmax_util_slope: f64,
    /// Elements each LSU buffers before issuing a DRAM burst.
    pub lsu_burst_elems: u32,
    /// Maximum burst length, bytes.
    pub lsu_max_burst_bytes: u32,
    /// Outstanding bursts per compute unit's LSUs.
    pub mlp_per_cu: usize,
    /// Board DRAM.
    pub dram: DramConfig,
    /// Memory-interconnect latency per burst, ns.
    pub dram_extra_latency_ns: f64,
    /// NDRange work-item scheduling inflates the initiation interval by
    /// this factor relative to a single-work-item loop.
    pub ndrange_ii_factor: f64,
    /// Per-extra-compute-unit arbitration slowdown (fractional).
    pub cu_contention: f64,
    /// Kernel launch overhead (OpenCL runtime + board driver), ns.
    pub launch_overhead_ns: f64,
    /// PCIe link.
    pub link: LinkConfig,
    /// Resource model and device capacity.
    pub resources: ResourceModel,
    pub capacity: FpgaCapacity,
    /// Simulation sample cap.
    pub sample_cap: u64,
}

impl Default for AoclTuning {
    fn default() -> Self {
        AoclTuning {
            base_fmax_mhz: 290.0,
            fmax_util_slope: 0.25,
            lsu_burst_elems: 64,
            lsu_max_burst_bytes: 1024,
            mlp_per_cu: 16,
            dram: DramConfig::ddr3_fpga_aocl(),
            dram_extra_latency_ns: 100.0,
            ndrange_ii_factor: 2.5,
            cu_contention: 0.10,
            launch_overhead_ns: 50_000.0,
            link: LinkConfig::pcie_gen3_x8(),
            resources: ResourceModel::default(),
            capacity: FpgaCapacity::stratix_v_gsd5(),
            sample_cap: 1_000_000,
        }
    }
}

impl AoclTuning {
    /// The "newer FPGA board" outlook (paper §V: "we plan to update our
    /// results with newer FPGA boards and OpenCL compiler versions"): an
    /// Arria 10 with DDR4-2133 and the 17.x-era AOCL flow — higher fmax,
    /// a hardened floating-point fabric, deeper LSU queues.
    pub fn arria10() -> Self {
        AoclTuning {
            base_fmax_mhz: 420.0,
            fmax_util_slope: 0.20,
            mlp_per_cu: 32,
            dram: memsim::DramConfig::ddr4_fpga_arria10(),
            dram_extra_latency_ns: 90.0,
            launch_overhead_ns: 30_000.0,
            capacity: crate::resources::FpgaCapacity::arria10_gx1150(),
            ..Default::default()
        }
    }
}

/// An Arria-10 generation AOCL device (the paper's "newer boards").
pub fn arria10_device() -> mpcl::Device {
    mpcl::Device::new(Box::new(AoclBackendNamed {
        inner: AoclBackend::with_tuning(AoclTuning::arria10()),
        name: "Intel Arria 10 GX1150 (DDR4), AOCL 17.1",
    }))
}

/// An [`AoclBackend`] with an overridden device name (board variants).
#[derive(Debug)]
struct AoclBackendNamed {
    inner: AoclBackend,
    name: &'static str,
}

impl DeviceBackend for AoclBackendNamed {
    fn info(&self) -> DeviceInfo {
        DeviceInfo {
            name: self.name.into(),
            ..self.inner.info()
        }
    }
    fn build(&mut self, cfg: &KernelConfig) -> Result<BuildArtifact, ClError> {
        self.inner.build(cfg)
    }
    fn kernel_cost(&mut self, artifact: &BuildArtifact, plan: &ExecPlan) -> KernelCost {
        self.inner.kernel_cost(artifact, plan)
    }
    fn transfer_ns(&mut self, bytes: u64) -> f64 {
        self.inner.transfer_ns(bytes)
    }
    fn launch_overhead_ns(&self) -> f64 {
        self.inner.launch_overhead_ns()
    }
    fn power_model(&self) -> Option<PowerModel> {
        // Arria 10 boards draw ~35 W under load.
        Some(PowerModel {
            idle_w: 15.0,
            active_w: 14.0,
            pj_per_byte: 40.0,
        })
    }
}

/// The AOCL FPGA device model.
#[derive(Debug)]
pub struct AoclBackend {
    tuning: AoclTuning,
    link: Link,
}

impl AoclBackend {
    /// Build with the paper-calibrated defaults.
    pub fn new() -> Self {
        Self::with_tuning(AoclTuning::default())
    }

    /// Build with explicit tuning.
    pub fn with_tuning(tuning: AoclTuning) -> Self {
        let link = Link::new(tuning.link);
        AoclBackend { tuning, link }
    }

    /// The tuning in effect.
    pub fn tuning(&self) -> &AoclTuning {
        &self.tuning
    }

    fn replication(cfg: &KernelConfig) -> (u32, u32) {
        match cfg.vendor {
            VendorOpts::Aocl(a) => (a.num_simd_work_items.max(1), a.num_compute_units.max(1)),
            _ => (1, 1),
        }
    }

    /// The actual cost model; `DeviceBackend::kernel_cost` wraps it in
    /// the per-(config, target) memo.
    fn kernel_cost_uncached(&self, artifact: &BuildArtifact, plan: &ExecPlan) -> KernelCost {
        let t = &self.tuning;
        let cfg = &plan.cfg;
        let fmax = artifact.fmax_mhz.expect("aocl kernels always report fmax");
        let cycle_ns = 1000.0 / fmax;
        let (simd, cus) = Self::replication(cfg);

        // Initiation interval per access: a single-work-item pipeline
        // issues one read and one write per clock (two LSUs); NDRange
        // work-item scheduling is slower; unroll/SIMD/CU replicate the
        // datapath.
        let base = match cfg.loop_mode {
            LoopMode::SingleWorkItemFlat | LoopMode::SingleWorkItemNested => cycle_ns / 2.0,
            LoopMode::NdRange => cycle_ns * t.ndrange_ii_factor / 2.0 / simd as f64,
        };
        let issue = base / (cfg.unroll.max(1) as f64) / cus as f64;

        let mut h = MemHierarchy::new(MemHierarchyConfig {
            caches: vec![],
            hit_ns: vec![],
            tlb: None,
            prefetch: None,
            dram: t.dram.clone(),
            issue_bytes_per_ns: 1e9, // pipeline is access-rate limited
            issue_ns_per_access: issue,
            mlp: t.mlp_per_cu * cus as usize,
            dram_extra_latency_ns: t.dram_extra_latency_ns,
            write_policy: WritePolicy::WriteAllocate, // no caches: unused
            wc_flush_bytes: 512,
        });
        let co = Coalescer::extent(t.lsu_max_burst_bytes, t.lsu_burst_elems as usize);
        let out = run_plan(&mut h, plan, artifact.lane_group, Some(co), t.sample_cap);

        // The hierarchy paces *bursts*; the pipeline's initiation
        // interval is per kernel-side access — a scalar pipeline cannot
        // beat one element per clock no matter how well its LSU bursts.
        let pipe_ns = kernelgen::total_accesses(cfg) as f64 * issue;

        // Multiple compute units contend at the shared memory controller.
        let ns = out.ns.max(pipe_ns) * (1.0 + t.cu_contention * (cus as f64 - 1.0));

        // DGEMM-lite arithmetic roofline: one multiply-add per replicated
        // datapath per clock (unroll and SIMD/CU replication widen it).
        let macs_per_ns = (cfg.unroll.max(1) * simd * cus) as f64 / cycle_ns;
        let ns = crate::common::dgemm_roofline_ns(cfg, ns, 2.0 * macs_per_ns);

        // AOCL channels: a depth-0 channel lets the compiler fuse the
        // producer and consumer into one pipeline — cost identical to
        // the single-stage kernel. Deeper FIFOs run the stages
        // concurrently, paced by the slower side plus the fill latency
        // (one element per clock into the FIFO).
        let (ns, stall_ns) = match cfg.channel {
            Some(ch) if ch.depth > 0 => {
                crate::common::channel_overlay(cfg, ns, cycle_ns).expect("channel present")
            }
            _ => (ns, 0.0),
        };
        KernelCost {
            ns,
            dram_bytes: out.stats.dram_bytes,
            stats: out.stats,
            stall_ns,
        }
    }
}

impl Default for AoclBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl DeviceBackend for AoclBackend {
    fn info(&self) -> DeviceInfo {
        DeviceInfo {
            name: "Nallatech PCIe-385N (Stratix V GS D5), AOCL 15.1".into(),
            vendor: "Altera Corporation".into(),
            device_type: DeviceType::Accelerator,
            global_mem_bytes: 8 << 30,
            peak_gbps: self.tuning.dram.peak_gbps(),
            max_compute_units: 16,
            max_work_group_size: 2048,
        }
    }

    fn build(&mut self, cfg: &KernelConfig) -> Result<BuildArtifact, ClError> {
        let t = &self.tuning;
        let usage = t.resources.estimate(cfg);
        let util = t.resources.utilisation(cfg, t.capacity);
        let report = t.resources.report(cfg, t.capacity);
        if util > 1.0 {
            return Err(ClError::BuildProgramFailure(format!(
                "aoc: design does not fit Stratix V GS D5 (utilisation {:.0}%)\n{report}",
                util * 100.0
            )));
        }
        let fmax = t.base_fmax_mhz * (1.0 - t.fmax_util_slope * util);
        Ok(BuildArtifact {
            build_log: format!("aoc: build ok, fmax {fmax:.0} MHz\n{report}"),
            fmax_mhz: Some(fmax),
            resources: Some(usage),
            lane_group: t.lsu_burst_elems,
            // Full place-and-route: hours, growing with congestion.
            synthesis_ns: (1.0 + util) * 3.6e12,
        })
    }

    fn kernel_cost(&mut self, artifact: &BuildArtifact, plan: &ExecPlan) -> KernelCost {
        let key = crate::common::cost_key("aocl", &self.tuning, artifact, plan);
        crate::common::memoized_kernel_cost(key, || self.kernel_cost_uncached(artifact, plan))
    }

    fn transfer_ns(&mut self, bytes: u64) -> f64 {
        self.link.transfer_ns(bytes)
    }

    fn launch_overhead_ns(&self) -> f64 {
        self.tuning.launch_overhead_ns
    }

    fn power_model(&self) -> Option<PowerModel> {
        Some(crate::power::fpga_aocl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelgen::{AccessPattern, AoclOpts, StreamOp, VectorWidth};

    fn gbps(cfg: &KernelConfig, backend: &mut AoclBackend) -> f64 {
        let art = backend.build(cfg).unwrap();
        let bytes = cfg.array_bytes();
        let plan = ExecPlan::new(cfg.clone(), 4096, 4096 + bytes, 8192 + 2 * bytes);
        let ns = backend.kernel_cost(&art, &plan).ns + backend.launch_overhead_ns();
        cfg.bytes_moved() as f64 / ns
    }

    fn copy_cfg(mb: f64) -> KernelConfig {
        let n = (mb * 1e6 / 4.0) as u64;
        let mut cfg = KernelConfig::baseline(StreamOp::Copy, n.next_power_of_two());
        cfg.loop_mode = LoopMode::SingleWorkItemFlat; // optimal for FPGAs
        cfg
    }

    fn with_vec(mut cfg: KernelConfig, w: u32) -> KernelConfig {
        cfg.vector_width = VectorWidth::new(w).unwrap();
        cfg
    }

    #[test]
    fn scalar_pipeline_bound_near_paper_value() {
        // Paper Fig 1a: aocl at 4-16 MB ≈ 2.4-2.5 GB/s.
        let mut b = AoclBackend::new();
        let bw = gbps(&copy_cfg(4.0), &mut b);
        assert!(bw > 1.5 && bw < 3.5, "aocl scalar 4MB: {bw} GB/s");
    }

    #[test]
    fn vectorization_approaches_peak() {
        // Paper Fig 1b: 2.53 -> 4.61 -> 8.97 -> 14.85 -> 15.26 GB/s.
        let mut b = AoclBackend::new();
        let widths: Vec<f64> = [1u32, 2, 4, 8, 16]
            .iter()
            .map(|&w| gbps(&with_vec(copy_cfg(4.0), w), &mut b))
            .collect();
        for pair in widths.windows(2) {
            assert!(pair[1] > pair[0] * 0.95, "non-decreasing: {widths:?}");
        }
        assert!(
            widths[4] > 10.0 && widths[4] < 25.6,
            "w16 near peak: {widths:?}"
        );
        assert!(
            widths[4] / widths[0] > 4.0,
            "big vectorization win: {widths:?}"
        );
    }

    #[test]
    fn small_arrays_overhead_bound() {
        // Paper: 1 KB ≈ 0.04 GB/s.
        let mut b = AoclBackend::new();
        let bw = gbps(&copy_cfg(0.001), &mut b);
        assert!(bw < 0.2, "aocl 1KB: {bw}");
    }

    #[test]
    fn strided_collapses() {
        // Paper Fig 2: aocl-strided ≤ 1.7 everywhere, < 0.5 at 4 MB+.
        let mut b = AoclBackend::new();
        let mut strided = copy_cfg(16.0);
        strided.pattern = AccessPattern::ColMajor { cols: None };
        let s = gbps(&strided, &mut b);
        let c = gbps(&copy_cfg(16.0), &mut b);
        assert!(s < c / 3.0, "strided {s} vs contig {c}");
    }

    #[test]
    fn single_work_item_beats_ndrange() {
        // Paper Fig 3: FPGAs prefer single-work-item kernels.
        let mut b = AoclBackend::new();
        let flat = gbps(&copy_cfg(4.0), &mut b);
        let mut nd = copy_cfg(4.0);
        nd.loop_mode = LoopMode::NdRange;
        let ndv = gbps(&nd, &mut b);
        assert!(flat > ndv, "flat {flat} vs ndrange {ndv}");
    }

    #[test]
    fn unroll_speeds_up_pipeline() {
        let mut b = AoclBackend::new();
        let base = gbps(&copy_cfg(4.0), &mut b);
        let mut unrolled = copy_cfg(4.0);
        unrolled.unroll = 8;
        let u = gbps(&unrolled, &mut b);
        assert!(u > 2.0 * base, "unroll 8: {u} vs {base}");
    }

    #[test]
    fn compute_units_rise_then_fall() {
        // Paper Fig 4b: replication helps then hurts.
        let mut b = AoclBackend::new();
        let at = |k: u32, b: &mut AoclBackend| {
            let mut cfg = copy_cfg(4.0);
            cfg.vendor = VendorOpts::Aocl(AoclOpts {
                num_simd_work_items: 1,
                num_compute_units: k,
            });
            gbps(&cfg, b)
        };
        let c1 = at(1, &mut b);
        let c4 = at(4, &mut b);
        let c16 = at(16, &mut b);
        assert!(c4 > c1, "cu4 {c4} vs cu1 {c1}");
        assert!(c16 < c4, "cu16 declines: {c16} vs {c4}");
    }

    #[test]
    fn native_vectorization_beats_compute_units() {
        // Paper: "native vectorization optimization leads to more
        // reliable improvement" than vendor replication.
        let mut b = AoclBackend::new();
        let vec8 = gbps(&with_vec(copy_cfg(4.0), 8), &mut b);
        let mut cu8 = copy_cfg(4.0);
        cu8.vendor = VendorOpts::Aocl(AoclOpts {
            num_simd_work_items: 1,
            num_compute_units: 8,
        });
        let cu = gbps(&cu8, &mut b);
        assert!(vec8 > cu, "vec8 {vec8} vs cu8 {cu}");
    }

    #[test]
    fn oversized_replication_fails_synthesis() {
        let mut b = AoclBackend::new();
        let mut cfg = copy_cfg(4.0);
        cfg.loop_mode = LoopMode::NdRange;
        cfg.reqd_work_group_size = true;
        cfg.vector_width = VectorWidth::new(16).unwrap();
        cfg.vendor = VendorOpts::Aocl(AoclOpts {
            num_simd_work_items: 16,
            num_compute_units: 16,
        });
        match b.build(&cfg) {
            Err(ClError::BuildProgramFailure(log)) => {
                assert!(log.contains("does not fit"), "{log}");
            }
            other => panic!("expected synthesis failure, got {other:?}"),
        }
    }

    #[test]
    fn depth_zero_channel_fuses_to_single_stage_cost() {
        let mut b = AoclBackend::new();
        let plain = copy_cfg(4.0);
        let art = b.build(&plain).unwrap();
        let bytes = plain.array_bytes();
        let plan =
            |cfg: &KernelConfig| ExecPlan::new(cfg.clone(), 4096, 4096 + bytes, 8192 + 2 * bytes);
        let base = b.kernel_cost(&art, &plan(&plain));

        let mut fused = plain.clone();
        fused.channel = Some(kernelgen::ChannelSpec { depth: 0 });
        let fart = b.build(&fused).unwrap();
        let fcost = b.kernel_cost(&fart, &plan(&fused));
        assert_eq!(fcost.ns.to_bits(), base.ns.to_bits(), "depth 0 fuses");
        assert_eq!(fcost.stall_ns, 0.0);

        let mut deep = plain.clone();
        deep.channel = Some(kernelgen::ChannelSpec { depth: 64 });
        let dart = b.build(&deep).unwrap();
        let dcost = b.kernel_cost(&dart, &plan(&deep));
        // Two concurrent stages each do half the memory work, so a
        // balanced COPY speeds up (plus a tiny fill term) and stalls
        // stay at zero; an imbalanced TRIAD reports the idle side.
        assert!(
            dcost.ns < base.ns,
            "split {} vs fused {}",
            dcost.ns,
            base.ns
        );
        assert_eq!(dcost.stall_ns, 0.0, "copy split is balanced");

        let mut triad = plain.clone();
        triad.op = StreamOp::Triad;
        triad.channel = Some(kernelgen::ChannelSpec { depth: 64 });
        let tart = b.build(&triad).unwrap();
        let tcost = b.kernel_cost(&tart, &plan(&triad));
        assert!(tcost.stall_ns > 0.0, "triad producer blocks on the FIFO");
        assert!(tcost.stall_ns < tcost.ns);
    }

    #[test]
    fn hpcc_family_times_and_dgemm_hits_the_compute_roofline() {
        use kernelgen::{DataType, Op};
        let mut b = AoclBackend::new();
        for op in Op::HPCC {
            let mut cfg = KernelConfig::baseline(op, 1 << 14);
            cfg.dtype = DataType::I32;
            cfg.loop_mode = LoopMode::SingleWorkItemFlat;
            kernelgen::validate(&cfg).unwrap();
            let art = b.build(&cfg).unwrap();
            let bytes = cfg.array_bytes();
            let plan = ExecPlan::new(cfg.clone(), 4096, 4096 + bytes, 8192 + 2 * bytes);
            let cost = b.kernel_cost(&art, &plan);
            assert!(cost.ns > 0.0, "{op:?} must cost time");
            if op == Op::DgemmLite {
                // 2^14 outputs x 2K (K=128) MACs at ~0.6 GMAC/s clock
                // dwarfs the streaming time of the same footprint.
                let mut copy = cfg.clone();
                copy.op = Op::Copy;
                let cart = b.build(&copy).unwrap();
                let cplan = ExecPlan::new(copy, 4096, 4096 + bytes, 8192 + 2 * bytes);
                let ccost = b.kernel_cost(&cart, &cplan);
                assert!(
                    cost.ns > 3.0 * ccost.ns,
                    "dgemm {} vs copy {}",
                    cost.ns,
                    ccost.ns
                );
            }
        }
    }

    #[test]
    fn fmax_degrades_with_utilisation() {
        let mut b = AoclBackend::new();
        let small = b.build(&copy_cfg(4.0)).unwrap().fmax_mhz.unwrap();
        let mut big = copy_cfg(4.0);
        big.vector_width = VectorWidth::new(16).unwrap();
        big.unroll = 4;
        let large = b.build(&big).unwrap().fmax_mhz.unwrap();
        assert!(large < small, "fmax {large} vs {small}");
    }
}
