//! Helpers shared by all device backends.

use kernelgen::access::memaccess;
use kernelgen::{access_stream, total_accesses, ExecPlan};
use memsim::{Access, AccessKind, Coalescer, MemHierarchy, StreamOutcome};

/// Convert a kernel-side access record into the simulator's request type
/// (structurally identical; kept separate to avoid a dependency cycle).
pub fn to_mem(a: memaccess::Access) -> Access {
    Access {
        addr: a.addr,
        bytes: a.bytes,
        kind: match a.kind {
            memaccess::AccessKind::Read => AccessKind::Read,
            memaccess::AccessKind::Write => AccessKind::Write,
        },
    }
}

/// Run a kernel plan's access stream through a memory hierarchy.
///
/// * `lane_group` — how many consecutive iterations are emitted in
///   lock-step (warp width / LSU burst buffer / unroll replication);
/// * `coalescer` — optional request coalescing between the kernel and
///   the hierarchy (GPU segments, FPGA LSU bursts);
/// * `sample_cap` — at most this many *kernel-side* accesses are
///   simulated; longer streams are extrapolated linearly from the
///   simulated prefix (streaming workloads are steady-state).
pub fn run_plan(
    hierarchy: &mut MemHierarchy,
    plan: &ExecPlan,
    lane_group: u32,
    coalescer: Option<Coalescer>,
    sample_cap: u64,
) -> StreamOutcome {
    let total = total_accesses(&plan.cfg);
    let take = total.min(sample_cap.max(1));
    let stream = access_stream(plan, lane_group)
        .take(take as usize)
        .map(to_mem);
    let mut out = match coalescer {
        Some(co) => hierarchy.run(co.coalesce(stream)),
        None => hierarchy.run(stream),
    };
    if take < total {
        let scale = total as f64 / take as f64;
        out.ns *= scale;
        let scaled = |x: u64| (x as f64 * scale) as u64;
        out.stats.dram_bytes = scaled(out.stats.dram_bytes);
        out.stats.dram_transactions = scaled(out.stats.dram_transactions);
        out.stats.row_hits = scaled(out.stats.row_hits);
        out.stats.row_misses = scaled(out.stats.row_misses);
        out.stats.row_empty = scaled(out.stats.row_empty);
    }
    out.simulated_accesses = take;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelgen::{KernelConfig, StreamOp};
    use memsim::{
        CacheConfig, DramConfig, MemHierarchyConfig, PrefetchConfig, TlbConfig, WritePolicy,
    };

    fn hierarchy() -> MemHierarchy {
        MemHierarchy::new(MemHierarchyConfig {
            caches: vec![CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
            }],
            hit_ns: vec![0.1],
            tlb: Some(TlbConfig {
                entries: 64,
                page_bytes: 4096,
                walk_ns: 20.0,
            }),
            prefetch: Some(PrefetchConfig { degree: 16 }),
            dram: DramConfig::ddr3_quad_channel(),
            issue_bytes_per_ns: 16.0,
            issue_ns_per_access: 0.0,
            mlp: 8,
            dram_extra_latency_ns: 40.0,
            write_policy: WritePolicy::Streaming,
            wc_flush_bytes: 512,
        })
    }

    fn plan(n: u64) -> ExecPlan {
        let cfg = KernelConfig::baseline(StreamOp::Copy, n);
        let bytes = cfg.array_bytes();
        ExecPlan::new(cfg, 4096, 4096 + bytes, 8192 + 2 * bytes)
    }

    #[test]
    fn kind_conversion() {
        let r = to_mem(memaccess::Access {
            addr: 1,
            bytes: 4,
            kind: memaccess::AccessKind::Read,
        });
        assert_eq!(r.kind, AccessKind::Read);
        let w = to_mem(memaccess::Access {
            addr: 1,
            bytes: 4,
            kind: memaccess::AccessKind::Write,
        });
        assert_eq!(w.kind, AccessKind::Write);
    }

    #[test]
    fn full_run_counts_all_accesses() {
        let p = plan(1 << 12);
        let out = run_plan(&mut hierarchy(), &p, 1, None, u64::MAX);
        assert_eq!(out.simulated_accesses, 2 << 12);
    }

    #[test]
    fn sampled_run_extrapolates() {
        let p = plan(1 << 16);
        let full = run_plan(&mut hierarchy(), &p, 1, None, u64::MAX);
        let sampled = run_plan(&mut hierarchy(), &p, 1, None, 1 << 14);
        let ratio = sampled.ns / full.ns;
        assert!(ratio > 0.7 && ratio < 1.4, "ratio {ratio}");
    }

    #[test]
    fn coalescer_reduces_dram_transactions() {
        let p = plan(1 << 12);
        let co = Coalescer::extent(512, 16);
        let without = run_plan(&mut hierarchy(), &p, 16, None, u64::MAX);
        let with = run_plan(&mut hierarchy(), &p, 16, Some(co), u64::MAX);
        // Both go through caches at line granularity, so DRAM traffic is
        // similar, but the coalesced stream is never slower.
        assert!(with.ns <= without.ns * 1.05);
    }
}
