//! Helpers shared by all device backends.

use kernelgen::access::memaccess;
use kernelgen::{access_stream, total_accesses, ExecPlan};
use memsim::{Access, AccessKind, Coalescer, MemHierarchy, StreamOutcome};
use mpcl::backend::{BuildArtifact, KernelCost};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Entries the kernel-cost memo holds before wholesale eviction. A sweep
/// touches one entry per distinct (device, config) pair — a few hundred
/// for the paper's full space — so the cap only guards against unbounded
/// growth in pathological DSE campaigns.
const COST_MEMO_CAP: usize = 8192;

static COST_MEMO: OnceLock<Mutex<HashMap<String, KernelCost>>> = OnceLock::new();

/// Build the memo key for a kernel launch: everything
/// [`memoized_kernel_cost`] callers may read while computing the cost.
/// Tuning structs and `ExecPlan` format their `f64` fields with Rust's
/// shortest-roundtrip `Debug`, so distinct values never collide.
pub fn cost_key(
    device: &str,
    tuning: &impl std::fmt::Debug,
    artifact: &BuildArtifact,
    plan: &ExecPlan,
) -> String {
    format!(
        "{device}|{tuning:?}|lane_group={}|fmax={:?}|{plan:?}",
        artifact.lane_group, artifact.fmax_mhz
    )
}

/// Memoize a kernel-cost computation per `(config, target)` key.
///
/// Every backend's `kernel_cost` builds a *fresh* hierarchy from its
/// tuning and runs the plan through it — a pure function of the key — so
/// replaying a cached result is byte-identical to recomputing it. Sweeps
/// hit the same key constantly (warmup plus measured launches of every
/// point, repeated configurations across DSE rounds), which makes this
/// the single largest throughput lever in the stack.
///
/// Under `MPSTREAM_SIM_SLOW=1` the memo is bypassed entirely, keeping
/// the slow path a launch-for-launch oracle.
pub fn memoized_kernel_cost(key: String, compute: impl FnOnce() -> KernelCost) -> KernelCost {
    if memsim::slowpath::slow() {
        return compute();
    }
    let memo = COST_MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = memo.lock().expect("cost memo lock").get(&key) {
        return hit.clone();
    }
    let cost = compute();
    let mut m = memo.lock().expect("cost memo lock");
    if m.len() >= COST_MEMO_CAP {
        m.clear();
    }
    m.insert(key, cost.clone());
    cost
}

/// Fraction of a kernel's counted accesses the *producer* (`_load`)
/// stage of a channeled two-stage variant issues. The producer streams
/// the `b` operand into the FIFO; the consumer keeps every other operand
/// as a direct argument and issues the writes:
///
/// * COPY / SCALE / PTRANS — one read feeds one write: an even split;
/// * ADD / TRIAD — the consumer reads `c` *and* writes `a`, so it does
///   two of every three accesses;
/// * GUPS — the consumer's read-modify-write of the hashed slot is two
///   of three accesses;
/// * DGEMM-lite — the producer re-streams a `b` row per output element
///   (K reads) while the consumer reads the `c` column (K) and writes
///   once: K of 2K+1.
pub fn producer_fraction(cfg: &kernelgen::KernelConfig) -> f64 {
    use kernelgen::Op;
    match cfg.op {
        Op::Copy | Op::Scale | Op::Ptrans => 0.5,
        Op::Add | Op::Triad | Op::RandomAccess => 1.0 / 3.0,
        Op::DgemmLite => {
            let (_, k) = cfg.matrix_shape();
            k as f64 / (2 * k + 1) as f64
        }
    }
}

/// Timing overlay for a channeled producer→consumer kernel pair.
///
/// The two stages run concurrently, so the steady state is paced by the
/// slower side of the memory work split ([`producer_fraction`]); on top
/// of that the consumer idles until the FIFO first fills
/// (`min(depth, n)` elements at `per_elem_ns` each). The imbalance
/// between the sides is the time the faster one spends blocked on the
/// FIFO — full writes for a fast producer, empty reads for a fast
/// consumer — reported as the stall term.
///
/// Returns `(ns, stall_ns)`, or `None` for single-stage kernels.
pub fn channel_overlay(
    cfg: &kernelgen::KernelConfig,
    base_ns: f64,
    per_elem_ns: f64,
) -> Option<(f64, f64)> {
    let ch = cfg.channel?;
    let producer = base_ns * producer_fraction(cfg);
    let consumer = base_ns - producer;
    let fill_elems = (ch.depth as u64).min(cfg.n_vectors()) as f64;
    let ns = producer.max(consumer) + fill_elems * per_elem_ns;
    Some((ns, (producer - consumer).abs()))
}

/// Compute-roofline clamp for DGEMM-lite: `n · 2K` multiply-adds cannot
/// finish faster than the device's arithmetic throughput allows, however
/// well the memory system streams. Identity for every other op.
pub fn dgemm_roofline_ns(cfg: &kernelgen::KernelConfig, mem_ns: f64, flops_per_ns: f64) -> f64 {
    if cfg.op != kernelgen::Op::DgemmLite || flops_per_ns <= 0.0 {
        return mem_ns;
    }
    let (_, k) = cfg.matrix_shape();
    let flops = (cfg.n_vectors() * 2 * k) as f64;
    mem_ns.max(flops / flops_per_ns)
}

/// Convert a kernel-side access record into the simulator's request type
/// (structurally identical; kept separate to avoid a dependency cycle).
pub fn to_mem(a: memaccess::Access) -> Access {
    Access {
        addr: a.addr,
        bytes: a.bytes,
        kind: match a.kind {
            memaccess::AccessKind::Read => AccessKind::Read,
            memaccess::AccessKind::Write => AccessKind::Write,
        },
    }
}

/// Run a kernel plan's access stream through a memory hierarchy.
///
/// * `lane_group` — how many consecutive iterations are emitted in
///   lock-step (warp width / LSU burst buffer / unroll replication);
/// * `coalescer` — optional request coalescing between the kernel and
///   the hierarchy (GPU segments, FPGA LSU bursts);
/// * `sample_cap` — at most this many *kernel-side* accesses are
///   simulated; longer streams are extrapolated linearly from the
///   simulated prefix (streaming workloads are steady-state).
pub fn run_plan(
    hierarchy: &mut MemHierarchy,
    plan: &ExecPlan,
    lane_group: u32,
    coalescer: Option<Coalescer>,
    sample_cap: u64,
) -> StreamOutcome {
    let total = total_accesses(&plan.cfg);
    let take = total.min(sample_cap.max(1));
    let mut out = if memsim::slowpath::slow() {
        // Reference pipeline: per-access iterator chain plus the
        // allocating coalescer adapter, exactly as originally written.
        let stream = access_stream(plan, lane_group)
            .take(take as usize)
            .map(to_mem);
        match coalescer {
            Some(co) => hierarchy.run(co.coalesce(stream)),
            None => hierarchy.run(stream),
        }
    } else if let Some(co) = BurstStream::applies(plan, lane_group, coalescer) {
        // Fused pipeline: for a contiguous traversal whose coalescing
        // window equals the lane group, every window is exactly one
        // instruction's unit-stride run, so the coalesced bursts are a
        // closed-form function of the run geometry. Emits the identical
        // burst sequence the reference chain produces (asserted by
        // `burst_stream_matches_reference_chain` below) at per-burst
        // instead of per-access cost.
        hierarchy.run(BurstStream::new(plan, lane_group, take, co))
    } else {
        // Fast pipeline: batch-generate the access stream and reuse the
        // coalescer's buffers. Produces the identical request sequence
        // (asserted by `fast_and_slow_pipelines_match` below and by the
        // memsim equivalence suite), so `ns` stays bit-identical.
        let stream = BatchedStream::new(access_stream(plan, lane_group), take);
        match coalescer {
            Some(co) => hierarchy.run(co.coalesce_buffered(stream)),
            None => hierarchy.run(stream),
        }
    };
    if take < total {
        let scale = total as f64 / take as f64;
        out.ns *= scale;
        let scaled = |x: u64| (x as f64 * scale) as u64;
        out.stats.dram_bytes = scaled(out.stats.dram_bytes);
        out.stats.dram_transactions = scaled(out.stats.dram_transactions);
        out.stats.row_hits = scaled(out.stats.row_hits);
        out.stats.row_misses = scaled(out.stats.row_misses);
        out.stats.row_empty = scaled(out.stats.row_empty);
    }
    out.simulated_accesses = take;
    out
}

/// How many accesses [`BatchedStream`] generates per refill. Large
/// enough to amortize the per-chunk bookkeeping, small enough to stay
/// resident in L1.
const GEN_CHUNK: usize = 1024;

/// Iterator over a plan's converted access stream that generates in
/// [`GEN_CHUNK`] batches through [`kernelgen::access::AccessStream::fill`]
/// instead of one `next()` dispatch per access. Emits exactly the
/// sequence of the reference chain
/// `access_stream(..).take(take).map(to_mem)`.
struct BatchedStream {
    src: kernelgen::access::AccessStream,
    buf: Vec<memaccess::Access>,
    cursor: usize,
    remaining: u64,
}

impl BatchedStream {
    fn new(src: kernelgen::access::AccessStream, take: u64) -> Self {
        BatchedStream {
            src,
            buf: Vec::with_capacity(GEN_CHUNK),
            cursor: 0,
            remaining: take,
        }
    }
}

impl Iterator for BatchedStream {
    type Item = Access;

    #[inline]
    fn next(&mut self) -> Option<Access> {
        if self.cursor == self.buf.len() {
            if self.remaining == 0 {
                return None;
            }
            self.buf.clear();
            self.cursor = 0;
            let want = (GEN_CHUNK as u64).min(self.remaining) as usize;
            if self.src.fill(&mut self.buf, want) == 0 {
                self.remaining = 0;
                return None;
            }
        }
        let a = self.buf[self.cursor];
        self.cursor += 1;
        self.remaining -= 1;
        Some(to_mem(a))
    }
}

/// Closed-form generator of the *coalesced* burst sequence for the
/// FPGA-LSU shape: contiguous traversal, [`CoalesceMode::Extent`]
/// merging, and a coalescing window equal to the lane group.
///
/// Under those conditions every coalescing window is exactly one
/// instruction's unit-stride run of `lane_group` accesses (window
/// boundaries never merge, and runs of different arrays or directions
/// never abut), so each window independently collapses to
/// `ceil(lane_group / floor(segment_bytes / vector_bytes))` bursts whose
/// addresses and lengths follow directly from the run geometry — no
/// per-access work at all.
struct BurstStream {
    /// Bytes per vector element.
    vb: u64,
    /// Elements per instruction run (= lane group = coalescing window).
    lane: u64,
    /// Elements one burst may carry: `max(1, segment_bytes / vb)`.
    elems_per_burst: u64,
    base_a: u64,
    base_b: u64,
    base_c: Option<u64>,
    /// Traversal position of the current run's first element.
    group_start: u64,
    /// 0 = read b, 1 = read c (if present), 2 = write a.
    instr: u8,
    /// Elements of the current run already covered by emitted bursts.
    run_elem: u64,
    /// Pre-coalesce accesses still to cover (the `take` budget).
    remaining: u64,
}

impl BurstStream {
    /// The coalescer when the fused path applies to this launch shape,
    /// `None` when the generic pipeline must run instead. The lane
    /// group must divide the traversal so every window is one full run
    /// (the final window may still be truncated by the sample cap,
    /// which shortens a run but never misaligns one).
    fn applies(
        plan: &ExecPlan,
        lane_group: u32,
        coalescer: Option<Coalescer>,
    ) -> Option<Coalescer> {
        let co = coalescer?;
        let contiguous = matches!(plan.cfg.pattern, kernelgen::AccessPattern::Contiguous);
        // Only the STREAM triple-run shape (read b [, read c], write a,
        // all unit-stride) collapses to closed-form bursts; the HPCC
        // family's scatter/transpose/matmul streams take the generic
        // pipeline.
        (plan.cfg.op.is_stream()
            && co.mode == memsim::CoalesceMode::Extent
            && contiguous
            && co.window == lane_group as usize
            && plan.cfg.n_vectors().is_multiple_of(lane_group as u64))
        .then_some(co)
    }

    fn new(plan: &ExecPlan, lane_group: u32, take: u64, co: Coalescer) -> Self {
        let vb = plan.cfg.vector_bytes();
        BurstStream {
            vb,
            lane: lane_group as u64,
            elems_per_burst: (co.segment_bytes as u64 / vb).max(1),
            base_a: plan.base_a,
            base_b: plan.base_b,
            base_c: plan.cfg.op.uses_c().then_some(plan.base_c),
            group_start: 0,
            instr: 0,
            run_elem: 0,
            remaining: take,
        }
    }
}

impl Iterator for BurstStream {
    type Item = Access;

    #[inline]
    fn next(&mut self) -> Option<Access> {
        loop {
            if self.remaining == 0 {
                return None;
            }
            let avail = (self.lane - self.run_elem).min(self.remaining);
            if avail == 0 {
                // Run exhausted: next instruction, then next lane group.
                self.run_elem = 0;
                self.instr = match (self.instr, self.base_c.is_some()) {
                    (0, true) => 1,
                    (0, false) => 2,
                    (1, _) => 2,
                    _ => {
                        self.group_start += self.lane;
                        0
                    }
                };
                continue;
            }
            let (base, kind) = match self.instr {
                0 => (self.base_b, AccessKind::Read),
                1 => (
                    self.base_c.expect("instr 1 only when c present"),
                    AccessKind::Read,
                ),
                _ => (self.base_a, AccessKind::Write),
            };
            let count = self.elems_per_burst.min(avail);
            let addr = base + (self.group_start + self.run_elem) * self.vb;
            self.run_elem += count;
            self.remaining -= count;
            return Some(Access {
                addr,
                bytes: (count * self.vb) as u32,
                kind,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelgen::{KernelConfig, StreamOp};
    use memsim::{
        CacheConfig, DramConfig, MemHierarchyConfig, PrefetchConfig, TlbConfig, WritePolicy,
    };

    fn hierarchy() -> MemHierarchy {
        MemHierarchy::new(MemHierarchyConfig {
            caches: vec![CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
            }],
            hit_ns: vec![0.1],
            tlb: Some(TlbConfig {
                entries: 64,
                page_bytes: 4096,
                walk_ns: 20.0,
            }),
            prefetch: Some(PrefetchConfig { degree: 16 }),
            dram: DramConfig::ddr3_quad_channel(),
            issue_bytes_per_ns: 16.0,
            issue_ns_per_access: 0.0,
            mlp: 8,
            dram_extra_latency_ns: 40.0,
            write_policy: WritePolicy::Streaming,
            wc_flush_bytes: 512,
        })
    }

    fn plan(n: u64) -> ExecPlan {
        let cfg = KernelConfig::baseline(StreamOp::Copy, n);
        let bytes = cfg.array_bytes();
        ExecPlan::new(cfg, 4096, 4096 + bytes, 8192 + 2 * bytes)
    }

    #[test]
    fn kind_conversion() {
        let r = to_mem(memaccess::Access {
            addr: 1,
            bytes: 4,
            kind: memaccess::AccessKind::Read,
        });
        assert_eq!(r.kind, AccessKind::Read);
        let w = to_mem(memaccess::Access {
            addr: 1,
            bytes: 4,
            kind: memaccess::AccessKind::Write,
        });
        assert_eq!(w.kind, AccessKind::Write);
    }

    #[test]
    fn full_run_counts_all_accesses() {
        let p = plan(1 << 12);
        let out = run_plan(&mut hierarchy(), &p, 1, None, u64::MAX);
        assert_eq!(out.simulated_accesses, 2 << 12);
    }

    #[test]
    fn sampled_run_extrapolates() {
        let p = plan(1 << 16);
        let full = run_plan(&mut hierarchy(), &p, 1, None, u64::MAX);
        let sampled = run_plan(&mut hierarchy(), &p, 1, None, 1 << 14);
        let ratio = sampled.ns / full.ns;
        assert!(ratio > 0.7 && ratio < 1.4, "ratio {ratio}");
    }

    #[test]
    fn memo_caches_per_key_and_slow_mode_bypasses() {
        use memsim::MemStats;
        let was_slow = memsim::slowpath::slow();
        memsim::slowpath::force(false);
        let cost = KernelCost {
            ns: 123.456,
            dram_bytes: 789,
            stats: MemStats::new(),
            stall_ns: 0.0,
        };
        let key = "test-device|memo_caches_per_key".to_string();
        let mut calls = 0u32;
        let first = memoized_kernel_cost(key.clone(), || {
            calls += 1;
            cost.clone()
        });
        let second = memoized_kernel_cost(key.clone(), || {
            calls += 1;
            cost.clone()
        });
        assert_eq!(calls, 1, "second lookup must hit the memo");
        assert_eq!(first, second);
        assert_eq!(first.ns.to_bits(), cost.ns.to_bits());

        memsim::slowpath::force(true);
        memoized_kernel_cost(key, || {
            calls += 1;
            cost.clone()
        });
        assert_eq!(calls, 2, "slow mode must recompute every launch");
        memsim::slowpath::force(was_slow);
    }

    #[test]
    fn cost_keys_separate_devices_and_plans() {
        let art = BuildArtifact {
            build_log: "a very long synthesis report that must not leak into keys".into(),
            fmax_mhz: Some(290.0),
            resources: None,
            lane_group: 64,
            synthesis_ns: 1.0,
        };
        let p1 = plan(1 << 12);
        let p2 = plan(1 << 13);
        let k1 = cost_key("aocl", &"t", &art, &p1);
        let k2 = cost_key("aocl", &"t", &art, &p2);
        let k3 = cost_key("hmc", &"t", &art, &p1);
        assert_ne!(k1, k2, "different plans");
        assert_ne!(k1, k3, "different devices");
        assert!(!k1.contains("synthesis report"), "logs stay out of keys");
    }

    #[test]
    fn burst_stream_matches_reference_chain() {
        for op in [StreamOp::Copy, StreamOp::Triad, StreamOp::Scale] {
            for width in [1u32, 4, 16] {
                for (cap_bytes, lane) in [(1024, 64), (512, 16), (32, 8), (4, 16)] {
                    for take_frac in [u64::MAX, 1000, 999, 64, 1] {
                        let mut cfg = KernelConfig::baseline(op, 1 << 10);
                        cfg.vector_width = kernelgen::VectorWidth::new(width).unwrap();
                        let bytes = cfg.array_bytes();
                        let p = ExecPlan::new(cfg, 4096, 4096 + bytes, 8192 + 2 * bytes);
                        let co = Coalescer::extent(cap_bytes, lane as usize);
                        assert!(BurstStream::applies(&p, lane, Some(co)).is_some());
                        let total = total_accesses(&p.cfg);
                        let take = total.min(take_frac);
                        let reference: Vec<Access> = co
                            .coalesce(access_stream(&p, lane).take(take as usize).map(to_mem))
                            .collect();
                        let fused: Vec<Access> = BurstStream::new(&p, lane, take, co).collect();
                        assert_eq!(
                            fused, reference,
                            "{op:?} width={width} cap={cap_bytes} lane={lane} take={take}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn burst_stream_applicability_gates() {
        let p = plan(1 << 10);
        let ext = Coalescer::extent(512, 16);
        assert!(BurstStream::applies(&p, 16, Some(ext)).is_some());
        // Window != lane group, aligned mode, no coalescer, non-contiguous
        // pattern, or a lane group that does not divide the traversal all
        // fall back to the generic pipeline.
        assert!(BurstStream::applies(&p, 8, Some(ext)).is_none());
        assert!(BurstStream::applies(&p, 16, Some(Coalescer::new(512, 16))).is_none());
        assert!(BurstStream::applies(&p, 16, None).is_none());
        assert!(BurstStream::applies(&p, 48, Some(Coalescer::extent(512, 48))).is_none());
        let mut cfg = KernelConfig::baseline(StreamOp::Copy, 1 << 10);
        cfg.pattern = kernelgen::AccessPattern::Strided { stride: 4 };
        let bytes = cfg.array_bytes();
        let strided = ExecPlan::new(cfg, 0, bytes, 2 * bytes);
        assert!(BurstStream::applies(&strided, 16, Some(ext)).is_none());
    }

    #[test]
    fn fast_and_slow_pipelines_match() {
        let was_slow = memsim::slowpath::slow();
        let co_cases = [
            None,
            Some(Coalescer::extent(512, 16)),
            Some(Coalescer::extent(512, 32)),
            Some(Coalescer::new(128, 32)),
        ];
        for co in co_cases {
            for lane in [1, 8, 32] {
                for cap in [u64::MAX, 1 << 10, 777] {
                    let p = plan(1 << 11);
                    memsim::slowpath::force(true);
                    let slow = run_plan(&mut hierarchy(), &p, lane, co, cap);
                    memsim::slowpath::force(false);
                    let fast = run_plan(&mut hierarchy(), &p, lane, co, cap);
                    memsim::slowpath::force(was_slow);
                    assert_eq!(
                        fast.ns.to_bits(),
                        slow.ns.to_bits(),
                        "co={co:?} lane={lane} cap={cap}"
                    );
                    assert_eq!(fast.stats, slow.stats, "co={co:?} lane={lane} cap={cap}");
                    assert_eq!(fast.simulated_accesses, slow.simulated_accesses);
                }
            }
        }
    }

    #[test]
    fn hpcc_ops_fall_back_to_the_generic_pipeline() {
        for op in kernelgen::Op::HPCC {
            let mut cfg = KernelConfig::baseline(op, 1 << 10);
            cfg.dtype = kernelgen::DataType::I32;
            let bytes = cfg.array_bytes();
            let p = ExecPlan::new(cfg, 4096, 4096 + bytes, 8192 + 2 * bytes);
            let ext = Coalescer::extent(512, 16);
            assert!(
                BurstStream::applies(&p, 16, Some(ext)).is_none(),
                "{op:?} must not take the fused burst path"
            );
        }
    }

    #[test]
    fn producer_fraction_splits_by_op_shape() {
        let frac = |op| producer_fraction(&KernelConfig::baseline(op, 1 << 10));
        assert_eq!(frac(kernelgen::Op::Copy), 0.5);
        assert_eq!(frac(kernelgen::Op::Ptrans), 0.5);
        assert!((frac(kernelgen::Op::Triad) - 1.0 / 3.0).abs() < 1e-12);
        assert!((frac(kernelgen::Op::RandomAccess) - 1.0 / 3.0).abs() < 1e-12);
        // 1024 elements -> 32x32 view -> K=32 -> 32/65.
        let d = frac(kernelgen::Op::DgemmLite);
        assert!((d - 32.0 / 65.0).abs() < 1e-12, "{d}");
    }

    #[test]
    fn channel_overlay_paces_on_the_slow_side() {
        let mut cfg = KernelConfig::baseline(StreamOp::Copy, 1 << 10);
        assert!(
            channel_overlay(&cfg, 1000.0, 1.0).is_none(),
            "single-stage kernels have no overlay"
        );
        cfg.channel = Some(kernelgen::ChannelSpec { depth: 16 });
        let (ns, stall) = channel_overlay(&cfg, 1000.0, 1.0).unwrap();
        // Even split: both sides take 500 ns, plus a 16-element fill.
        assert!((ns - 516.0).abs() < 1e-9, "{ns}");
        assert!(stall.abs() < 1e-9, "balanced copy has no stall: {stall}");

        cfg.op = StreamOp::Triad;
        let (ns, stall) = channel_overlay(&cfg, 900.0, 1.0).unwrap();
        // Producer 300 ns, consumer 600 ns: consumer-bound, producer
        // blocked for the 300 ns difference.
        assert!((ns - 616.0).abs() < 1e-9, "{ns}");
        assert!((stall - 300.0).abs() < 1e-9, "{stall}");

        // The fill term is capped by the traversal length.
        let mut tiny = KernelConfig::baseline(StreamOp::Copy, 4);
        tiny.channel = Some(kernelgen::ChannelSpec { depth: 1024 });
        let (ns, _) = channel_overlay(&tiny, 10.0, 1.0).unwrap();
        assert!((ns - 9.0).abs() < 1e-9, "fill caps at n=4: {ns}");
    }

    #[test]
    fn dgemm_roofline_clamps_only_dgemm() {
        let copy = KernelConfig::baseline(StreamOp::Copy, 1 << 10);
        assert_eq!(dgemm_roofline_ns(&copy, 100.0, 1.0), 100.0);
        let mut dg = KernelConfig::baseline(kernelgen::Op::DgemmLite, 1 << 10);
        dg.dtype = kernelgen::DataType::I32;
        // 1024 outputs x 2K (K=32) = 65536 flops; at 1 flop/ns that
        // dominates a 100 ns memory estimate.
        assert_eq!(dgemm_roofline_ns(&dg, 100.0, 1.0), 65536.0);
        // A fast-enough datapath leaves the memory bound in charge.
        assert_eq!(dgemm_roofline_ns(&dg, 100.0, 1e9), 100.0);
    }

    #[test]
    fn coalescer_reduces_dram_transactions() {
        let p = plan(1 << 12);
        let co = Coalescer::extent(512, 16);
        let without = run_plan(&mut hierarchy(), &p, 16, None, u64::MAX);
        let with = run_plan(&mut hierarchy(), &p, 16, Some(co), u64::MAX);
        // Both go through caches at line granularity, so DRAM traffic is
        // similar, but the coalesced stream is never slower.
        assert!(with.ns <= without.ns * 1.05);
    }
}
