//! FPGA resource estimation.
//!
//! The paper observes that AOCL's replication attributes "take up more
//! FPGA resources when compared with equivalent native OpenCL
//! optimizations" — so the resource model charges `num_simd_work_items`
//! and especially `num_compute_units` more logic than plain
//! vectorization, and synthesis fails when the device is over capacity.
//! Utilisation also feeds fmax degradation (routing congestion).

use kernelgen::{DataType, KernelConfig, VendorOpts};
use mpcl::ResourceUsage;

/// Device capacities for the two boards in the paper.
#[derive(Debug, Clone, Copy)]
pub struct FpgaCapacity {
    /// Total logic elements (ALMs for Stratix V, LUTs for Virtex-7).
    pub capacity: ResourceUsage,
    /// Logic consumed by the vendor's board support package / shell
    /// before any kernel is placed.
    pub shell: ResourceUsage,
}

impl FpgaCapacity {
    /// Altera Stratix V GS D5 (Nallatech PCIe-385N): 172 600 ALMs,
    /// 2014 M20K blocks, 1590 DSPs.
    pub fn stratix_v_gsd5() -> Self {
        FpgaCapacity {
            capacity: ResourceUsage {
                logic: 172_600,
                bram: 2014,
                dsp: 1590,
            },
            shell: ResourceUsage {
                logic: 28_000,
                bram: 220,
                dsp: 0,
            },
        }
    }

    /// Intel Arria 10 GX 1150 (the "newer FPGA boards" outlook):
    /// 427 200 ALMs, 2713 M20K blocks, 1518 DSPs.
    pub fn arria10_gx1150() -> Self {
        FpgaCapacity {
            capacity: ResourceUsage {
                logic: 427_200,
                bram: 2713,
                dsp: 1518,
            },
            shell: ResourceUsage {
                logic: 40_000,
                bram: 280,
                dsp: 0,
            },
        }
    }

    /// Xilinx Virtex-7 690T (Alpha-Data ADM-PCIE-7V3): 433 200 LUTs,
    /// 1470 BRAM36, 3600 DSPs.
    pub fn virtex7_690t() -> Self {
        FpgaCapacity {
            capacity: ResourceUsage {
                logic: 433_200,
                bram: 1470,
                dsp: 3600,
            },
            shell: ResourceUsage {
                logic: 60_000,
                bram: 180,
                dsp: 0,
            },
        }
    }
}

/// Per-configuration resource estimate, shared by both FPGA flows (the
/// flows differ in capacity and constants, not structure).
#[derive(Debug, Clone, Copy)]
pub struct ResourceModel {
    /// Fixed kernel scaffolding (pipeline control, host interface).
    pub kernel_base_logic: u64,
    /// Logic per load/store unit per word of width.
    pub lsu_logic_per_word: u64,
    /// BRAM per LSU per word of width (burst buffers).
    pub lsu_bram_per_word: u64,
    /// Logic per ALU lane (adders/muxes).
    pub alu_logic_per_word: u64,
    /// Extra cost factor for `num_simd_work_items` relative to native
    /// vectorization (> 1: the paper's observation).
    pub simd_overhead: f64,
    /// Extra scaffolding replicated per compute unit, beyond the kernel
    /// itself (arbitration, duplicated control).
    pub cu_overhead_logic: u64,
}

impl Default for ResourceModel {
    fn default() -> Self {
        ResourceModel {
            kernel_base_logic: 4_000,
            lsu_logic_per_word: 900,
            lsu_bram_per_word: 6,
            alu_logic_per_word: 350,
            simd_overhead: 1.6,
            cu_overhead_logic: 1_500,
        }
    }
}

impl ResourceModel {
    /// Estimate the kernel's resource usage (excluding the shell).
    pub fn estimate(&self, cfg: &KernelConfig) -> ResourceUsage {
        let w = cfg.vector_width.get() as u64;
        let unroll = cfg.unroll.max(1) as u64;
        // Effective datapath width per pipeline from native constructs.
        let native_words = w * unroll;
        let lsus = cfg.op.arrays();

        let (simd, cus) = match cfg.vendor {
            VendorOpts::Aocl(a) => (a.num_simd_work_items as u64, a.num_compute_units as u64),
            _ => (1, 1),
        };

        // DSPs: multipliers for the q scalar, per lane; doubles cost 4x.
        let mult_lanes = if cfg.op.uses_q() {
            native_words * simd
        } else {
            0
        };
        let dsp_per_lane = match cfg.dtype {
            DataType::I32 => 1,
            DataType::F64 => 4,
        };
        // ADD consumes a little logic per lane instead, folded into ALU.

        let words_simd =
            (native_words * simd) as f64 * if simd > 1 { self.simd_overhead } else { 1.0 };
        let one_cu = ResourceUsage {
            logic: self.kernel_base_logic
                + (lsus * self.lsu_logic_per_word) * words_simd.ceil() as u64
                + self.alu_logic_per_word * words_simd.ceil() as u64,
            bram: lsus * self.lsu_bram_per_word * native_words * simd + 16,
            dsp: mult_lanes * dsp_per_lane,
        };

        ResourceUsage {
            logic: one_cu.logic * cus + self.cu_overhead_logic * cus.saturating_sub(1),
            bram: one_cu.bram * cus,
            dsp: one_cu.dsp * cus,
        }
    }

    /// Full-device utilisation in `[0, ∞)` including the shell; > 1 means
    /// the build fails.
    pub fn utilisation(&self, cfg: &KernelConfig, cap: FpgaCapacity) -> f64 {
        self.estimate(cfg).plus(cap.shell).utilisation(cap.capacity)
    }

    /// A synthesis-report-style log line.
    pub fn report(&self, cfg: &KernelConfig, cap: FpgaCapacity) -> String {
        let u = self.estimate(cfg);
        let total = u.plus(cap.shell);
        format!(
            "kernel mp_{}: logic {} ({:.1}%), bram {} ({:.1}%), dsp {} ({:.1}%)",
            cfg.op.name(),
            u.logic,
            100.0 * total.logic as f64 / cap.capacity.logic as f64,
            u.bram,
            100.0 * total.bram as f64 / cap.capacity.bram as f64,
            u.dsp,
            100.0 * total.dsp as f64 / cap.capacity.dsp.max(1) as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernelgen::{AoclOpts, LoopMode, StreamOp};

    fn cfg() -> KernelConfig {
        KernelConfig::baseline(StreamOp::Triad, 1 << 20)
    }

    fn with_aocl(simd: u32, cu: u32) -> KernelConfig {
        let mut c = cfg();
        c.loop_mode = LoopMode::NdRange;
        c.reqd_work_group_size = true;
        c.vendor = VendorOpts::Aocl(AoclOpts {
            num_simd_work_items: simd,
            num_compute_units: cu,
        });
        c
    }

    #[test]
    fn wider_vectors_cost_more() {
        let m = ResourceModel::default();
        let narrow = m.estimate(&cfg());
        let mut wide_cfg = cfg();
        wide_cfg.vector_width = kernelgen::VectorWidth::new(16).unwrap();
        let wide = m.estimate(&wide_cfg);
        assert!(wide.logic > narrow.logic * 4);
        assert!(wide.bram > narrow.bram);
    }

    #[test]
    fn simd_costs_more_than_native_vectorization() {
        let m = ResourceModel::default();
        let mut native = cfg();
        native.vector_width = kernelgen::VectorWidth::new(8).unwrap();
        let simd = with_aocl(8, 1);
        assert!(
            m.estimate(&simd).logic > m.estimate(&native).logic,
            "paper: vendor replication uses more resources than native vectorization"
        );
    }

    #[test]
    fn compute_units_replicate_everything() {
        let m = ResourceModel::default();
        let one = m.estimate(&with_aocl(1, 1));
        let four = m.estimate(&with_aocl(1, 4));
        assert!(
            four.logic > 4 * one.logic,
            "CU duplication plus arbitration overhead"
        );
        assert_eq!(four.bram, 4 * one.bram);
    }

    #[test]
    fn copy_uses_no_dsps_triad_does() {
        let m = ResourceModel::default();
        let copy = m.estimate(&KernelConfig::baseline(StreamOp::Copy, 1024));
        assert_eq!(copy.dsp, 0);
        assert!(m.estimate(&cfg()).dsp > 0);
        let mut f64_triad = cfg();
        f64_triad.dtype = DataType::F64;
        assert!(m.estimate(&f64_triad).dsp > m.estimate(&cfg()).dsp);
    }

    #[test]
    fn moderate_configs_fit_both_devices() {
        let m = ResourceModel::default();
        let mut c = cfg();
        c.vector_width = kernelgen::VectorWidth::new(16).unwrap();
        assert!(m.utilisation(&c, FpgaCapacity::stratix_v_gsd5()) < 1.0);
        assert!(m.utilisation(&c, FpgaCapacity::virtex7_690t()) < 1.0);
    }

    #[test]
    fn extreme_replication_overflows_stratix() {
        let m = ResourceModel::default();
        let c = with_aocl(16, 16);
        assert!(
            m.utilisation(&c, FpgaCapacity::stratix_v_gsd5()) > 1.0,
            "16 SIMD x 16 CUs should not fit"
        );
    }

    #[test]
    fn report_mentions_percentages() {
        let m = ResourceModel::default();
        let r = m.report(&cfg(), FpgaCapacity::stratix_v_gsd5());
        assert!(r.contains("%"), "{r}");
        assert!(r.contains("mp_triad"));
    }
}
