//! Per-target power-model constants.
//!
//! The paper's §IV flags energy efficiency as the dimension it did not
//! measure — "that is one area where FPGAs can still win in spite of the
//! higher achievable bandwidths on GPUs". The [`mpcl::PowerModel`]
//! board-level model is
//!
//! `P = P_idle + P_active + e_mem * BW_dram`
//!
//! with DRAM energy charged per byte actually moved on the bus (so
//! wasted bytes — strided segments, RFO fills — cost real energy). The
//! constants here are datasheet/TDP-level for the paper's four devices.

use crate::TargetId;
use mpcl::PowerModel;

/// Xeon E5-2609 v2: 80 W TDP, ~45 W idle package + DIMMs.
pub fn cpu() -> PowerModel {
    PowerModel {
        idle_w: 45.0,
        active_w: 35.0,
        pj_per_byte: 60.0,
    }
}

/// GTX Titan Black: 250 W TDP board.
pub fn gpu() -> PowerModel {
    PowerModel {
        idle_w: 40.0,
        active_w: 160.0,
        pj_per_byte: 25.0,
    }
}

/// Nallatech PCIe-385N (Stratix V): ~25 W board.
pub fn fpga_aocl() -> PowerModel {
    PowerModel {
        idle_w: 12.0,
        active_w: 10.0,
        pj_per_byte: 55.0,
    }
}

/// Alpha-Data ADM-PCIE (Virtex-7): ~25 W board.
pub fn fpga_sdaccel() -> PowerModel {
    PowerModel {
        idle_w: 13.0,
        active_w: 9.0,
        pj_per_byte: 55.0,
    }
}

/// The model for one of the standard targets.
pub fn for_target(id: TargetId) -> PowerModel {
    match id {
        TargetId::Cpu => cpu(),
        TargetId::Gpu => gpu(),
        TargetId::FpgaAocl => fpga_aocl(),
        TargetId::FpgaSdaccel => fpga_sdaccel(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_scales_with_time_and_bytes() {
        let p = cpu();
        let short = p.energy_j(1e6, 1 << 20);
        let long = p.energy_j(2e6, 1 << 20);
        let busy = p.energy_j(1e6, 1 << 24);
        assert!(long > short);
        assert!(busy > short);
    }

    #[test]
    fn fpga_boards_draw_far_less_than_the_gpu() {
        // Same duration, same traffic: the FPGA uses much less energy.
        let e_gpu = gpu().energy_j(1e9, 1 << 30);
        let e_fpga = fpga_aocl().energy_j(1e9, 1 << 30);
        assert!(e_gpu > 5.0 * e_fpga, "gpu {e_gpu} vs fpga {e_fpga}");
    }

    #[test]
    fn efficiency_can_favour_fpga_despite_lower_bandwidth() {
        // GPU: 200 GB/s sustained; FPGA: 15 GB/s sustained. Move 1 GB.
        let payload = 1u64 << 30;
        let gpu_ns = payload as f64 / 200.0;
        let fpga_ns = payload as f64 / 15.0;
        let gpu_eff = gpu().gb_per_joule(payload, gpu_ns, payload);
        let fpga_eff = fpga_aocl().gb_per_joule(payload, fpga_ns, payload);
        // The paper's conjecture holds for the vectorized FPGA point.
        assert!(
            fpga_eff > 0.5 * gpu_eff,
            "fpga {fpga_eff} vs gpu {gpu_eff} GB/J"
        );
    }

    #[test]
    fn every_target_has_a_model() {
        for id in TargetId::ALL {
            let p = for_target(id);
            assert!(p.idle_w > 0.0 && p.active_w > 0.0 && p.pj_per_byte > 0.0);
        }
    }
}
