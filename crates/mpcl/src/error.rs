//! OpenCL-flavoured error type.

use std::fmt;

/// Errors surfaced by the runtime, mirroring the OpenCL error codes the
/// real MP-STREAM host code would have to handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClError {
    /// No device matched the request (`CL_DEVICE_NOT_FOUND`).
    DeviceNotFound,
    /// Buffer size is zero or exceeds the device's global memory
    /// (`CL_INVALID_BUFFER_SIZE` / `CL_MEM_OBJECT_ALLOCATION_FAILURE`).
    InvalidBufferSize { requested: u64, limit: u64 },
    /// Kernel argument does not match the kernel's signature
    /// (`CL_INVALID_KERNEL_ARGS`).
    InvalidKernelArgs(String),
    /// Program build failed (`CL_BUILD_PROGRAM_FAILURE`); for the FPGA
    /// targets this is a synthesis failure and carries the build log.
    BuildProgramFailure(String),
    /// Work-group configuration rejected (`CL_INVALID_WORK_GROUP_SIZE`).
    InvalidWorkGroupSize(String),
    /// Source and destination memory objects overlap
    /// (`CL_MEM_COPY_OVERLAP`).
    MemCopyOverlap,
    /// Host buffer size does not match the transfer
    /// (`CL_INVALID_VALUE`).
    InvalidValue(String),
    /// Objects from different contexts were mixed
    /// (`CL_INVALID_CONTEXT`).
    InvalidContext,
}

impl fmt::Display for ClError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClError::DeviceNotFound => write!(f, "CL_DEVICE_NOT_FOUND"),
            ClError::InvalidBufferSize { requested, limit } => {
                write!(
                    f,
                    "CL_INVALID_BUFFER_SIZE: {requested} bytes (device limit {limit})"
                )
            }
            ClError::InvalidKernelArgs(why) => write!(f, "CL_INVALID_KERNEL_ARGS: {why}"),
            ClError::BuildProgramFailure(log) => {
                write!(f, "CL_BUILD_PROGRAM_FAILURE:\n{log}")
            }
            ClError::InvalidWorkGroupSize(why) => {
                write!(f, "CL_INVALID_WORK_GROUP_SIZE: {why}")
            }
            ClError::MemCopyOverlap => write!(f, "CL_MEM_COPY_OVERLAP"),
            ClError::InvalidValue(why) => write!(f, "CL_INVALID_VALUE: {why}"),
            ClError::InvalidContext => write!(f, "CL_INVALID_CONTEXT"),
        }
    }
}

impl std::error::Error for ClError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_cl_code() {
        let e = ClError::InvalidBufferSize {
            requested: 10,
            limit: 5,
        };
        assert!(e.to_string().contains("CL_INVALID_BUFFER_SIZE"));
        assert!(ClError::DeviceNotFound
            .to_string()
            .contains("CL_DEVICE_NOT_FOUND"));
    }

    #[test]
    fn build_failure_carries_log() {
        let e = ClError::BuildProgramFailure("ALM utilisation 140%".into());
        assert!(e.to_string().contains("140%"));
    }
}
