//! OpenCL-flavoured error type.

use std::fmt;

/// Errors surfaced by the runtime, mirroring the OpenCL error codes the
/// real MP-STREAM host code would have to handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClError {
    /// No device matched the request (`CL_DEVICE_NOT_FOUND`).
    DeviceNotFound,
    /// Buffer size is zero or exceeds the device's global memory
    /// (`CL_INVALID_BUFFER_SIZE` / `CL_MEM_OBJECT_ALLOCATION_FAILURE`).
    InvalidBufferSize { requested: u64, limit: u64 },
    /// Kernel argument does not match the kernel's signature
    /// (`CL_INVALID_KERNEL_ARGS`).
    InvalidKernelArgs(String),
    /// Program build failed (`CL_BUILD_PROGRAM_FAILURE`); for the FPGA
    /// targets this is a synthesis failure and carries the build log.
    BuildProgramFailure(String),
    /// Work-group configuration rejected (`CL_INVALID_WORK_GROUP_SIZE`).
    InvalidWorkGroupSize(String),
    /// Source and destination memory objects overlap
    /// (`CL_MEM_COPY_OVERLAP`).
    MemCopyOverlap,
    /// Host buffer size does not match the transfer
    /// (`CL_INVALID_VALUE`).
    InvalidValue(String),
    /// Objects from different contexts were mixed
    /// (`CL_INVALID_CONTEXT`).
    InvalidContext,
    /// The device dropped off the bus mid-command (seen on real FPGA
    /// boards as `CL_DEVICE_NOT_AVAILABLE` after a reconfiguration
    /// glitch). Transient: re-creating the context usually recovers.
    DeviceLost,
    /// An enqueued command exceeded its deadline (driver watchdog or
    /// host-side timeout around a hung enqueue). Transient.
    Timeout(String),
    /// Program build failed for a *tool* reason, not a design reason —
    /// the synthesis toolchain crashed, ran out of licenses, or hit a
    /// filesystem race. Unlike [`ClError::BuildProgramFailure`] (the
    /// design does not fit — deterministic and permanent), retrying a
    /// transient build failure is expected to succeed.
    TransientBuildFailure(String),
    /// Host-side code panicked while executing a configuration; the
    /// panic was isolated to that configuration's outcome. Permanent —
    /// retrying a poisoned configuration would panic again.
    HostPanic(String),
    /// The configuration was cooperatively cancelled before it ran (a
    /// cancelled sweep job or a shutting-down server). Permanent for
    /// retry purposes — the cancellation was deliberate — but *not* a
    /// verdict on the configuration: cancelled outcomes are never
    /// checkpointed, so a resumed sweep re-runs them.
    Cancelled,
}

/// Whether an error is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryClass {
    /// Retrying the same operation may succeed (tool crash, device
    /// drop-out, watchdog timeout).
    Transient,
    /// Retrying is pointless: the verdict is deterministic (design does
    /// not fit, invalid arguments, host bug).
    Permanent,
}

impl ClError {
    /// Classify this error for retry purposes.
    pub fn retry_class(&self) -> RetryClass {
        match self {
            ClError::DeviceLost | ClError::Timeout(_) | ClError::TransientBuildFailure(_) => {
                RetryClass::Transient
            }
            _ => RetryClass::Permanent,
        }
    }

    /// Is this a transient error (see [`RetryClass`])?
    pub fn is_transient(&self) -> bool {
        self.retry_class() == RetryClass::Transient
    }

    /// Stable variant name, used as the tag when persisting errors to a
    /// sweep checkpoint.
    pub fn code(&self) -> &'static str {
        match self {
            ClError::DeviceNotFound => "DeviceNotFound",
            ClError::InvalidBufferSize { .. } => "InvalidBufferSize",
            ClError::InvalidKernelArgs(_) => "InvalidKernelArgs",
            ClError::BuildProgramFailure(_) => "BuildProgramFailure",
            ClError::InvalidWorkGroupSize(_) => "InvalidWorkGroupSize",
            ClError::MemCopyOverlap => "MemCopyOverlap",
            ClError::InvalidValue(_) => "InvalidValue",
            ClError::InvalidContext => "InvalidContext",
            ClError::DeviceLost => "DeviceLost",
            ClError::Timeout(_) => "Timeout",
            ClError::TransientBuildFailure(_) => "TransientBuildFailure",
            ClError::HostPanic(_) => "HostPanic",
            ClError::Cancelled => "Cancelled",
        }
    }

    /// The variant's payload, paired with [`ClError::code`] for
    /// checkpoint persistence; [`ClError::from_parts`] reverses it.
    pub fn detail(&self) -> String {
        match self {
            ClError::InvalidBufferSize { requested, limit } => {
                format!("requested={requested} limit={limit}")
            }
            ClError::InvalidKernelArgs(s)
            | ClError::BuildProgramFailure(s)
            | ClError::InvalidWorkGroupSize(s)
            | ClError::InvalidValue(s)
            | ClError::Timeout(s)
            | ClError::TransientBuildFailure(s)
            | ClError::HostPanic(s) => s.clone(),
            _ => String::new(),
        }
    }

    /// Rebuild an error from a `(code, detail)` pair produced by
    /// [`ClError::code`]/[`ClError::detail`]. Unknown codes fall back to
    /// [`ClError::InvalidValue`] carrying the detail text.
    pub fn from_parts(code: &str, detail: &str) -> ClError {
        let msg = || detail.to_string();
        match code {
            "DeviceNotFound" => ClError::DeviceNotFound,
            "InvalidBufferSize" => {
                let grab = |key: &str| {
                    detail.split_whitespace().find_map(|kv| {
                        kv.strip_prefix(key)
                            .and_then(|v| v.strip_prefix('='))
                            .and_then(|v| v.parse::<u64>().ok())
                    })
                };
                match (grab("requested"), grab("limit")) {
                    (Some(requested), Some(limit)) => {
                        ClError::InvalidBufferSize { requested, limit }
                    }
                    _ => ClError::InvalidValue(msg()),
                }
            }
            "InvalidKernelArgs" => ClError::InvalidKernelArgs(msg()),
            "BuildProgramFailure" => ClError::BuildProgramFailure(msg()),
            "InvalidWorkGroupSize" => ClError::InvalidWorkGroupSize(msg()),
            "MemCopyOverlap" => ClError::MemCopyOverlap,
            "InvalidValue" => ClError::InvalidValue(msg()),
            "InvalidContext" => ClError::InvalidContext,
            "DeviceLost" => ClError::DeviceLost,
            "Timeout" => ClError::Timeout(msg()),
            "TransientBuildFailure" => ClError::TransientBuildFailure(msg()),
            "HostPanic" => ClError::HostPanic(msg()),
            "Cancelled" => ClError::Cancelled,
            _ => ClError::InvalidValue(msg()),
        }
    }
}

impl fmt::Display for ClError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClError::DeviceNotFound => write!(f, "CL_DEVICE_NOT_FOUND"),
            ClError::InvalidBufferSize { requested, limit } => {
                write!(
                    f,
                    "CL_INVALID_BUFFER_SIZE: {requested} bytes (device limit {limit})"
                )
            }
            ClError::InvalidKernelArgs(why) => write!(f, "CL_INVALID_KERNEL_ARGS: {why}"),
            ClError::BuildProgramFailure(log) => {
                write!(f, "CL_BUILD_PROGRAM_FAILURE:\n{log}")
            }
            ClError::InvalidWorkGroupSize(why) => {
                write!(f, "CL_INVALID_WORK_GROUP_SIZE: {why}")
            }
            ClError::MemCopyOverlap => write!(f, "CL_MEM_COPY_OVERLAP"),
            ClError::InvalidValue(why) => write!(f, "CL_INVALID_VALUE: {why}"),
            ClError::InvalidContext => write!(f, "CL_INVALID_CONTEXT"),
            ClError::DeviceLost => write!(f, "CL_DEVICE_NOT_AVAILABLE (device lost)"),
            ClError::Timeout(why) => write!(f, "CL_TIMEOUT: {why}"),
            ClError::TransientBuildFailure(log) => {
                write!(f, "CL_BUILD_PROGRAM_FAILURE (transient):\n{log}")
            }
            ClError::HostPanic(why) => write!(f, "HOST_PANIC: {why}"),
            ClError::Cancelled => write!(f, "CANCELLED"),
        }
    }
}

impl std::error::Error for ClError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_cl_code() {
        let e = ClError::InvalidBufferSize {
            requested: 10,
            limit: 5,
        };
        assert!(e.to_string().contains("CL_INVALID_BUFFER_SIZE"));
        assert!(ClError::DeviceNotFound
            .to_string()
            .contains("CL_DEVICE_NOT_FOUND"));
    }

    #[test]
    fn build_failure_carries_log() {
        let e = ClError::BuildProgramFailure("ALM utilisation 140%".into());
        assert!(e.to_string().contains("140%"));
    }

    #[test]
    fn retry_classification() {
        assert!(ClError::DeviceLost.is_transient());
        assert!(ClError::Timeout("watchdog".into()).is_transient());
        assert!(ClError::TransientBuildFailure("tool crash".into()).is_transient());
        assert_eq!(
            ClError::TransientBuildFailure("x".into()).retry_class(),
            RetryClass::Transient
        );
        for permanent in [
            ClError::DeviceNotFound,
            ClError::BuildProgramFailure("does not fit".into()),
            ClError::InvalidContext,
            ClError::MemCopyOverlap,
            ClError::HostPanic("index out of bounds".into()),
            ClError::Cancelled,
        ] {
            assert!(!permanent.is_transient(), "{permanent}");
            assert_eq!(permanent.retry_class(), RetryClass::Permanent);
        }
    }

    #[test]
    fn code_detail_round_trips_every_variant() {
        let all = [
            ClError::DeviceNotFound,
            ClError::InvalidBufferSize {
                requested: 10,
                limit: 5,
            },
            ClError::InvalidKernelArgs("arg b".into()),
            ClError::BuildProgramFailure("log text".into()),
            ClError::InvalidWorkGroupSize("512 > 256".into()),
            ClError::MemCopyOverlap,
            ClError::InvalidValue("bad".into()),
            ClError::InvalidContext,
            ClError::DeviceLost,
            ClError::Timeout("deadline".into()),
            ClError::TransientBuildFailure("license".into()),
            ClError::HostPanic("boom".into()),
            ClError::Cancelled,
        ];
        for e in all {
            let back = ClError::from_parts(e.code(), &e.detail());
            assert_eq!(back, e);
        }
    }

    #[test]
    fn unknown_code_degrades_to_invalid_value() {
        assert_eq!(
            ClError::from_parts("SomethingNew", "payload"),
            ClError::InvalidValue("payload".into())
        );
    }
}
