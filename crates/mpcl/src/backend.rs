//! The device-backend trait implemented by the target models.

use crate::error::ClError;
use kernelgen::{ExecPlan, KernelConfig};
use memsim::MemStats;

/// Broad device category, as `CL_DEVICE_TYPE` reports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceType {
    /// Host CPU device.
    Cpu,
    /// Discrete GPU.
    Gpu,
    /// FPGA / other accelerator.
    Accelerator,
}

/// Static device description (the subset of `clGetDeviceInfo` MP-STREAM
/// uses, plus the peak bandwidth the paper quotes per target).
#[derive(Debug, Clone)]
pub struct DeviceInfo {
    /// Marketing name, e.g. `"GeForce GTX Titan Black"`.
    pub name: String,
    /// Vendor string, e.g. `"NVIDIA Corporation"`.
    pub vendor: String,
    /// Device category.
    pub device_type: DeviceType,
    /// Global memory capacity in bytes.
    pub global_mem_bytes: u64,
    /// Theoretical peak memory bandwidth, GB/s (the dotted lines in the
    /// paper's Figure 1).
    pub peak_gbps: f64,
    /// Compute units (`CL_DEVICE_MAX_COMPUTE_UNITS`).
    pub max_compute_units: u32,
    /// Maximum work-group size.
    pub max_work_group_size: u32,
}

/// FPGA resource usage of a synthesized kernel (reported in build logs;
/// the paper notes vendor replication options "take up more FPGA
/// resources" than native vectorization).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResourceUsage {
    /// Logic elements (ALMs / LUT-FF pairs).
    pub logic: u64,
    /// Block RAMs.
    pub bram: u64,
    /// DSP blocks.
    pub dsp: u64,
}

impl ResourceUsage {
    /// Component-wise sum.
    pub fn plus(self, other: ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            logic: self.logic + other.logic,
            bram: self.bram + other.bram,
            dsp: self.dsp + other.dsp,
        }
    }

    /// Largest utilisation fraction against a capacity.
    pub fn utilisation(self, capacity: ResourceUsage) -> f64 {
        let frac = |x: u64, cap: u64| if cap == 0 { 0.0 } else { x as f64 / cap as f64 };
        frac(self.logic, capacity.logic)
            .max(frac(self.bram, capacity.bram))
            .max(frac(self.dsp, capacity.dsp))
    }
}

/// What "building a program" produced — for FPGAs, the synthesis report.
#[derive(Debug, Clone)]
pub struct BuildArtifact {
    /// Human-readable build log.
    pub build_log: String,
    /// Achieved kernel clock after synthesis (FPGAs) — `None` for
    /// fixed-clock devices.
    pub fmax_mhz: Option<f64>,
    /// Resource usage (FPGAs only).
    pub resources: Option<ResourceUsage>,
    /// How many consecutive iterations the compiled kernel executes in
    /// lock-step (warp width, SIMD/unroll replication); feeds the
    /// access-stream generator.
    pub lane_group: u32,
    /// Simulated compile/synthesis time, nanoseconds. A property of the
    /// *configuration* (identical whether the artifact came from a fresh
    /// build or the cache), which is what keeps trace timelines stable
    /// across worker counts.
    pub synthesis_ns: f64,
}

impl BuildArtifact {
    /// Artifact for devices that "just compile" (CPU/GPU).
    pub fn simple(lane_group: u32) -> Self {
        BuildArtifact {
            build_log: String::new(),
            fmax_mhz: None,
            resources: None,
            lane_group,
            synthesis_ns: 0.0,
        }
    }
}

/// What one kernel launch cost on the device.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelCost {
    /// Device execution time, nanoseconds (excluding host launch
    /// overhead, which is reported separately).
    pub ns: f64,
    /// Bytes actually moved on the device DRAM bus — includes waste
    /// (partial segments, fills, writebacks), so it can exceed the
    /// STREAM-counted payload. Feeds the energy model.
    pub dram_bytes: u64,
    /// Memory-system counters the device model collected while timing
    /// the launch (row-buffer behaviour, cache hits, TLB walks, ...).
    pub stats: MemStats,
    /// Time one side of a producer→consumer channel spent blocked on
    /// the FIFO (full writes or empty reads), nanoseconds. Zero for
    /// single-stage kernels; included in `ns`.
    pub stall_ns: f64,
}

/// Board-level power parameters (see `targets::power` for the paper
/// devices' constants): `P = idle + active` while a kernel runs, plus a
/// per-byte DRAM access energy.
#[derive(Debug, Clone, Copy)]
pub struct PowerModel {
    /// Board idle power, watts.
    pub idle_w: f64,
    /// Additional fabric/core power while a kernel executes, watts.
    pub active_w: f64,
    /// DRAM access energy, picojoules per byte moved on the bus.
    pub pj_per_byte: f64,
}

impl PowerModel {
    /// Energy for a kernel that ran `ns` nanoseconds and moved
    /// `dram_bytes` on the memory bus, joules.
    pub fn energy_j(&self, ns: f64, dram_bytes: u64) -> f64 {
        (self.idle_w + self.active_w) * ns * 1e-9 + dram_bytes as f64 * self.pj_per_byte * 1e-12
    }

    /// Efficiency metric: payload gigabytes moved per joule.
    pub fn gb_per_joule(&self, payload_bytes: u64, ns: f64, dram_bytes: u64) -> f64 {
        payload_bytes as f64 / 1e9 / self.energy_j(ns, dram_bytes)
    }
}

/// A device timing/synthesis model.
///
/// Implementations live in the `targets` crate; `mpcl` drives them:
/// `build` is called by [`crate::program::Program::build`] (and may fail —
/// FPGA synthesis over capacity), `kernel_cost` by kernel launches, and
/// `transfer_ns` by buffer reads/writes.
pub trait DeviceBackend: Send {
    /// Static device description.
    fn info(&self) -> DeviceInfo;

    /// Compile/synthesize a kernel configuration for this device.
    fn build(&mut self, cfg: &KernelConfig) -> Result<BuildArtifact, ClError>;

    /// Time and DRAM traffic of one launch of `plan` on this device,
    /// *excluding* host-side launch overhead (reported separately so the
    /// queue can expose OpenCL-style queued/submit/start/end stamps).
    fn kernel_cost(&mut self, artifact: &BuildArtifact, plan: &ExecPlan) -> KernelCost;

    /// Host→device or device→host transfer time for `bytes`.
    fn transfer_ns(&mut self, bytes: u64) -> f64;

    /// Fixed host-side cost of dispatching one kernel (control transfer
    /// over PCIe, driver work). Dominates small-array bandwidth.
    fn launch_overhead_ns(&self) -> f64;

    /// Board power model, when the target provides one.
    fn power_model(&self) -> Option<PowerModel> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_sum_and_utilisation() {
        let a = ResourceUsage {
            logic: 100,
            bram: 10,
            dsp: 2,
        };
        let b = ResourceUsage {
            logic: 50,
            bram: 0,
            dsp: 0,
        };
        let s = a.plus(b);
        assert_eq!(s.logic, 150);
        let cap = ResourceUsage {
            logic: 300,
            bram: 20,
            dsp: 100,
        };
        assert!((s.utilisation(cap) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilisation_picks_binding_resource() {
        let u = ResourceUsage {
            logic: 10,
            bram: 19,
            dsp: 0,
        };
        let cap = ResourceUsage {
            logic: 100,
            bram: 20,
            dsp: 10,
        };
        assert!((u.utilisation(cap) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_resource_ignored() {
        let u = ResourceUsage {
            logic: 10,
            bram: 0,
            dsp: 0,
        };
        let cap = ResourceUsage {
            logic: 100,
            bram: 0,
            dsp: 0,
        };
        assert!((u.utilisation(cap) - 0.1).abs() < 1e-12);
    }
}
