//! In-order command queues with a simulated nanosecond timeline.
//!
//! Every enqueue advances the queue's clock by what the device model says
//! the command costs, and returns an [`Event`] carrying OpenCL-style
//! profiling timestamps. `MP-STREAM` computes bandwidth from
//! `CL_PROFILING_COMMAND_START`/`END` of the kernel event, and so does
//! the benchmark runner here.

use crate::context::{Buffer, Context};
use crate::error::ClError;
use crate::program::Kernel;
use std::sync::Arc;
use std::sync::Mutex;

/// Fixed driver-side cost of moving a command from "queued" to
/// "submitted" (host driver work, not device-visible).
const SUBMIT_NS: f64 = 300.0;

/// Profiling timestamps of one command, in simulated nanoseconds since
/// queue creation (OpenCL's queued/submit/start/end).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// `CL_PROFILING_COMMAND_QUEUED`.
    pub queued_ns: f64,
    /// `CL_PROFILING_COMMAND_SUBMIT`.
    pub submit_ns: f64,
    /// `CL_PROFILING_COMMAND_START`.
    pub start_ns: f64,
    /// `CL_PROFILING_COMMAND_END`.
    pub end_ns: f64,
    /// Device DRAM traffic attributed to this command, bytes (kernel
    /// launches report the model's bus traffic including waste; buffer
    /// transfers report their payload).
    pub dram_bytes: u64,
    /// DRAM transactions that hit an open row (kernel launches only).
    pub row_hits: u64,
    /// DRAM transactions that closed + opened a row (kernel launches
    /// only).
    pub row_misses: u64,
    /// DRAM transactions that found the bank idle (kernel launches
    /// only).
    pub row_empty: u64,
    /// Channel/pipe stall time within this command, ns (two-stage
    /// kernel launches only; included in the START..END interval).
    pub stall_ns: f64,
}

impl Event {
    /// Device execution time (`END - START`), ns.
    pub fn duration_ns(&self) -> f64 {
        self.end_ns - self.start_ns
    }

    /// Wall time including queueing and launch overhead
    /// (`END - QUEUED`) — what a host-side timer around the enqueue+wait
    /// would see; this is the time MP-STREAM divides bytes by.
    pub fn wall_ns(&self) -> f64 {
        self.end_ns - self.queued_ns
    }
}

/// What kind of command a log record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdKind {
    /// `clEnqueueWriteBuffer`.
    Write,
    /// `clEnqueueReadBuffer`.
    Read,
    /// `clEnqueueNDRangeKernel`.
    Kernel,
    /// `clEnqueueCopyBuffer`.
    Copy,
    /// `clEnqueueFillBuffer`.
    Fill,
}

impl CmdKind {
    /// Stable lower-case name, used as the trace span name.
    pub fn name(self) -> &'static str {
        match self {
            CmdKind::Write => "write",
            CmdKind::Read => "read",
            CmdKind::Kernel => "kernel",
            CmdKind::Copy => "copy",
            CmdKind::Fill => "fill",
        }
    }
}

/// One entry of the queue's command log: everything the queue clock saw,
/// including commands whose `Event` was never returned to the caller
/// because a fault fired after the device had already spent the time
/// (`aborted`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmdRecord {
    /// Command kind.
    pub kind: CmdKind,
    /// Profiling timestamps.
    pub event: Event,
    /// The command consumed device time but failed to complete from the
    /// host's point of view (fault-injected timeout).
    pub aborted: bool,
}

/// An in-order command queue on one context.
#[derive(Clone)]
pub struct CommandQueue {
    ctx: Context,
    now_ns: Arc<Mutex<f64>>,
    log: Arc<Mutex<Vec<CmdRecord>>>,
    functional: bool,
}

impl CommandQueue {
    /// Create a profiling-enabled queue.
    pub fn new(ctx: &Context) -> Self {
        CommandQueue {
            ctx: ctx.clone(),
            now_ns: Arc::new(Mutex::new(0.0)),
            log: Arc::new(Mutex::new(Vec::new())),
            functional: true,
        }
    }

    /// Create a queue that skips functional execution (timing-only runs
    /// for very large arrays; results cannot be validated).
    pub fn new_timing_only(ctx: &Context) -> Self {
        CommandQueue {
            ctx: ctx.clone(),
            now_ns: Arc::new(Mutex::new(0.0)),
            log: Arc::new(Mutex::new(Vec::new())),
            functional: false,
        }
    }

    /// Drain the command log: every command the queue executed so far,
    /// in order, including aborted ones. The log is cleared.
    pub fn take_log(&self) -> Vec<CmdRecord> {
        std::mem::take(&mut *self.log.lock().expect("mpcl mutex poisoned"))
    }

    /// Snapshot the command log without clearing it.
    pub fn log_snapshot(&self) -> Vec<CmdRecord> {
        self.log.lock().expect("mpcl mutex poisoned").clone()
    }

    /// Does this queue execute kernels functionally?
    pub fn is_functional(&self) -> bool {
        self.functional
    }

    /// Current simulated time, ns (everything enqueued has completed —
    /// the queue is in-order and synchronous, i.e. `clFinish` semantics).
    pub fn now_ns(&self) -> f64 {
        *self.now_ns.lock().expect("mpcl mutex poisoned")
    }

    /// The queue's context.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    fn check_same_ctx(&self, buf: &Buffer) -> Result<(), ClError> {
        if buf.context().id() != self.ctx.id() {
            Err(ClError::InvalidContext)
        } else {
            Ok(())
        }
    }

    /// Host→device transfer (`clEnqueueWriteBuffer`): `data` must match
    /// the buffer's size.
    pub fn enqueue_write(&self, buf: &Buffer, data: &[u8]) -> Result<Event, ClError> {
        self.check_same_ctx(buf)?;
        if data.len() as u64 != buf.len() {
            return Err(ClError::InvalidValue(format!(
                "host data {} bytes, buffer {} bytes",
                data.len(),
                buf.len()
            )));
        }
        let ns = self.ctx.device().with_backend(|b| b.transfer_ns(buf.len()));
        if self.functional {
            self.ctx.write_bytes(buf.device_addr(), data);
        }
        Ok(self.advance(CmdKind::Write, 0.0, ns, buf.len()))
    }

    /// Device→host transfer (`clEnqueueReadBuffer`).
    pub fn enqueue_read(&self, buf: &Buffer, out: &mut [u8]) -> Result<Event, ClError> {
        self.check_same_ctx(buf)?;
        if out.len() as u64 != buf.len() {
            return Err(ClError::InvalidValue(format!(
                "host sink {} bytes, buffer {} bytes",
                out.len(),
                buf.len()
            )));
        }
        let ns = self.ctx.device().with_backend(|b| b.transfer_ns(buf.len()));
        if self.functional {
            self.ctx.read_bytes(buf.device_addr(), out);
        }
        Ok(self.advance(CmdKind::Read, 0.0, ns, buf.len()))
    }

    /// Kernel launch (`clEnqueueNDRangeKernel`): times the kernel on the
    /// device model and (unless timing-only) executes it functionally.
    pub fn enqueue_kernel(&self, kernel: &Kernel) -> Result<Event, ClError> {
        if kernel.program().context().id() != self.ctx.id() {
            return Err(ClError::InvalidContext);
        }
        let plan = kernel.plan();
        // Fault plan: the launch may be lost or time out.
        let fault_key = self.ctx.fault_plan().map(|fp| {
            (
                Arc::clone(fp),
                format!("{}:{:?}", self.ctx.device().info().name, plan.cfg),
            )
        });
        let injected = fault_key
            .as_ref()
            .and_then(|(plan_fp, key)| plan_fp.inject_enqueue_fault(key));
        if let Some(e @ ClError::DeviceLost) = injected {
            // The device vanished before running anything: no profiling
            // timestamps exist for this command.
            return Err(e);
        }
        let (launch, cost) = self.ctx.device().with_backend(|b| {
            (
                b.launch_overhead_ns(),
                b.kernel_cost(kernel.program().artifact(), plan),
            )
        });
        let rows = [
            cost.stats.row_hits,
            cost.stats.row_misses,
            cost.stats.row_empty,
        ];
        if let Some(e) = injected {
            // Timeout: the device spent the full launch+kernel time but
            // the host gave up waiting. Keep the partial profiling record
            // in the command log (flagged `aborted`) instead of dropping
            // the timestamps on the floor.
            self.advance_full(
                CmdKind::Kernel,
                launch,
                cost.ns,
                cost.dram_bytes,
                rows,
                cost.stall_ns,
                true,
            );
            return Err(e);
        }
        if self.functional {
            let base_c = plan.cfg.op.uses_c().then_some(plan.base_c);
            self.ctx
                .with_kernel_memory(plan.base_a, plan.base_b, base_c, |a, b, c| {
                    kernelgen::execute(&plan.cfg, a, b, c);
                });
            // Silent data corruption: flip one bit in the destination
            // after the launch, for STREAM verification to catch.
            // Timing-only queues have no data to corrupt.
            if let Some((plan_fp, key)) = &fault_key {
                if let Some(off) = plan_fp.inject_bit_flip(key, plan.cfg.array_bytes()) {
                    self.ctx.flip_bit(plan.base_a, off);
                }
            }
        }
        Ok(self.advance_full(
            CmdKind::Kernel,
            launch,
            cost.ns,
            cost.dram_bytes,
            rows,
            cost.stall_ns,
            false,
        ))
    }

    /// Device-to-device copy (`clEnqueueCopyBuffer`): both buffers live
    /// in device DRAM, so the copy moves `2 * len` bytes on the memory
    /// bus at roughly half the device's peak bandwidth — no PCIe
    /// involved. Sizes must match and the buffers must not overlap.
    pub fn enqueue_copy(&self, src: &Buffer, dst: &Buffer) -> Result<Event, ClError> {
        self.check_same_ctx(src)?;
        self.check_same_ctx(dst)?;
        if src.len() != dst.len() {
            return Err(ClError::InvalidValue(format!(
                "copy size mismatch: src {} bytes, dst {} bytes",
                src.len(),
                dst.len()
            )));
        }
        let (s0, s1) = (src.device_addr(), src.device_addr() + src.len());
        let (d0, d1) = (dst.device_addr(), dst.device_addr() + dst.len());
        if s0 < d1 && d0 < s1 {
            return Err(ClError::MemCopyOverlap);
        }
        // Read + write on the device bus: peak/2 effective.
        let peak = self.ctx.device().info().peak_gbps;
        let ns = 2.0 * src.len() as f64 / peak;
        if self.functional {
            let mut tmp = vec![0u8; src.len() as usize];
            self.ctx.read_bytes(src.device_addr(), &mut tmp);
            self.ctx.write_bytes(dst.device_addr(), &tmp);
        }
        Ok(self.advance(CmdKind::Copy, 0.0, ns, 2 * src.len()))
    }

    /// Fill a buffer with a repeating pattern (`clEnqueueFillBuffer`):
    /// write-only traffic at the device's peak bandwidth. The pattern
    /// length must divide the buffer length.
    pub fn enqueue_fill(&self, buf: &Buffer, pattern: &[u8]) -> Result<Event, ClError> {
        self.check_same_ctx(buf)?;
        if pattern.is_empty() || !buf.len().is_multiple_of(pattern.len() as u64) {
            return Err(ClError::InvalidValue(format!(
                "pattern of {} bytes does not divide buffer of {} bytes",
                pattern.len(),
                buf.len()
            )));
        }
        let peak = self.ctx.device().info().peak_gbps;
        let ns = buf.len() as f64 / peak;
        if self.functional {
            let mut data = vec![0u8; buf.len() as usize];
            for chunk in data.chunks_mut(pattern.len()) {
                chunk.copy_from_slice(pattern);
            }
            self.ctx.write_bytes(buf.device_addr(), &data);
        }
        Ok(self.advance(CmdKind::Fill, 0.0, ns, buf.len()))
    }

    /// Block until all enqueued commands complete (`clFinish`). The
    /// simulated queue is synchronous, so this just reports the time.
    pub fn finish(&self) -> f64 {
        self.now_ns()
    }

    fn advance(&self, kind: CmdKind, launch_ns: f64, duration_ns: f64, dram_bytes: u64) -> Event {
        self.advance_full(kind, launch_ns, duration_ns, dram_bytes, [0; 3], 0.0, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn advance_full(
        &self,
        kind: CmdKind,
        launch_ns: f64,
        duration_ns: f64,
        dram_bytes: u64,
        rows: [u64; 3],
        stall_ns: f64,
        aborted: bool,
    ) -> Event {
        let mut now = self.now_ns.lock().expect("mpcl mutex poisoned");
        let queued = *now;
        let submit = queued + SUBMIT_NS;
        let start = submit + launch_ns;
        let end = start + duration_ns;
        *now = end;
        let event = Event {
            queued_ns: queued,
            submit_ns: submit,
            start_ns: start,
            end_ns: end,
            dram_bytes,
            row_hits: rows[0],
            row_misses: rows[1],
            row_empty: rows[2],
            stall_ns,
        };
        self.log
            .lock()
            .expect("mpcl mutex poisoned")
            .push(CmdRecord {
                kind,
                event,
                aborted,
            });
        event
    }
}

impl std::fmt::Debug for CommandQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommandQueue")
            .field("device", &self.ctx.device().info().name)
            .field("now_ns", &self.now_ns())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::MemFlags;
    use crate::platform::test_support::fake_device;
    use crate::program::Program;
    use kernelgen::{KernelConfig, StreamOp};

    fn setup() -> (Context, CommandQueue) {
        let ctx = Context::new(fake_device());
        let q = CommandQueue::new(&ctx);
        (ctx, q)
    }

    #[test]
    fn write_read_round_trip_with_timing() {
        let (ctx, q) = setup();
        let buf = Buffer::new(&ctx, MemFlags::ReadWrite, 4).unwrap();
        let ev = q.enqueue_write(&buf, &[1, 2, 3, 4]).unwrap();
        assert!(ev.end_ns > ev.queued_ns);
        let mut out = [0u8; 4];
        let ev2 = q.enqueue_read(&buf, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4]);
        assert!(ev2.queued_ns >= ev.end_ns, "in-order queue");
    }

    #[test]
    fn size_mismatch_rejected() {
        let (ctx, q) = setup();
        let buf = Buffer::new(&ctx, MemFlags::ReadWrite, 4).unwrap();
        assert!(matches!(
            q.enqueue_write(&buf, &[1, 2]),
            Err(ClError::InvalidValue(_))
        ));
        let mut out = [0u8; 8];
        assert!(matches!(
            q.enqueue_read(&buf, &mut out),
            Err(ClError::InvalidValue(_))
        ));
    }

    #[test]
    fn kernel_executes_functionally_and_advances_clock() {
        let (ctx, q) = setup();
        let n = 1024u64;
        let cfg = KernelConfig::baseline(StreamOp::Scale, n);
        let p = Program::build(&ctx, cfg).unwrap();
        let a = Buffer::new(&ctx, MemFlags::WriteOnly, n * 4).unwrap();
        let b = Buffer::new(&ctx, MemFlags::ReadOnly, n * 4).unwrap();

        let host_b: Vec<u8> = (0..n).flat_map(|i| (i as i32).to_ne_bytes()).collect();
        q.enqueue_write(&b, &host_b).unwrap();

        let k = Kernel::new(&p, &a, &b, None).unwrap();
        let ev = q.enqueue_kernel(&k).unwrap();
        // Fake backend: 1 byte per ns over bytes_moved = 2 * 4096.
        assert!((ev.duration_ns() - 8192.0).abs() < 1e-9);
        // Launch overhead = 1000 ns in the fake backend.
        assert!((ev.start_ns - ev.submit_ns - 1000.0).abs() < 1e-9);

        let mut out = vec![0u8; (n * 4) as usize];
        q.enqueue_read(&a, &mut out).unwrap();
        let third = i32::from_ne_bytes(out[12..16].try_into().unwrap());
        assert_eq!(third, 9, "a[3] = 3 * b[3]");
    }

    #[test]
    fn timing_only_queue_skips_execution() {
        let ctx = Context::new(fake_device());
        let q = CommandQueue::new_timing_only(&ctx);
        let cfg = KernelConfig::baseline(StreamOp::Copy, 256);
        let p = Program::build(&ctx, cfg).unwrap();
        let a = Buffer::new(&ctx, MemFlags::WriteOnly, 1024).unwrap();
        let b = Buffer::new(&ctx, MemFlags::ReadOnly, 1024).unwrap();
        let k = Kernel::new(&p, &a, &b, None).unwrap();
        let ev = q.enqueue_kernel(&k).unwrap();
        assert!(ev.duration_ns() > 0.0);
        // Nothing was materialized: buffers read back as zeroes via a
        // functional queue on the same context.
        let q2 = CommandQueue::new(&ctx);
        let mut out = vec![0xFFu8; 1024];
        q2.enqueue_read(&a, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn events_are_monotone() {
        let (ctx, q) = setup();
        let buf = Buffer::new(&ctx, MemFlags::ReadWrite, 16).unwrap();
        let mut last_end = 0.0;
        for _ in 0..5 {
            let ev = q.enqueue_write(&buf, &[0u8; 16]).unwrap();
            assert!(ev.queued_ns >= last_end);
            assert!(ev.queued_ns <= ev.submit_ns);
            assert!(ev.submit_ns <= ev.start_ns);
            assert!(ev.start_ns <= ev.end_ns);
            last_end = ev.end_ns;
        }
        assert_eq!(q.finish(), last_end);
    }

    #[test]
    fn cross_context_objects_rejected() {
        let (ctx1, q1) = setup();
        let ctx2 = Context::new(fake_device());
        let buf2 = Buffer::new(&ctx2, MemFlags::ReadWrite, 4).unwrap();
        assert_eq!(
            q1.enqueue_write(&buf2, &[0u8; 4]).unwrap_err(),
            ClError::InvalidContext
        );
        let cfg = KernelConfig::baseline(StreamOp::Copy, 256);
        let p2 = Program::build(&ctx2, cfg).unwrap();
        let a2 = Buffer::new(&ctx2, MemFlags::WriteOnly, 1024).unwrap();
        let b2 = Buffer::new(&ctx2, MemFlags::ReadOnly, 1024).unwrap();
        let k2 = Kernel::new(&p2, &a2, &b2, None).unwrap();
        assert_eq!(q1.enqueue_kernel(&k2).unwrap_err(), ClError::InvalidContext);
        let _ = ctx1;
    }

    #[test]
    fn copy_buffer_moves_data_and_time() {
        let (ctx, q) = setup();
        let src = Buffer::new(&ctx, MemFlags::ReadOnly, 8).unwrap();
        let dst = Buffer::new(&ctx, MemFlags::WriteOnly, 8).unwrap();
        q.enqueue_write(&src, &[9, 8, 7, 6, 5, 4, 3, 2]).unwrap();
        let ev = q.enqueue_copy(&src, &dst).unwrap();
        assert!(ev.duration_ns() > 0.0);
        assert_eq!(ev.dram_bytes, 16, "read + write traffic");
        let mut out = [0u8; 8];
        q.enqueue_read(&dst, &mut out).unwrap();
        assert_eq!(out, [9, 8, 7, 6, 5, 4, 3, 2]);
    }

    #[test]
    fn copy_buffer_rejects_mismatch_and_self_copy() {
        let (ctx, q) = setup();
        let a = Buffer::new(&ctx, MemFlags::ReadWrite, 8).unwrap();
        let b = Buffer::new(&ctx, MemFlags::ReadWrite, 16).unwrap();
        assert!(matches!(
            q.enqueue_copy(&a, &b),
            Err(ClError::InvalidValue(_))
        ));
        assert_eq!(q.enqueue_copy(&a, &a).unwrap_err(), ClError::MemCopyOverlap);
    }

    #[test]
    fn fill_buffer_repeats_pattern() {
        let (ctx, q) = setup();
        let buf = Buffer::new(&ctx, MemFlags::ReadWrite, 8).unwrap();
        q.enqueue_fill(&buf, &[0xAB, 0xCD]).unwrap();
        let mut out = [0u8; 8];
        q.enqueue_read(&buf, &mut out).unwrap();
        assert_eq!(out, [0xAB, 0xCD, 0xAB, 0xCD, 0xAB, 0xCD, 0xAB, 0xCD]);
        // Pattern that does not divide the buffer is rejected.
        assert!(matches!(
            q.enqueue_fill(&buf, &[1, 2, 3]),
            Err(ClError::InvalidValue(_))
        ));
        assert!(matches!(
            q.enqueue_fill(&buf, &[]),
            Err(ClError::InvalidValue(_))
        ));
    }

    #[test]
    fn command_log_records_every_command_in_order() {
        let (ctx, q) = setup();
        let n = 256u64;
        let cfg = KernelConfig::baseline(StreamOp::Copy, n);
        let p = Program::build(&ctx, cfg).unwrap();
        let a = Buffer::new(&ctx, MemFlags::WriteOnly, n * 4).unwrap();
        let b = Buffer::new(&ctx, MemFlags::ReadOnly, n * 4).unwrap();
        q.enqueue_write(&b, &vec![0u8; (n * 4) as usize]).unwrap();
        let k = Kernel::new(&p, &a, &b, None).unwrap();
        q.enqueue_kernel(&k).unwrap();
        let mut out = vec![0u8; (n * 4) as usize];
        q.enqueue_read(&a, &mut out).unwrap();

        let log = q.log_snapshot();
        let kinds: Vec<CmdKind> = log.iter().map(|r| r.kind).collect();
        assert_eq!(kinds, [CmdKind::Write, CmdKind::Kernel, CmdKind::Read]);
        assert!(log.iter().all(|r| !r.aborted));
        // take_log drains.
        assert_eq!(q.take_log().len(), 3);
        assert!(q.log_snapshot().is_empty());
    }

    #[test]
    fn injected_timeout_logs_aborted_record_with_timestamps() {
        // Regression: the profiling timestamps of a timed-out launch used
        // to be computed and then dropped; they must survive in the log
        // with the `aborted` flag so traces can show the lost time.
        use crate::fault::{FaultPlan, FaultSpec};
        let plan = Arc::new(FaultPlan::new(FaultSpec::parse("timeout=0.95").unwrap(), 7));
        let ctx = Context::with_faults(fake_device(), Some(plan));
        let q = CommandQueue::new(&ctx);
        let cfg = KernelConfig::baseline(StreamOp::Copy, 256);
        let p = Program::build(&ctx, cfg).unwrap();
        let a = Buffer::new(&ctx, MemFlags::WriteOnly, 1024).unwrap();
        let b = Buffer::new(&ctx, MemFlags::ReadOnly, 1024).unwrap();
        let k = Kernel::new(&p, &a, &b, None).unwrap();

        // At 95% per attempt one of the first launches times out.
        let timed_out = (0..20).any(|_| matches!(q.enqueue_kernel(&k), Err(ClError::Timeout(_))));
        assert!(timed_out, "no timeout in 20 draws at p=0.95");
        let log = q.take_log();
        let rec = log
            .iter()
            .find(|r| r.aborted)
            .expect("timed-out launch must be logged with the aborted flag");
        assert_eq!(rec.kind, CmdKind::Kernel);
        // The device spent real (simulated) time before the host gave up.
        assert!(rec.event.duration_ns() > 0.0);
        assert!(rec.event.start_ns > rec.event.submit_ns);
        // The in-order queue clock moved past every aborted command.
        assert_eq!(q.now_ns(), log.last().unwrap().event.end_ns);
    }

    #[test]
    fn injected_device_loss_leaves_no_record() {
        use crate::fault::{FaultPlan, FaultSpec};
        let plan = Arc::new(FaultPlan::new(FaultSpec::parse("lost=0.95").unwrap(), 7));
        let ctx = Context::with_faults(fake_device(), Some(plan));
        let q = CommandQueue::new(&ctx);
        let cfg = KernelConfig::baseline(StreamOp::Copy, 256);
        let p = Program::build(&ctx, cfg).unwrap();
        let a = Buffer::new(&ctx, MemFlags::WriteOnly, 1024).unwrap();
        let b = Buffer::new(&ctx, MemFlags::ReadOnly, 1024).unwrap();
        let k = Kernel::new(&p, &a, &b, None).unwrap();
        let lost = (0..20).any(|_| matches!(q.enqueue_kernel(&k), Err(ClError::DeviceLost)));
        assert!(lost, "no device loss in 20 draws at p=0.95");
        // Lost launches never reach the device: only completed launches
        // (if any) appear in the log, none flagged aborted.
        assert!(q.take_log().iter().all(|r| !r.aborted));
    }

    #[test]
    fn wall_time_includes_overheads() {
        let (ctx, q) = setup();
        let cfg = KernelConfig::baseline(StreamOp::Copy, 256);
        let p = Program::build(&ctx, cfg).unwrap();
        let a = Buffer::new(&ctx, MemFlags::WriteOnly, 1024).unwrap();
        let b = Buffer::new(&ctx, MemFlags::ReadOnly, 1024).unwrap();
        let k = Kernel::new(&p, &a, &b, None).unwrap();
        let ev = q.enqueue_kernel(&k).unwrap();
        assert!(ev.wall_ns() > ev.duration_ns());
        assert!((ev.wall_ns() - (300.0 + 1000.0 + ev.duration_ns())).abs() < 1e-9);
    }
}
