//! Platform and device enumeration.

use crate::backend::{DeviceBackend, DeviceInfo, DeviceType};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

static NEXT_DEVICE_ID: AtomicU64 = AtomicU64::new(1);

/// A handle to a simulated device. Cheap to clone; all clones share the
/// same backend state (as OpenCL device handles do).
#[derive(Clone)]
pub struct Device {
    backend: Arc<Mutex<Box<dyn DeviceBackend>>>,
    info: DeviceInfo,
    id: u64,
}

impl Device {
    /// Wrap a backend model as a device.
    pub fn new(backend: Box<dyn DeviceBackend>) -> Self {
        let info = backend.info();
        Device {
            backend: Arc::new(Mutex::new(backend)),
            info,
            id: NEXT_DEVICE_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Static device description (cached at wrap time).
    pub fn info(&self) -> &DeviceInfo {
        &self.info
    }

    /// Stable identity (used to reject cross-context mixing).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Run `f` with exclusive access to the backend model.
    pub(crate) fn with_backend<R>(&self, f: impl FnOnce(&mut dyn DeviceBackend) -> R) -> R {
        let mut guard = self.backend.lock().expect("mpcl mutex poisoned");
        f(guard.as_mut())
    }

    /// The device's board power model, if the backend provides one.
    pub fn power_model(&self) -> Option<crate::backend::PowerModel> {
        self.backend
            .lock()
            .expect("mpcl mutex poisoned")
            .power_model()
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("name", &self.info.name)
            .field("id", &self.id)
            .finish()
    }
}

/// An OpenCL platform: a vendor runtime exposing devices.
#[derive(Debug)]
pub struct Platform {
    name: String,
    vendor: String,
    version: String,
    devices: Vec<Device>,
}

impl Platform {
    /// Assemble a platform from devices.
    pub fn new(
        name: impl Into<String>,
        vendor: impl Into<String>,
        version: impl Into<String>,
        devices: Vec<Device>,
    ) -> Self {
        Platform {
            name: name.into(),
            vendor: vendor.into(),
            version: version.into(),
            devices,
        }
    }

    /// Platform name (e.g. `"Intel(R) OpenCL"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Vendor string.
    pub fn vendor(&self) -> &str {
        &self.vendor
    }

    /// OpenCL version string.
    pub fn version(&self) -> &str {
        &self.version
    }

    /// Devices exposed by this platform.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// First device of the given type, if any.
    pub fn device_by_type(&self, ty: DeviceType) -> Option<&Device> {
        self.devices.iter().find(|d| d.info().device_type == ty)
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::backend::{BuildArtifact, KernelCost};
    use crate::error::ClError;
    use kernelgen::{ExecPlan, KernelConfig};

    /// A trivial backend for runtime tests: fixed 1 GB/s kernel rate,
    /// 1 µs launch overhead, 10 GB/s link.
    pub struct FakeBackend {
        pub fail_build: bool,
    }

    impl DeviceBackend for FakeBackend {
        fn info(&self) -> DeviceInfo {
            DeviceInfo {
                name: "Fake Device".into(),
                vendor: "MP-STREAM tests".into(),
                device_type: DeviceType::Accelerator,
                global_mem_bytes: 1 << 30,
                peak_gbps: 1.0,
                max_compute_units: 1,
                max_work_group_size: 256,
            }
        }

        fn build(&mut self, _cfg: &KernelConfig) -> Result<BuildArtifact, ClError> {
            if self.fail_build {
                Err(ClError::BuildProgramFailure("synthetic failure".into()))
            } else {
                Ok(BuildArtifact {
                    synthesis_ns: 2_500.0,
                    ..BuildArtifact::simple(1)
                })
            }
        }

        fn kernel_cost(&mut self, _artifact: &BuildArtifact, plan: &ExecPlan) -> KernelCost {
            // 1 byte/ns = 1 GB/s; traffic equals payload exactly.
            KernelCost {
                ns: plan.cfg.bytes_moved() as f64,
                dram_bytes: plan.cfg.bytes_moved(),
                stats: memsim::MemStats {
                    dram_bytes: plan.cfg.bytes_moved(),
                    row_hits: 3,
                    row_misses: 1,
                    ..Default::default()
                },
                stall_ns: 0.0,
            }
        }

        fn transfer_ns(&mut self, bytes: u64) -> f64 {
            bytes as f64 / 10.0
        }

        fn launch_overhead_ns(&self) -> f64 {
            1000.0
        }
    }

    /// A fake device handle.
    pub fn fake_device() -> Device {
        Device::new(Box::new(FakeBackend { fail_build: false }))
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;

    #[test]
    fn device_info_cached() {
        let d = fake_device();
        assert_eq!(d.info().name, "Fake Device");
        assert_eq!(d.info().max_work_group_size, 256);
    }

    #[test]
    fn device_ids_unique() {
        assert_ne!(fake_device().id(), fake_device().id());
    }

    #[test]
    fn clones_share_identity() {
        let d = fake_device();
        assert_eq!(d.id(), d.clone().id());
    }

    #[test]
    fn platform_lookup_by_type() {
        let p = Platform::new("Fake", "Tests", "OpenCL 1.2", vec![fake_device()]);
        assert!(p.device_by_type(DeviceType::Accelerator).is_some());
        assert!(p.device_by_type(DeviceType::Gpu).is_none());
        assert_eq!(p.devices().len(), 1);
        assert_eq!(p.name(), "Fake");
    }
}
