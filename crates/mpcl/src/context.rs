//! Contexts and device memory objects.
//!
//! A [`Context`] owns a flat simulated device address space. [`Buffer`]s
//! are allocated out of it with a bump allocator (aligned generously, as
//! real runtimes do) and are *really backed by host memory* — lazily, on
//! first functional touch — so kernel launches can compute real results
//! for STREAM-style validation without timing-only runs paying for
//! gigabytes of zeroed pages.

use crate::error::ClError;
use crate::fault::FaultPlan;
use crate::platform::Device;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

static NEXT_CTX_ID: AtomicU64 = AtomicU64::new(1);

/// Buffer allocation alignment (a page, as GPU/FPGA allocators use).
pub const BUFFER_ALIGN: u64 = 4096;

/// OpenCL-style memory flags (access intent; the simulator does not
/// enforce read-only from kernels, matching how most runtimes behave).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFlags {
    /// `CL_MEM_READ_ONLY` — kernel reads only.
    ReadOnly,
    /// `CL_MEM_WRITE_ONLY` — kernel writes only.
    WriteOnly,
    /// `CL_MEM_READ_WRITE`.
    ReadWrite,
}

#[derive(Debug, Default)]
struct Alloc {
    len: u64,
    /// Backing bytes; `None` until first functional access.
    data: Option<Vec<u8>>,
}

#[derive(Debug, Default)]
struct MemSpace {
    next: u64,
    used: u64,
    allocs: HashMap<u64, Alloc>,
}

struct CtxInner {
    device: Device,
    mem: Mutex<MemSpace>,
    id: u64,
    faults: Option<Arc<FaultPlan>>,
}

/// An OpenCL-style context for one device.
#[derive(Clone)]
pub struct Context {
    inner: Arc<CtxInner>,
}

impl Context {
    /// Create a context on `device`.
    pub fn new(device: Device) -> Self {
        Context::with_faults(device, None)
    }

    /// Create a context on `device` with an optional fault-injection
    /// plan; builds and enqueues through this context consult the plan.
    pub fn with_faults(device: Device, faults: Option<Arc<FaultPlan>>) -> Self {
        Context {
            inner: Arc::new(CtxInner {
                device,
                mem: Mutex::new(MemSpace {
                    next: BUFFER_ALIGN,
                    ..Default::default()
                }),
                id: NEXT_CTX_ID.fetch_add(1, Ordering::Relaxed),
                faults,
            }),
        }
    }

    /// The device this context was created on.
    pub fn device(&self) -> &Device {
        &self.inner.device
    }

    /// The fault-injection plan active on this context, if any.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.inner.faults.as_ref()
    }

    /// Stable identity (used to reject cross-context object mixing).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Bytes currently allocated to buffers.
    pub fn allocated_bytes(&self) -> u64 {
        self.inner.mem.lock().expect("mpcl mutex poisoned").used
    }

    /// Create an on-chip channel/pipe of `depth` slots between two
    /// kernels on this context (AOCL `channel`, SDAccel `pipe`). Depth 0
    /// is legal and models AOCL's fused producer→consumer pair.
    pub fn create_channel(&self, depth: u32) -> crate::channel::Channel {
        crate::channel::Channel::new(self.id(), depth)
    }

    fn alloc(&self, len: u64) -> Result<u64, ClError> {
        let limit = self.inner.device.info().global_mem_bytes;
        if len == 0 {
            return Err(ClError::InvalidBufferSize {
                requested: 0,
                limit,
            });
        }
        let mut mem = self.inner.mem.lock().expect("mpcl mutex poisoned");
        if mem.used + len > limit {
            return Err(ClError::InvalidBufferSize {
                requested: len,
                limit,
            });
        }
        let base = mem.next;
        let span = len.div_ceil(BUFFER_ALIGN) * BUFFER_ALIGN;
        mem.next += span;
        mem.used += len;
        mem.allocs.insert(base, Alloc { len, data: None });
        Ok(base)
    }

    fn free(&self, base: u64) {
        let mut mem = self.inner.mem.lock().expect("mpcl mutex poisoned");
        if let Some(a) = mem.allocs.remove(&base) {
            mem.used -= a.len;
        }
    }

    /// Copy `data` into device memory at `base` (host→device transfer's
    /// functional half).
    pub(crate) fn write_bytes(&self, base: u64, data: &[u8]) {
        let mut mem = self.inner.mem.lock().expect("mpcl mutex poisoned");
        let alloc = mem.allocs.get_mut(&base).expect("write to freed buffer");
        let store = alloc
            .data
            .get_or_insert_with(|| vec![0; alloc.len as usize]);
        store[..data.len()].copy_from_slice(data);
    }

    /// Copy device memory at `base` out to `out`.
    pub(crate) fn read_bytes(&self, base: u64, out: &mut [u8]) {
        let mut mem = self.inner.mem.lock().expect("mpcl mutex poisoned");
        let alloc = mem.allocs.get_mut(&base).expect("read from freed buffer");
        let store = alloc
            .data
            .get_or_insert_with(|| vec![0; alloc.len as usize]);
        out.copy_from_slice(&store[..out.len()]);
    }

    /// Flip the low bit of the byte at `offset` within the allocation at
    /// `base` — the functional half of an injected memory fault. The
    /// allocation materializes (zeroed) if it was never written.
    pub(crate) fn flip_bit(&self, base: u64, offset: u64) {
        let mut mem = self.inner.mem.lock().expect("mpcl mutex poisoned");
        let alloc = mem.allocs.get_mut(&base).expect("flip in freed buffer");
        let len = alloc.len as usize;
        let store = alloc.data.get_or_insert_with(|| vec![0; len]);
        store[(offset as usize).min(len - 1)] ^= 1;
    }

    /// Execute `f` with the destination buffer's bytes mutably and the
    /// two source buffers immutably (sources materialize zeroed if never
    /// written). Used by kernel launches for functional execution.
    pub(crate) fn with_kernel_memory(
        &self,
        base_a: u64,
        base_b: u64,
        base_c: Option<u64>,
        f: impl FnOnce(&mut [u8], &[u8], &[u8]),
    ) {
        let mut mem = self.inner.mem.lock().expect("mpcl mutex poisoned");
        // Materialize every participant first.
        for base in [Some(base_a), Some(base_b), base_c].into_iter().flatten() {
            let alloc = mem.allocs.get_mut(&base).expect("kernel arg freed");
            let len = alloc.len as usize;
            alloc.data.get_or_insert_with(|| vec![0; len]);
        }
        // Take the destination out so sources can be borrowed shared.
        let mut a = mem
            .allocs
            .get_mut(&base_a)
            .expect("dest freed")
            .data
            .take()
            .expect("materialized above");
        {
            let b = mem.allocs[&base_b].data.as_deref().expect("materialized");
            let c = base_c
                .map(|bc| mem.allocs[&bc].data.as_deref().expect("materialized"))
                .unwrap_or(&[]);
            f(&mut a, b, c);
        }
        mem.allocs.get_mut(&base_a).expect("dest freed").data = Some(a);
    }
}

impl std::fmt::Debug for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("device", &self.inner.device.info().name)
            .field("id", &self.inner.id)
            .finish()
    }
}

/// A device memory object.
///
/// Dropping the buffer frees its device allocation (like
/// `clReleaseMemObject` with no outstanding references).
#[derive(Debug)]
pub struct Buffer {
    ctx: Context,
    base: u64,
    len: u64,
    flags: MemFlags,
}

impl Buffer {
    /// Allocate `len` bytes on the context's device.
    pub fn new(ctx: &Context, flags: MemFlags, len: u64) -> Result<Self, ClError> {
        let base = ctx.alloc(len)?;
        Ok(Buffer {
            ctx: ctx.clone(),
            base,
            len,
            flags,
        })
    }

    /// Size in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Buffers are never zero-sized (allocation rejects it).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Device base address (used by execution plans).
    pub fn device_addr(&self) -> u64 {
        self.base
    }

    /// Access flags.
    pub fn flags(&self) -> MemFlags {
        self.flags
    }

    /// The owning context.
    pub fn context(&self) -> &Context {
        &self.ctx
    }
}

impl Drop for Buffer {
    fn drop(&mut self) {
        self.ctx.free(self.base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::test_support::fake_device;

    fn ctx() -> Context {
        Context::new(fake_device())
    }

    #[test]
    fn alloc_and_addresses_are_aligned_and_disjoint() {
        let c = ctx();
        let b1 = Buffer::new(&c, MemFlags::ReadOnly, 100).unwrap();
        let b2 = Buffer::new(&c, MemFlags::ReadWrite, 100).unwrap();
        assert_eq!(b1.device_addr() % BUFFER_ALIGN, 0);
        assert_eq!(b2.device_addr() % BUFFER_ALIGN, 0);
        assert!(b2.device_addr() >= b1.device_addr() + BUFFER_ALIGN);
    }

    #[test]
    fn zero_sized_buffer_rejected() {
        let c = ctx();
        assert!(matches!(
            Buffer::new(&c, MemFlags::ReadOnly, 0),
            Err(ClError::InvalidBufferSize { .. })
        ));
    }

    #[test]
    fn over_capacity_rejected() {
        let c = ctx(); // fake device has 1 GiB
        assert!(Buffer::new(&c, MemFlags::ReadOnly, 2 << 30).is_err());
    }

    #[test]
    fn capacity_tracks_frees() {
        let c = ctx();
        {
            let _b = Buffer::new(&c, MemFlags::ReadOnly, 512 << 20).unwrap();
            assert_eq!(c.allocated_bytes(), 512 << 20);
            assert!(Buffer::new(&c, MemFlags::ReadOnly, 768 << 20).is_err());
        }
        assert_eq!(c.allocated_bytes(), 0);
        assert!(Buffer::new(&c, MemFlags::ReadOnly, 768 << 20).is_ok());
    }

    #[test]
    fn write_then_read_round_trips() {
        let c = ctx();
        let b = Buffer::new(&c, MemFlags::ReadWrite, 8).unwrap();
        c.write_bytes(b.device_addr(), &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut out = [0u8; 8];
        c.read_bytes(b.device_addr(), &mut out);
        assert_eq!(out, [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn unwritten_buffer_reads_zeroes() {
        let c = ctx();
        let b = Buffer::new(&c, MemFlags::ReadOnly, 4).unwrap();
        let mut out = [9u8; 4];
        c.read_bytes(b.device_addr(), &mut out);
        assert_eq!(out, [0; 4]);
    }

    #[test]
    fn kernel_memory_split_borrow() {
        let c = ctx();
        let a = Buffer::new(&c, MemFlags::WriteOnly, 4).unwrap();
        let b = Buffer::new(&c, MemFlags::ReadOnly, 4).unwrap();
        c.write_bytes(b.device_addr(), &[10, 20, 30, 40]);
        c.with_kernel_memory(a.device_addr(), b.device_addr(), None, |da, db, dc| {
            assert!(dc.is_empty());
            da.copy_from_slice(db);
        });
        let mut out = [0u8; 4];
        c.read_bytes(a.device_addr(), &mut out);
        assert_eq!(out, [10, 20, 30, 40]);
    }
}
