//! Deterministic, seeded fault injection.
//!
//! Real DSE campaigns on FPGA toolchains fight transient faults
//! constantly: the synthesis tool crashes or loses its license server,
//! boards drop off the bus after reconfiguration, watchdogs kill hung
//! enqueues, and DRAM occasionally flips a bit that only verification
//! catches. A [`FaultPlan`] reproduces that weather on the simulated
//! devices so the execution layers above can be *tested* against it.
//!
//! Determinism is the whole point. Every injection decision is a pure
//! function of `(seed, site, operation key, attempt number)` — computed
//! with the same SplitMix64 finalizer the in-tree RNG uses — so a sweep
//! at `jobs=8` injects exactly the faults the `jobs=1` run injects, and
//! a retried operation re-rolls with a fresh attempt number (which is
//! what makes retries able to succeed). No global RNG stream exists to
//! be perturbed by thread interleaving.
//!
//! Threading: a plan is created once (per engine / CLI invocation) and
//! shared via `Arc` by [`Context::with_faults`](crate::Context); the
//! build path ([`Program`](crate::Program)) and the command queue
//! consult it at their injection sites.

use crate::error::ClError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-site injection probabilities, each in `[0, 1)`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultSpec {
    /// Probability a program build fails transiently
    /// ([`ClError::TransientBuildFailure`]).
    pub build: f64,
    /// Probability a kernel enqueue times out ([`ClError::Timeout`]).
    pub timeout: f64,
    /// Probability a kernel enqueue loses the device
    /// ([`ClError::DeviceLost`]).
    pub device_lost: f64,
    /// Probability a kernel launch flips one bit in the destination
    /// array — caught only by STREAM-style verification.
    pub bit_flip: f64,
}

impl FaultSpec {
    /// Parse a spec like `build=0.2,timeout=0.1,lost=0.05,bitflip=0.01`.
    /// Site names: `build`, `timeout`, `lost` (alias `device_lost`),
    /// `bitflip` (alias `bit_flip`). Omitted sites default to 0.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::default();
        for part in s.split(',').filter(|p| !p.trim().is_empty()) {
            let (name, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec part '{part}' is not name=probability"))?;
            let p: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("invalid probability '{value}' in '{part}'"))?;
            if !(0.0..1.0).contains(&p) {
                return Err(format!("probability {p} in '{part}' must be in [0, 1)"));
            }
            match name.trim() {
                "build" => spec.build = p,
                "timeout" => spec.timeout = p,
                "lost" | "device_lost" => spec.device_lost = p,
                "bitflip" | "bit_flip" => spec.bit_flip = p,
                other => return Err(format!("unknown fault site '{other}'")),
            }
        }
        Ok(spec)
    }

    /// No fault has a nonzero probability.
    pub fn is_zero(&self) -> bool {
        self.build <= 0.0 && self.timeout <= 0.0 && self.device_lost <= 0.0 && self.bit_flip <= 0.0
    }

    fn prob(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::Build => self.build,
            FaultSite::Timeout => self.timeout,
            FaultSite::DeviceLost => self.device_lost,
            FaultSite::BitFlip => self.bit_flip,
        }
    }
}

/// Where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Program build / FPGA synthesis.
    Build,
    /// Kernel enqueue deadline.
    Timeout,
    /// Kernel enqueue device drop-out.
    DeviceLost,
    /// Destination-array bit flip during a kernel launch.
    BitFlip,
}

impl FaultSite {
    #[cfg(test)]
    const ALL: [FaultSite; 4] = [
        FaultSite::Build,
        FaultSite::Timeout,
        FaultSite::DeviceLost,
        FaultSite::BitFlip,
    ];

    fn index(self) -> usize {
        match self {
            FaultSite::Build => 0,
            FaultSite::Timeout => 1,
            FaultSite::DeviceLost => 2,
            FaultSite::BitFlip => 3,
        }
    }

    /// Per-site salt so the same key rolls independently per site.
    fn salt(self) -> u64 {
        [
            0xB1D0_5EED_0000_0001,
            0xB1D0_5EED_0000_0002,
            0xB1D0_5EED_0000_0003,
            0xB1D0_5EED_0000_0004,
        ][self.index()]
    }
}

/// How many faults a plan has injected, per site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Transient build failures injected.
    pub build: u64,
    /// Enqueue timeouts injected.
    pub timeout: u64,
    /// Device-lost faults injected.
    pub device_lost: u64,
    /// Bit flips injected.
    pub bit_flip: u64,
}

impl FaultCounters {
    /// Total injections across all sites.
    pub fn total(&self) -> u64 {
        self.build + self.timeout + self.device_lost + self.bit_flip
    }
}

/// A seeded fault-injection plan shared by contexts, builds and queues.
#[derive(Debug, Default)]
pub struct FaultPlan {
    spec: FaultSpec,
    seed: u64,
    /// Attempt counters per `(site, key hash)`: the n-th roll of the
    /// same operation gets a fresh deterministic draw, so retries can
    /// succeed and `jobs=1` vs `jobs=8` runs roll identically (each
    /// operation's rolls happen sequentially inside its own worker).
    attempts: Mutex<HashMap<(FaultSite, u64), u64>>,
    injected: [AtomicU64; 4],
}

impl FaultPlan {
    /// A plan injecting per `spec`, deterministically driven by `seed`.
    pub fn new(spec: FaultSpec, seed: u64) -> Self {
        FaultPlan {
            spec,
            seed,
            ..Default::default()
        }
    }

    /// The injection probabilities.
    pub fn spec(&self) -> FaultSpec {
        self.spec
    }

    /// The seed driving every decision.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Injection counts so far.
    pub fn counters(&self) -> FaultCounters {
        let get = |s: FaultSite| self.injected[s.index()].load(Ordering::Relaxed);
        FaultCounters {
            build: get(FaultSite::Build),
            timeout: get(FaultSite::Timeout),
            device_lost: get(FaultSite::DeviceLost),
            bit_flip: get(FaultSite::BitFlip),
        }
    }

    /// Roll `site` for operation `key`; on a hit, returns the draw's
    /// residual entropy (used e.g. to pick the flipped byte).
    fn draw(&self, site: FaultSite, key: &str) -> Option<u64> {
        let p = self.spec.prob(site);
        if p <= 0.0 {
            return None;
        }
        let kh = fnv1a(key.as_bytes());
        let attempt = {
            let mut attempts = self.attempts.lock().expect("mpcl mutex poisoned");
            let n = attempts.entry((site, kh)).or_insert(0);
            *n += 1;
            *n
        };
        let h = mix64(
            self.seed
                .wrapping_add(mix64(kh ^ site.salt()))
                .wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if unit < p {
            self.injected[site.index()].fetch_add(1, Ordering::Relaxed);
            Some(mix64(h))
        } else {
            None
        }
    }

    /// Build-site injection: `Some(TransientBuildFailure)` when the
    /// synthesis tool "crashes" on this attempt.
    pub fn inject_build_failure(&self, key: &str) -> Option<ClError> {
        self.draw(FaultSite::Build, key).map(|_| {
            ClError::TransientBuildFailure(
                "injected fault: synthesis tool terminated unexpectedly".into(),
            )
        })
    }

    /// Enqueue-site injection: a device-lost or timeout fault for this
    /// kernel launch, if either rolls a hit (device-lost wins ties —
    /// it is the harder failure).
    pub fn inject_enqueue_fault(&self, key: &str) -> Option<ClError> {
        // Roll both sites so their attempt counters advance in lock-step
        // regardless of which one fires.
        let lost = self.draw(FaultSite::DeviceLost, key).is_some();
        let timeout = self.draw(FaultSite::Timeout, key).is_some();
        if lost {
            Some(ClError::DeviceLost)
        } else if timeout {
            Some(ClError::Timeout(
                "injected fault: enqueue exceeded watchdog deadline".into(),
            ))
        } else {
            None
        }
    }

    /// Verification-site injection: `Some(byte offset)` into a
    /// `len`-byte destination array when this launch flips a bit.
    pub fn inject_bit_flip(&self, key: &str, len: u64) -> Option<u64> {
        if len == 0 {
            return None;
        }
        self.draw(FaultSite::BitFlip, key).map(|h| h % len)
    }
}

/// FNV-1a over the operation key, so attempt counters hash strings once.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01B3);
    }
    h
}

/// The SplitMix64 finalizer (same constants as the in-tree
/// `mpstream_core::rng::SplitMix64`), used here as a stateless mixer.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec_and_aliases() {
        let s = FaultSpec::parse("build=0.2,timeout=0.1,lost=0.05,bitflip=0.01").unwrap();
        assert_eq!(s.build, 0.2);
        assert_eq!(s.timeout, 0.1);
        assert_eq!(s.device_lost, 0.05);
        assert_eq!(s.bit_flip, 0.01);
        let s = FaultSpec::parse("device_lost=0.3,bit_flip=0.2").unwrap();
        assert_eq!(s.device_lost, 0.3);
        assert_eq!(s.bit_flip, 0.2);
        assert!(FaultSpec::parse("").unwrap().is_zero());
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultSpec::parse("build").is_err());
        assert!(FaultSpec::parse("build=x").is_err());
        assert!(FaultSpec::parse("build=1.5").is_err());
        assert!(FaultSpec::parse("build=-0.1").is_err());
        assert!(FaultSpec::parse("warp=0.1").is_err());
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let spec = FaultSpec::parse("build=0.5").unwrap();
        let rolls = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new(spec, seed);
            (0..64)
                .map(|i| plan.inject_build_failure(&format!("cfg-{i}")).is_some())
                .collect()
        };
        assert_eq!(rolls(42), rolls(42), "same seed, same decisions");
        assert_ne!(rolls(42), rolls(43), "seeds diverge");
    }

    #[test]
    fn decision_order_between_keys_does_not_matter() {
        let spec = FaultSpec::parse("build=0.5").unwrap();
        let a = FaultPlan::new(spec, 7);
        let b = FaultPlan::new(spec, 7);
        let keys: Vec<String> = (0..32).map(|i| format!("cfg-{i}")).collect();
        let forward: Vec<bool> = keys
            .iter()
            .map(|k| a.inject_build_failure(k).is_some())
            .collect();
        let mut reverse: Vec<bool> = keys
            .iter()
            .rev()
            .map(|k| b.inject_build_failure(k).is_some())
            .collect();
        reverse.reverse();
        assert_eq!(forward, reverse, "per-key decisions are order-free");
    }

    #[test]
    fn retries_reroll_and_eventually_succeed() {
        let spec = FaultSpec::parse("build=0.5").unwrap();
        let plan = FaultPlan::new(spec, 3);
        // With p = 0.5 some attempt in the first dozen must pass.
        let cleared = (0..12).any(|_| plan.inject_build_failure("same-key").is_none());
        assert!(cleared, "independent per-attempt draws");
    }

    #[test]
    fn rates_are_roughly_calibrated() {
        let spec = FaultSpec::parse("timeout=0.2").unwrap();
        let plan = FaultPlan::new(spec, 11);
        let n = 2000;
        let mut hits = 0;
        for i in 0..n {
            if plan.inject_enqueue_fault(&format!("k{i}")).is_some() {
                hits += 1;
            }
        }
        let rate = hits as f64 / n as f64;
        assert!((0.15..0.25).contains(&rate), "rate {rate}");
        assert_eq!(plan.counters().timeout, hits);
        assert_eq!(plan.counters().device_lost, 0);
    }

    #[test]
    fn bit_flip_offset_is_in_bounds_and_counted() {
        let spec = FaultSpec::parse("bitflip=0.9").unwrap();
        let plan = FaultPlan::new(spec, 5);
        let mut flips = 0;
        for i in 0..100 {
            if let Some(off) = plan.inject_bit_flip(&format!("k{i}"), 4096) {
                assert!(off < 4096);
                flips += 1;
            }
        }
        assert!(flips > 50);
        assert_eq!(plan.counters().bit_flip, flips);
        assert_eq!(plan.counters().total(), flips);
        assert_eq!(plan.inject_bit_flip("k0", 0), None, "empty array");
    }

    #[test]
    fn zero_spec_never_injects_and_counts_nothing() {
        let plan = FaultPlan::new(FaultSpec::default(), 9);
        for i in 0..100 {
            let k = format!("k{i}");
            assert!(plan.inject_build_failure(&k).is_none());
            assert!(plan.inject_enqueue_fault(&k).is_none());
            assert!(plan.inject_bit_flip(&k, 64).is_none());
        }
        assert_eq!(plan.counters(), FaultCounters::default());
    }

    #[test]
    fn sites_roll_independently() {
        // Site salts differ, so the same key/seed must not fail every
        // site in lock-step.
        let spec = FaultSpec::parse("build=0.5,timeout=0.5,lost=0.5,bitflip=0.5").unwrap();
        let plan = FaultPlan::new(spec, 1);
        let mut patterns = std::collections::HashSet::new();
        for i in 0..64 {
            let k = format!("k{i}");
            let pattern = FaultSite::ALL.map(|s| plan.draw(s, &k).is_some());
            patterns.insert(pattern);
        }
        assert!(patterns.len() > 2, "sites decorrelated: {patterns:?}");
    }
}
