//! Programs (compiled kernels) and kernels with bound arguments.

use crate::backend::BuildArtifact;
use crate::cache::{BuildCache, CacheStatus};
use crate::context::{Buffer, Context};
use crate::error::ClError;
use kernelgen::{validate, ExecPlan, KernelConfig, LoopMode};
use std::sync::Arc;

/// A kernel configuration compiled ("synthesized", for FPGAs) for one
/// device. Building is where FPGA resource exhaustion and work-group
/// restrictions surface, exactly as with real OpenCL-FPGA toolchains.
#[derive(Debug, Clone)]
pub struct Program {
    ctx: Context,
    cfg: Arc<KernelConfig>,
    artifact: Arc<BuildArtifact>,
    cache_status: CacheStatus,
}

impl Program {
    /// Validate and build `cfg` for the context's device.
    pub fn build(ctx: &Context, cfg: KernelConfig) -> Result<Self, ClError> {
        let artifact = Arc::new(Self::check_and_synthesize(ctx, &cfg)?);
        Ok(Program {
            ctx: ctx.clone(),
            cfg: Arc::new(cfg),
            artifact,
            cache_status: CacheStatus::Uncached,
        })
    }

    /// Like [`build`](Self::build), but consulting `cache` first: a
    /// revisit of `(device name, cfg)` — by this or any other context on
    /// the same device model — reuses the cached synthesis result
    /// (success *or* failure) instead of re-running the backend.
    pub fn build_cached(
        ctx: &Context,
        cfg: KernelConfig,
        cache: &BuildCache,
    ) -> Result<Self, ClError> {
        // Pre-synthesis validation stays outside the cache: it is cheap,
        // and work-group limits depend on the device handle at hand.
        Self::check(ctx, &cfg)?;
        // Fault injection also sits outside the cache — an injected
        // transient tool crash fails *this attempt*, it must not be
        // memoized as the configuration's permanent verdict.
        Self::inject_build_fault(ctx, &cfg)?;
        let (result, cache_status) =
            cache.get_or_build_status(&ctx.device().info().name, &cfg, || {
                ctx.device().with_backend(|b| b.build(&cfg))
            });
        Ok(Program {
            ctx: ctx.clone(),
            cfg: Arc::new(cfg),
            artifact: result?,
            cache_status,
        })
    }

    /// Configuration and device checks shared by both build paths.
    fn check(ctx: &Context, cfg: &KernelConfig) -> Result<(), ClError> {
        validate(cfg).map_err(|e| ClError::BuildProgramFailure(e.to_string()))?;
        if cfg.loop_mode == LoopMode::NdRange
            && cfg.work_group_size > ctx.device().info().max_work_group_size
        {
            return Err(ClError::InvalidWorkGroupSize(format!(
                "work-group {} exceeds device maximum {}",
                cfg.work_group_size,
                ctx.device().info().max_work_group_size
            )));
        }
        Ok(())
    }

    fn check_and_synthesize(ctx: &Context, cfg: &KernelConfig) -> Result<BuildArtifact, ClError> {
        Self::check(ctx, cfg)?;
        Self::inject_build_fault(ctx, cfg)?;
        ctx.device().with_backend(|b| b.build(cfg))
    }

    /// Roll the context's fault plan (if any) for this build attempt.
    fn inject_build_fault(ctx: &Context, cfg: &KernelConfig) -> Result<(), ClError> {
        if let Some(plan) = ctx.fault_plan() {
            let key = format!("{}:{:?}", ctx.device().info().name, cfg);
            if let Some(e) = plan.inject_build_failure(&key) {
                return Err(e);
            }
        }
        Ok(())
    }

    /// The configuration this program implements.
    pub fn config(&self) -> &KernelConfig {
        &self.cfg
    }

    /// The build artifact (synthesis report for FPGAs).
    pub fn artifact(&self) -> &BuildArtifact {
        &self.artifact
    }

    /// How this program's build request was satisfied:
    /// [`CacheStatus::Uncached`] for [`build`](Self::build), the cache's
    /// verdict for [`build_cached`](Self::build_cached).
    pub fn cache_status(&self) -> CacheStatus {
        self.cache_status
    }

    /// The OpenCL-C source this program corresponds to.
    pub fn source(&self) -> String {
        kernelgen::generate_source(&self.cfg)
    }

    /// The owning context.
    pub fn context(&self) -> &Context {
        &self.ctx
    }
}

/// A program with bound buffer arguments, ready to enqueue.
#[derive(Debug)]
pub struct Kernel {
    program: Program,
    plan: ExecPlan,
}

impl Kernel {
    /// Bind buffers: `a` is the destination, `b` the source, `c` the
    /// second source (required exactly when the kernel uses it).
    pub fn new(
        program: &Program,
        a: &Buffer,
        b: &Buffer,
        c: Option<&Buffer>,
    ) -> Result<Self, ClError> {
        let cfg = program.config();
        let need = cfg.array_bytes();
        let ctx_id = program.context().id();

        for (buf, name) in [(Some(a), "a"), (Some(b), "b"), (c, "c")] {
            if let Some(buf) = buf {
                if buf.context().id() != ctx_id {
                    return Err(ClError::InvalidContext);
                }
                if buf.len() < need {
                    return Err(ClError::InvalidKernelArgs(format!(
                        "buffer {name} holds {} bytes, kernel needs {need}",
                        buf.len()
                    )));
                }
            }
        }
        match (cfg.op.uses_c(), c) {
            (true, None) => {
                return Err(ClError::InvalidKernelArgs(format!(
                    "kernel {} needs a second source array",
                    cfg.op.name()
                )))
            }
            (false, Some(_)) => {
                return Err(ClError::InvalidKernelArgs(format!(
                    "kernel {} takes no second source array",
                    cfg.op.name()
                )))
            }
            _ => {}
        }

        let plan = ExecPlan::new(
            cfg.clone(),
            a.device_addr(),
            b.device_addr(),
            c.map(|c| c.device_addr()).unwrap_or(0),
        );
        if plan.overlapping() {
            return Err(ClError::MemCopyOverlap);
        }
        Ok(Kernel {
            program: program.clone(),
            plan,
        })
    }

    /// The program this kernel was created from.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The bound execution plan.
    pub fn plan(&self) -> &ExecPlan {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::MemFlags;
    use crate::platform::test_support::{fake_device, FakeBackend};
    use crate::platform::Device;
    use kernelgen::StreamOp;

    fn ctx() -> Context {
        Context::new(fake_device())
    }

    fn cfg(op: StreamOp) -> KernelConfig {
        KernelConfig::baseline(op, 1024)
    }

    #[test]
    fn build_and_bind_copy() {
        let c = ctx();
        let p = Program::build(&c, cfg(StreamOp::Copy)).unwrap();
        let a = Buffer::new(&c, MemFlags::WriteOnly, 4096).unwrap();
        let b = Buffer::new(&c, MemFlags::ReadOnly, 4096).unwrap();
        let k = Kernel::new(&p, &a, &b, None).unwrap();
        assert_eq!(k.plan().base_a, a.device_addr());
    }

    #[test]
    fn invalid_config_is_build_failure() {
        let c = ctx();
        let mut bad = cfg(StreamOp::Copy);
        bad.n_words = 0;
        assert!(matches!(
            Program::build(&c, bad),
            Err(ClError::BuildProgramFailure(_))
        ));
    }

    #[test]
    fn backend_build_failure_propagates() {
        let d = Device::new(Box::new(FakeBackend { fail_build: true }));
        let c = Context::new(d);
        assert!(matches!(
            Program::build(&c, cfg(StreamOp::Copy)),
            Err(ClError::BuildProgramFailure(log)) if log.contains("synthetic")
        ));
    }

    #[test]
    fn oversized_work_group_rejected() {
        let c = ctx(); // fake device max wg = 256
        let mut big = cfg(StreamOp::Copy);
        big.work_group_size = 512;
        assert!(matches!(
            Program::build(&c, big),
            Err(ClError::InvalidWorkGroupSize(_))
        ));
    }

    #[test]
    fn short_buffer_rejected() {
        let c = ctx();
        let p = Program::build(&c, cfg(StreamOp::Copy)).unwrap();
        let a = Buffer::new(&c, MemFlags::WriteOnly, 100).unwrap();
        let b = Buffer::new(&c, MemFlags::ReadOnly, 4096).unwrap();
        assert!(matches!(
            Kernel::new(&p, &a, &b, None),
            Err(ClError::InvalidKernelArgs(_))
        ));
    }

    #[test]
    fn triad_requires_c() {
        let c = ctx();
        let p = Program::build(&c, cfg(StreamOp::Triad)).unwrap();
        let a = Buffer::new(&c, MemFlags::WriteOnly, 4096).unwrap();
        let b = Buffer::new(&c, MemFlags::ReadOnly, 4096).unwrap();
        assert!(matches!(
            Kernel::new(&p, &a, &b, None),
            Err(ClError::InvalidKernelArgs(_))
        ));
    }

    #[test]
    fn copy_rejects_extra_c() {
        let c = ctx();
        let p = Program::build(&c, cfg(StreamOp::Copy)).unwrap();
        let a = Buffer::new(&c, MemFlags::WriteOnly, 4096).unwrap();
        let b = Buffer::new(&c, MemFlags::ReadOnly, 4096).unwrap();
        let extra = Buffer::new(&c, MemFlags::ReadOnly, 4096).unwrap();
        assert!(Kernel::new(&p, &a, &b, Some(&extra)).is_err());
    }

    #[test]
    fn cross_context_rejected() {
        let c1 = ctx();
        let c2 = ctx();
        let p = Program::build(&c1, cfg(StreamOp::Copy)).unwrap();
        let a = Buffer::new(&c2, MemFlags::WriteOnly, 4096).unwrap();
        let b = Buffer::new(&c1, MemFlags::ReadOnly, 4096).unwrap();
        assert_eq!(
            Kernel::new(&p, &a, &b, None).unwrap_err(),
            ClError::InvalidContext
        );
    }

    #[test]
    fn source_available_from_program() {
        let c = ctx();
        let p = Program::build(&c, cfg(StreamOp::Scale)).unwrap();
        assert!(p.source().contains("__kernel void mp_scale"));
    }
}
