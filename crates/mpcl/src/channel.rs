//! On-chip channels / pipes between kernels.
//!
//! Intel's AOCL exposes `channel` objects and Xilinx SDAccel OpenCL 2.0
//! `pipe`s: bounded FIFOs that connect two kernels directly in the FPGA
//! fabric, so a producer can stream values to a consumer without a round
//! trip through global memory. MP-STREAM's channeled kernel variants
//! (`KernelConfig::channel`) split each workload into a `_load` and a
//! `_store` stage joined by one such FIFO.
//!
//! [`Channel`] is the host-side functional model: a bounded ring of raw
//! element words with non-blocking `try_write`/`try_read` that report
//! *would-block* instead of spinning (the simulator is single-threaded —
//! a real blocking call could never be satisfied), plus stall counters
//! so tests can observe backpressure. The *timing* consequences of the
//! FIFO (fill latency, producer/consumer imbalance) are modelled
//! analytically by the device backends and surface as
//! [`crate::backend::KernelCost::stall_ns`] / [`crate::Event`]'s
//! `stall_ns`.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

struct ChannelState {
    fifo: VecDeque<u64>,
    write_stalls: u64,
    read_stalls: u64,
}

/// A bounded FIFO connecting two simulated kernels (AOCL `channel` /
/// SDAccel `pipe`). Cloning yields another handle to the same FIFO, as
/// both endpoint kernels reference one file-scope channel object.
#[derive(Clone)]
pub struct Channel {
    ctx_id: u64,
    depth: u32,
    state: Arc<Mutex<ChannelState>>,
}

impl Channel {
    pub(crate) fn new(ctx_id: u64, depth: u32) -> Self {
        Channel {
            ctx_id,
            depth,
            state: Arc::new(Mutex::new(ChannelState {
                fifo: VecDeque::new(),
                write_stalls: 0,
                read_stalls: 0,
            })),
        }
    }

    /// The context this channel was created on.
    pub fn context_id(&self) -> u64 {
        self.ctx_id
    }

    /// Declared FIFO depth. Depth 0 is legal — AOCL fuses the two
    /// stages and the channel degenerates to a register (capacity 1
    /// here, so a fused write→read pair still round-trips a value).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Usable slots: `max(depth, 1)`.
    pub fn capacity(&self) -> usize {
        self.depth.max(1) as usize
    }

    /// Elements currently buffered.
    pub fn len(&self) -> usize {
        self.lock().fifo.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking write (`write_channel_intel` / `write_pipe`). Returns
    /// `false` — and counts a write stall — when the FIFO is full.
    pub fn try_write(&self, word: u64) -> bool {
        let mut st = self.lock();
        if st.fifo.len() >= self.depth.max(1) as usize {
            st.write_stalls += 1;
            return false;
        }
        st.fifo.push_back(word);
        true
    }

    /// Non-blocking read (`read_channel_intel` / `read_pipe`). Returns
    /// `None` — and counts a read stall — when the FIFO is empty.
    pub fn try_read(&self) -> Option<u64> {
        let mut st = self.lock();
        match st.fifo.pop_front() {
            Some(w) => Some(w),
            None => {
                st.read_stalls += 1;
                None
            }
        }
    }

    /// `(write_stalls, read_stalls)` observed so far: how often an
    /// endpoint found the FIFO full (writes) or empty (reads).
    pub fn stalls(&self) -> (u64, u64) {
        let st = self.lock();
        (st.write_stalls, st.read_stalls)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ChannelState> {
        self.state.lock().expect("mpcl mutex poisoned")
    }
}

impl std::fmt::Debug for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.lock();
        f.debug_struct("Channel")
            .field("depth", &self.depth)
            .field("len", &st.fifo.len())
            .field("write_stalls", &st.write_stalls)
            .field("read_stalls", &st.read_stalls)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::platform::test_support::fake_device;
    use crate::Context;

    #[test]
    fn fifo_order_round_trips() {
        let ctx = Context::new(fake_device());
        let ch = ctx.create_channel(4);
        assert_eq!(ch.context_id(), ctx.id());
        for w in 0..4u64 {
            assert!(ch.try_write(w));
        }
        for w in 0..4u64 {
            assert_eq!(ch.try_read(), Some(w));
        }
        assert!(ch.is_empty());
        assert_eq!(ch.stalls(), (0, 0));
    }

    #[test]
    fn full_and_empty_count_stalls() {
        let ctx = Context::new(fake_device());
        let ch = ctx.create_channel(2);
        assert!(ch.try_write(1));
        assert!(ch.try_write(2));
        assert!(!ch.try_write(3), "depth-2 FIFO is full");
        assert_eq!(ch.try_read(), Some(1));
        assert_eq!(ch.try_read(), Some(2));
        assert_eq!(ch.try_read(), None, "FIFO drained");
        assert_eq!(ch.stalls(), (1, 1));
    }

    #[test]
    fn depth_zero_acts_as_a_register() {
        let ctx = Context::new(fake_device());
        let ch = ctx.create_channel(0);
        assert_eq!(ch.capacity(), 1);
        assert!(ch.try_write(7));
        assert!(!ch.try_write(8));
        assert_eq!(ch.try_read(), Some(7));
    }

    #[test]
    fn clones_share_the_fifo() {
        let ctx = Context::new(fake_device());
        let producer_end = ctx.create_channel(8);
        let consumer_end = producer_end.clone();
        assert!(producer_end.try_write(42));
        assert_eq!(consumer_end.try_read(), Some(42));
        assert_eq!(producer_end.len(), 0);
    }
}
