//! # mpcl — an OpenCL-style host runtime over simulated devices
//!
//! MP-STREAM is an OpenCL benchmark; its host code enumerates platforms,
//! creates contexts, buffers and command queues, builds kernels and times
//! them with profiling events. This crate reproduces that host API
//! surface over *simulated* devices so the benchmark logic upstairs is a
//! faithful transcription of the paper's host program:
//!
//! * [`platform::Platform`] / [`platform::Device`] — enumeration;
//! * [`backend::DeviceBackend`] — the trait device models implement
//!   (build = FPGA synthesis, estimate = timing model);
//! * [`context::Context`] / [`context::Buffer`] — device memory, really
//!   backed by host byte vectors so kernels execute functionally;
//! * [`program::Program`] / [`program::Kernel`] — compiled kernels with
//!   bound arguments;
//! * [`queue::CommandQueue`] / [`queue::Event`] — an in-order queue with
//!   a simulated nanosecond timeline and OpenCL-style profiling
//!   timestamps (queued / submit / start / end).
//!
//! Timing lives entirely in the device backends; this crate only strings
//! the timeline together, mirroring what an OpenCL runtime does.

pub mod backend;
pub mod cache;
pub mod channel;
pub mod context;
pub mod error;
pub mod fault;
pub mod platform;
pub mod program;
pub mod queue;

pub use backend::{
    BuildArtifact, DeviceBackend, DeviceInfo, DeviceType, KernelCost, PowerModel, ResourceUsage,
};
pub use cache::{BuildCache, CacheStats, CacheStatus};
pub use channel::Channel;
pub use context::{Buffer, Context, MemFlags};
pub use error::{ClError, RetryClass};
pub use fault::{FaultCounters, FaultPlan, FaultSite, FaultSpec};
pub use platform::{Device, Platform};
pub use program::{Kernel, Program};
pub use queue::{CmdKind, CmdRecord, CommandQueue, Event};
