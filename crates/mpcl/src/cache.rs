//! A shared build-artifact cache.
//!
//! Building a program for an FPGA target models pipeline synthesis — in
//! the real toolchains this is the hours-long step, and every sweep or
//! hill-climb that revisits a configuration pays it again. A
//! [`BuildCache`] memoizes [`build`](crate::Program::build_cached)
//! results so revisits are free, exactly like the `aoc`/`xocc` binary
//! caches users keep next to their sweep scripts.
//!
//! Keying: a cache entry is identified by `(device name, KernelConfig)`.
//! The device *name* — not the handle identity — is deliberate: the
//! standard targets mint a fresh `Device` per instantiation (as parallel
//! sweep workers do), but two devices of the same model are
//! interchangeable compilation targets. `KernelConfig` carries an `f64`
//! scalar, so the config half of the key is its exhaustive `Debug`
//! rendering rather than a `Hash` impl.
//!
//! *Permanently* failed builds are cached too: "design does not fit" is a
//! deterministic verdict of the model, and re-synthesizing to rediscover
//! it is exactly the waste this cache removes. *Transient* failures
//! ([`ClError::is_transient`] — tool crashes, lost devices) are **not**
//! memoized: they describe one unlucky attempt, not the configuration,
//! and caching one would poison every later sweep that revisits the key.

use crate::backend::BuildArtifact;
use crate::error::ClError;
use kernelgen::KernelConfig;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

type Entry = Arc<OnceLock<Result<Arc<BuildArtifact>, ClError>>>;

/// How one build request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Answered from the cache.
    Hit,
    /// Ran the backend build and populated the cache.
    Miss,
    /// Built without consulting any cache.
    Uncached,
}

impl CacheStatus {
    /// Stable lower-case label (used in reports and checkpoint records).
    pub fn label(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Uncached => "uncached",
        }
    }

    /// Parse a [`label`](Self::label) back; `None` for unknown text.
    pub fn from_label(s: &str) -> Option<CacheStatus> {
        match s {
            "hit" => Some(CacheStatus::Hit),
            "miss" => Some(CacheStatus::Miss),
            "uncached" => Some(CacheStatus::Uncached),
            _ => None,
        }
    }
}

/// Hit/miss counters of a [`BuildCache`], cheap to copy out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the backend build.
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Counter difference since an earlier snapshot (for per-sweep
    /// reporting on a long-lived cache).
    pub fn since(&self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

/// A thread-safe synthesis/build cache, shared across runners.
///
/// Concurrent misses on the same key build **once**: the first worker
/// populates the entry while others block on it, so the miss count equals
/// the number of distinct keys regardless of the thread count.
#[derive(Debug, Default)]
pub struct BuildCache {
    map: Mutex<HashMap<(String, String), Entry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BuildCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of cached configurations (including cached failures).
    pub fn len(&self) -> usize {
        self.map.lock().expect("mpcl mutex poisoned").len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up `(device_name, cfg)`, running `build` on a miss. A build
    /// that fails transiently is returned but **not** retained: the next
    /// lookup of the same key builds again.
    pub fn get_or_build(
        &self,
        device_name: &str,
        cfg: &KernelConfig,
        build: impl FnOnce() -> Result<BuildArtifact, ClError>,
    ) -> Result<Arc<BuildArtifact>, ClError> {
        self.get_or_build_status(device_name, cfg, build).0
    }

    /// Like [`get_or_build`](Self::get_or_build), additionally reporting
    /// whether this particular request hit the cache or ran the build.
    pub fn get_or_build_status(
        &self,
        device_name: &str,
        cfg: &KernelConfig,
        build: impl FnOnce() -> Result<BuildArtifact, ClError>,
    ) -> (Result<Arc<BuildArtifact>, ClError>, CacheStatus) {
        let key = (device_name.to_string(), format!("{cfg:?}"));
        let entry: Entry = {
            let mut map = self.map.lock().expect("mpcl mutex poisoned");
            map.entry(key.clone()).or_default().clone()
        };
        let mut built_here = false;
        let result = entry.get_or_init(|| {
            built_here = true;
            build().map(Arc::new)
        });
        if built_here {
            self.misses.fetch_add(1, Ordering::Relaxed);
            // Evict transient failures so a flaky build attempt does not
            // become the key's permanent verdict. Only the worker that
            // populated the entry evicts, and only if the map still holds
            // *this* entry (a concurrent retry may have re-inserted).
            if matches!(result, Err(e) if e.is_transient()) {
                let mut map = self.map.lock().expect("mpcl mutex poisoned");
                if map.get(&key).is_some_and(|cur| Arc::ptr_eq(cur, &entry)) {
                    map.remove(&key);
                }
            }
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        let status = if built_here {
            CacheStatus::Miss
        } else {
            CacheStatus::Hit
        };
        (result.clone(), status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n_words: u64) -> KernelConfig {
        KernelConfig::baseline(kernelgen::StreamOp::Copy, n_words)
    }

    fn artifact() -> BuildArtifact {
        BuildArtifact::simple(1)
    }

    #[test]
    fn second_lookup_hits_and_skips_build() {
        let cache = BuildCache::new();
        let mut builds = 0;
        for _ in 0..3 {
            cache
                .get_or_build("dev", &cfg(1024), || {
                    builds += 1;
                    Ok(artifact())
                })
                .unwrap();
        }
        assert_eq!(builds, 1);
        assert_eq!(cache.stats(), CacheStats { hits: 2, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_configs_and_devices_are_distinct_keys() {
        let cache = BuildCache::new();
        cache
            .get_or_build("dev-a", &cfg(1024), || Ok(artifact()))
            .unwrap();
        cache
            .get_or_build("dev-a", &cfg(2048), || Ok(artifact()))
            .unwrap();
        cache
            .get_or_build("dev-b", &cfg(1024), || Ok(artifact()))
            .unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn permanent_failures_are_cached() {
        let cache = BuildCache::new();
        let mut builds = 0;
        for _ in 0..2 {
            let r = cache.get_or_build("dev", &cfg(1024), || {
                builds += 1;
                Err(ClError::BuildProgramFailure("does not fit".into()))
            });
            assert!(matches!(r, Err(ClError::BuildProgramFailure(_))));
        }
        assert_eq!(builds, 1, "the failure verdict is remembered");
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn transient_failures_are_not_cached() {
        let cache = BuildCache::new();
        let mut attempts = 0;
        // First attempt: the synthesis tool "crashes".
        let r = cache.get_or_build("dev", &cfg(1024), || {
            attempts += 1;
            Err(ClError::TransientBuildFailure("license server down".into()))
        });
        assert!(matches!(r, Err(ClError::TransientBuildFailure(_))));
        assert_eq!(cache.len(), 0, "flaky attempt must not poison the key");
        // Retry: builds again and the success IS cached.
        let r = cache.get_or_build("dev", &cfg(1024), || {
            attempts += 1;
            Ok(artifact())
        });
        assert!(r.is_ok());
        assert_eq!(attempts, 2, "retry re-ran the backend");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2 });
        // Third lookup is a plain hit.
        let r = cache.get_or_build("dev", &cfg(1024), || {
            attempts += 1;
            Err(ClError::DeviceLost)
        });
        assert!(r.is_ok());
        assert_eq!(attempts, 2);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn concurrent_misses_build_once() {
        let cache = Arc::new(BuildCache::new());
        let builds = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let builds = Arc::clone(&builds);
                s.spawn(move || {
                    cache
                        .get_or_build("dev", &cfg(4096), || {
                            builds.fetch_add(1, Ordering::Relaxed);
                            Ok(artifact())
                        })
                        .unwrap();
                });
            }
        });
        assert_eq!(builds.load(Ordering::Relaxed), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn status_reports_miss_then_hit() {
        let cache = BuildCache::new();
        let (r, s) = cache.get_or_build_status("dev", &cfg(1024), || Ok(artifact()));
        assert!(r.is_ok());
        assert_eq!(s, CacheStatus::Miss);
        let (r, s) = cache.get_or_build_status("dev", &cfg(1024), || Ok(artifact()));
        assert!(r.is_ok());
        assert_eq!(s, CacheStatus::Hit);
    }

    #[test]
    fn status_labels_round_trip() {
        for s in [CacheStatus::Hit, CacheStatus::Miss, CacheStatus::Uncached] {
            assert_eq!(CacheStatus::from_label(s.label()), Some(s));
        }
        assert_eq!(CacheStatus::from_label("warm"), None);
    }

    #[test]
    fn stats_since_subtracts() {
        let a = CacheStats {
            hits: 10,
            misses: 4,
        };
        let b = CacheStats { hits: 3, misses: 4 };
        assert_eq!(a.since(b), CacheStats { hits: 7, misses: 0 });
        assert!((a.hit_rate() - 10.0 / 14.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
