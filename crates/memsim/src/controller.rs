//! A queued memory controller with scheduling policies.
//!
//! The [`Dram`] device services transactions in the
//! order it receives them. Real controllers hold a window of pending
//! requests and *reorder* them — most famously FR-FCFS ("first-ready,
//! first-come-first-served"), which prefers requests that hit an open
//! row. For MP-STREAM's access patterns the policy matters exactly where
//! the paper's Figure 2 lives: interleaved or strided streams whose
//! requests thrash rows under FCFS can be batched into row hits by
//! FR-FCFS. This module is a study harness for that effect (see the
//! `ablations` bench and the `controller_study` example): it replays a
//! trace of timestamped requests through a pending-window scheduler and
//! reports completion time and row statistics.

use crate::dram::{Dram, DramConfig};
use crate::req::Access;
use crate::stats::MemStats;
use std::collections::VecDeque;

/// Scheduling policy for the pending-request window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Strict arrival order.
    Fcfs,
    /// First-ready: prefer, among arrived requests, one that hits a
    /// currently open row; fall back to the oldest. Starvation-bounded
    /// by `cap` — after `cap` consecutive row-hit bypasses the oldest
    /// request is served unconditionally.
    FrFcfs {
        /// Maximum consecutive bypasses of the oldest request.
        cap: u32,
    },
}

/// A timestamped request for replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedRequest {
    /// Arrival time, in DRAM clock cycles.
    pub arrival: u64,
    /// The access.
    pub access: Access,
}

/// Result of replaying a trace through the controller.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Cycle at which the last request's data completed.
    pub finish_cycle: u64,
    /// Sum of per-request latencies (completion - arrival), cycles.
    pub total_latency_cycles: u64,
    /// Worst single-request latency, cycles.
    pub max_latency_cycles: u64,
    /// Per-request latency (completion - arrival) in trace order.
    pub latencies: Vec<u64>,
    /// DRAM counters for the replay.
    pub stats: MemStats,
}

impl ReplayOutcome {
    /// Mean request latency in cycles.
    pub fn mean_latency(&self, n_requests: usize) -> f64 {
        self.total_latency_cycles as f64 / n_requests.max(1) as f64
    }
}

/// The queued controller.
#[derive(Debug)]
pub struct MemoryController {
    dram: Dram,
    policy: SchedPolicy,
    window: usize,
    /// Reusable pending-window arena: a deque so the common
    /// serve-the-oldest case is a pop instead of an O(window) shift.
    pending: VecDeque<(usize, TimedRequest)>,
}

impl MemoryController {
    /// Build a controller over a fresh DRAM device. `window` is the
    /// pending-queue depth the scheduler may reorder within.
    pub fn new(cfg: DramConfig, policy: SchedPolicy, window: usize) -> Self {
        assert!(window >= 1, "need at least one pending slot");
        MemoryController {
            dram: Dram::new(cfg),
            policy,
            window,
            pending: VecDeque::with_capacity(window),
        }
    }

    /// The policy in effect.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Would `access` hit the currently open row of its bank? (Peeks the
    /// DRAM's bank state without touching it.)
    fn is_row_hit(&self, access: &Access) -> bool {
        self.dram.peek_row_hit(access.addr)
    }

    /// Replay a trace (must be sorted by arrival). Returns the outcome;
    /// the controller keeps DRAM state, so call once per experiment or
    /// construct a fresh controller.
    pub fn replay(&mut self, trace: &[TimedRequest]) -> ReplayOutcome {
        let mut out = ReplayOutcome {
            finish_cycle: 0,
            total_latency_cycles: 0,
            max_latency_cycles: 0,
            latencies: Vec::new(),
            stats: MemStats::new(),
        };
        self.replay_into(trace, &mut out);
        out
    }

    /// Allocation-free variant of [`replay`](Self::replay): overwrites
    /// `out` in place, reusing its latency buffer and the controller's
    /// pending-window arena. Sweeps replaying many traces through fresh
    /// policies pay zero per-replay allocation once warm.
    pub fn replay_into(&mut self, trace: &[TimedRequest], out: &mut ReplayOutcome) {
        assert!(
            trace.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "trace must be sorted by arrival"
        );
        self.pending.clear();
        let mut next = 0usize; // next trace index not yet in the window
        let mut now = 0u64; // controller clock, DRAM cycles
        let mut completed = 0usize;
        let mut total_latency = 0u64;
        let mut max_latency = 0u64;
        out.latencies.clear();
        out.latencies.resize(trace.len(), 0);
        let mut bypasses = 0u32;

        while completed < trace.len() {
            // Admit arrived requests into the window.
            while next < trace.len()
                && self.pending.len() < self.window
                && trace[next].arrival <= now
            {
                self.pending.push_back((next, trace[next]));
                next += 1;
            }
            if self.pending.is_empty() {
                // Idle until the next arrival.
                now = trace[next].arrival;
                continue;
            }

            // Pick a request per policy.
            let pick = match self.policy {
                SchedPolicy::Fcfs => 0,
                SchedPolicy::FrFcfs { cap } => {
                    let hit = self
                        .pending
                        .iter()
                        .position(|(_, r)| self.is_row_hit(&r.access));
                    match hit {
                        Some(i) if i != 0 && bypasses < cap => {
                            bypasses += 1;
                            i
                        }
                        Some(0) => {
                            bypasses = 0;
                            0
                        }
                        _ => {
                            bypasses = 0;
                            0
                        }
                    }
                }
            };
            let (trace_idx, req) = if pick == 0 {
                self.pending.pop_front().expect("non-empty")
            } else {
                self.pending.remove(pick).expect("picked in range")
            };
            let (_, done) = self.dram.service(now, req.access);
            // The controller can issue the next command while data
            // streams, but not before this request's command slot.
            now = now.max(req.arrival);
            let latency = done.saturating_sub(req.arrival);
            total_latency += latency;
            max_latency = max_latency.max(latency);
            out.latencies[trace_idx] = latency;
            completed += 1;
            // Advance the clock conservatively: commands pipeline, so we
            // move to the point where the bus accepted this burst.
            now = now.max(done.saturating_sub(8));
        }

        out.finish_cycle = now + 8;
        out.total_latency_cycles = total_latency;
        out.max_latency_cycles = max_latency;
        out.stats = self.dram.stats().clone();
    }
}

/// Build the interleaved two-stream trace that separates the policies:
/// two *individually sequential* streams whose rows ping-pong on the
/// same banks. Served in arrival order every request closes the other
/// stream's row (all misses); a first-ready scheduler batches each
/// stream's row hits. `second_base` must map to the same bank rotation
/// as stream A — any multiple of `row_bytes * banks` does.
pub fn interleaved_trace(n_pairs: usize, second_base: u64) -> Vec<TimedRequest> {
    let mut out = Vec::with_capacity(2 * n_pairs);
    for i in 0..n_pairs as u64 {
        out.push(TimedRequest {
            arrival: 2 * i,
            access: Access::read(i * 64, 64),
        });
        out.push(TimedRequest {
            arrival: 2 * i + 1,
            access: Access::read(second_base + i * 64, 64),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Freq;

    fn cfg() -> DramConfig {
        DramConfig {
            channels: 1,
            banks_per_channel: 4,
            row_bytes: 2048,
            bus_bytes_per_cycle: 8,
            freq: Freq::mhz(1000.0),
            t_cas: 10,
            t_rcd: 10,
            t_rp: 10,
            t_turnaround: 6,
            refresh_overhead: 0.0,
            interleave_bytes: 4096,
        }
    }

    #[test]
    fn sequential_trace_is_policy_insensitive() {
        let trace: Vec<TimedRequest> = (0..256u64)
            .map(|i| TimedRequest {
                arrival: i,
                access: Access::read(i * 64, 64),
            })
            .collect();
        let f = MemoryController::new(cfg(), SchedPolicy::Fcfs, 16).replay(&trace);
        let fr = MemoryController::new(cfg(), SchedPolicy::FrFcfs { cap: 8 }, 16).replay(&trace);
        let ratio = f.finish_cycle as f64 / fr.finish_cycle as f64;
        assert!((0.95..=1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fr_fcfs_wins_on_interleaved_streams() {
        let trace = interleaved_trace(512, 1 << 20);
        let f = MemoryController::new(cfg(), SchedPolicy::Fcfs, 32).replay(&trace);
        let fr = MemoryController::new(cfg(), SchedPolicy::FrFcfs { cap: 16 }, 32).replay(&trace);
        assert!(
            (fr.finish_cycle as f64) < 0.8 * f.finish_cycle as f64,
            "fr-fcfs {} vs fcfs {}",
            fr.finish_cycle,
            f.finish_cycle
        );
        assert!(fr.stats.row_hit_rate() > f.stats.row_hit_rate());
    }

    #[test]
    fn starvation_cap_bounds_a_starved_request() {
        // A flood of row-hitting requests with one conflicting request
        // (same bank, different row) buried at index 1: an uncapped
        // first-ready scheduler starves it until the flood drains; the
        // cap bounds how long it can be bypassed.
        let mut trace: Vec<TimedRequest> = (0..31u64)
            .map(|i| TimedRequest {
                arrival: 0,
                access: Access::read(i * 64, 64),
            })
            .collect();
        trace.insert(
            1,
            TimedRequest {
                arrival: 0,
                access: Access::read(1 << 20, 64),
            },
        );
        let greedy =
            MemoryController::new(cfg(), SchedPolicy::FrFcfs { cap: u32::MAX }, 32).replay(&trace);
        let bounded =
            MemoryController::new(cfg(), SchedPolicy::FrFcfs { cap: 4 }, 32).replay(&trace);
        assert!(
            bounded.latencies[1] * 2 < greedy.latencies[1],
            "starved request: bounded {} vs greedy {}",
            bounded.latencies[1],
            greedy.latencies[1]
        );
    }

    #[test]
    fn window_of_one_degenerates_to_fcfs() {
        let trace = interleaved_trace(128, 1 << 20);
        let f = MemoryController::new(cfg(), SchedPolicy::Fcfs, 1).replay(&trace);
        let fr = MemoryController::new(cfg(), SchedPolicy::FrFcfs { cap: 8 }, 1).replay(&trace);
        assert_eq!(f.finish_cycle, fr.finish_cycle, "no reordering possible");
    }

    #[test]
    fn latencies_are_accounted() {
        let trace: Vec<TimedRequest> = (0..16u64)
            .map(|i| TimedRequest {
                arrival: 0,
                access: Access::read(i * 64, 64),
            })
            .collect();
        let out = MemoryController::new(cfg(), SchedPolicy::Fcfs, 4).replay(&trace);
        assert!(out.total_latency_cycles > 0);
        assert!(out.max_latency_cycles >= out.mean_latency(16) as u64);
    }

    #[test]
    fn replay_into_reuses_buffers_and_matches_replay() {
        let trace = interleaved_trace(256, 1 << 20);
        let fresh = MemoryController::new(cfg(), SchedPolicy::FrFcfs { cap: 8 }, 16).replay(&trace);
        let mut c = MemoryController::new(cfg(), SchedPolicy::FrFcfs { cap: 8 }, 16);
        let mut out = ReplayOutcome {
            finish_cycle: 99,
            total_latency_cycles: 99,
            max_latency_cycles: 99,
            latencies: vec![7; 3], // stale garbage that must be overwritten
            stats: MemStats::new(),
        };
        c.replay_into(&trace, &mut out);
        assert_eq!(out.finish_cycle, fresh.finish_cycle);
        assert_eq!(out.total_latency_cycles, fresh.total_latency_cycles);
        assert_eq!(out.latencies, fresh.latencies);
        assert_eq!(out.stats, fresh.stats);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_trace_rejected() {
        let trace = vec![
            TimedRequest {
                arrival: 5,
                access: Access::read(0, 64),
            },
            TimedRequest {
                arrival: 1,
                access: Access::read(64, 64),
            },
        ];
        MemoryController::new(cfg(), SchedPolicy::Fcfs, 4).replay(&trace);
    }
}
