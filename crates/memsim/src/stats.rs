//! Event counters collected by the memory models.
//!
//! Counters are plain `u64`s updated on the simulation fast path; the
//! struct is `Default + Clone` so models can be snapshotted and diffed by
//! tests and by the benchmark's reporting layer.

/// Counters accumulated while servicing an access stream.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MemStats {
    /// Demand read accesses observed at the top of the hierarchy.
    pub reads: u64,
    /// Demand write accesses observed at the top of the hierarchy.
    pub writes: u64,
    /// Bytes read by demand accesses.
    pub bytes_read: u64,
    /// Bytes written by demand accesses.
    pub bytes_written: u64,
    /// Hits per cache level (index 0 = L1).
    pub cache_hits: [u64; 3],
    /// Misses per cache level (index 0 = L1).
    pub cache_misses: [u64; 3],
    /// Dirty lines written back to the next level / DRAM.
    pub writebacks: u64,
    /// TLB hits.
    pub tlb_hits: u64,
    /// TLB misses (each pays a page-walk penalty).
    pub tlb_misses: u64,
    /// DRAM transactions that hit an open row.
    pub row_hits: u64,
    /// DRAM transactions that required closing + opening a row.
    pub row_misses: u64,
    /// DRAM transactions that found the bank idle (no row open).
    pub row_empty: u64,
    /// Read/write bus-turnaround events at the DRAM.
    pub bus_turnarounds: u64,
    /// Prefetch transactions issued to DRAM.
    pub prefetches_issued: u64,
    /// Demand accesses that were satisfied by a previous prefetch.
    pub prefetch_hits: u64,
    /// DRAM transactions (after coalescing / line-fill granularity).
    pub dram_transactions: u64,
    /// Bytes moved on the DRAM bus (fills + writebacks + prefetches).
    pub dram_bytes: u64,
}

impl MemStats {
    /// A fresh, zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total demand accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total demand bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Row-buffer hit rate over all DRAM transactions, in `[0, 1]`.
    /// Returns 1.0 when no transaction has been issued (vacuously all hits).
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_empty;
        if total == 0 {
            1.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Merge counters from `other` into `self` (used when several
    /// sub-models contribute to one report).
    pub fn merge(&mut self, other: &MemStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        for i in 0..3 {
            self.cache_hits[i] += other.cache_hits[i];
            self.cache_misses[i] += other.cache_misses[i];
        }
        self.writebacks += other.writebacks;
        self.tlb_hits += other.tlb_hits;
        self.tlb_misses += other.tlb_misses;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_empty += other.row_empty;
        self.bus_turnarounds += other.bus_turnarounds;
        self.prefetches_issued += other.prefetches_issued;
        self.prefetch_hits += other.prefetch_hits;
        self.dram_transactions += other.dram_transactions;
        self.dram_bytes += other.dram_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accesses_and_bytes_sum() {
        let s = MemStats {
            reads: 3,
            writes: 2,
            bytes_read: 12,
            bytes_written: 8,
            ..Default::default()
        };
        assert_eq!(s.accesses(), 5);
        assert_eq!(s.bytes(), 20);
    }

    #[test]
    fn row_hit_rate_vacuous() {
        assert_eq!(MemStats::new().row_hit_rate(), 1.0);
    }

    #[test]
    fn row_hit_rate_mixed() {
        let s = MemStats {
            row_hits: 3,
            row_misses: 1,
            ..Default::default()
        };
        assert!((s.row_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = MemStats {
            reads: 1,
            cache_hits: [1, 2, 3],
            ..Default::default()
        };
        let b = MemStats {
            reads: 2,
            cache_hits: [10, 20, 30],
            writebacks: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.reads, 3);
        assert_eq!(a.cache_hits, [11, 22, 33]);
        assert_eq!(a.writebacks, 7);
    }
}
