//! Memory request types shared by every model in the crate.

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    Read,
    Write,
}

impl AccessKind {
    /// `true` for [`AccessKind::Read`].
    pub fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }

    /// `true` for [`AccessKind::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// A single memory access: a byte address, a size and a direction.
///
/// Word-granularity accesses come out of the kernel access-stream
/// generator; after coalescing they become wide transactions, but the
/// type is the same.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Byte address in the device's flat physical address space.
    pub addr: u64,
    /// Size in bytes. Always non-zero.
    pub bytes: u32,
    /// Read or write.
    pub kind: AccessKind,
}

impl Access {
    /// Construct a read access.
    pub fn read(addr: u64, bytes: u32) -> Self {
        debug_assert!(bytes > 0);
        Access {
            addr,
            bytes,
            kind: AccessKind::Read,
        }
    }

    /// Construct a write access.
    pub fn write(addr: u64, bytes: u32) -> Self {
        debug_assert!(bytes > 0);
        Access {
            addr,
            bytes,
            kind: AccessKind::Write,
        }
    }

    /// Exclusive end address of the access.
    pub fn end(self) -> u64 {
        self.addr + self.bytes as u64
    }

    /// Whether `other` starts exactly where this access ends (candidates
    /// for coalescing into one transaction).
    pub fn abuts(self, other: &Access) -> bool {
        self.kind == other.kind && self.end() == other.addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_address() {
        assert_eq!(Access::read(100, 4).end(), 104);
    }

    #[test]
    fn abutting_same_kind() {
        let a = Access::read(0, 4);
        let b = Access::read(4, 4);
        assert!(a.abuts(&b));
        assert!(!b.abuts(&a));
    }

    #[test]
    fn abutting_requires_same_kind() {
        let a = Access::read(0, 4);
        let b = Access::write(4, 4);
        assert!(!a.abuts(&b));
    }

    #[test]
    fn kind_predicates() {
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Read.is_write());
        assert!(AccessKind::Write.is_write());
    }
}
