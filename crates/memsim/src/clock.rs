//! Clock-domain arithmetic.
//!
//! Every timed model in this crate runs in its own clock domain (a DRAM
//! bus clock, an FPGA kernel clock after synthesis, a GPU core clock…).
//! [`Freq`] converts between cycle counts in that domain and wall-clock
//! nanoseconds, which is the unit the benchmark ultimately reports.

/// A clock frequency, stored in megahertz.
///
/// Conversions use `f64` internally but cycle counts are integral; the
/// rounding direction is always *up* (a partial cycle still occupies the
/// resource), which keeps composed models conservative rather than
/// optimistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Freq {
    mhz: f64,
}

impl Freq {
    /// Create a frequency from megahertz. Panics on non-positive input.
    pub fn mhz(mhz: f64) -> Self {
        assert!(mhz > 0.0, "frequency must be positive, got {mhz} MHz");
        Freq { mhz }
    }

    /// Create a frequency from gigahertz.
    pub fn ghz(ghz: f64) -> Self {
        Freq::mhz(ghz * 1000.0)
    }

    /// The frequency in MHz.
    pub fn as_mhz(self) -> f64 {
        self.mhz
    }

    /// Length of one cycle in nanoseconds.
    pub fn period_ns(self) -> f64 {
        1000.0 / self.mhz
    }

    /// Convert a cycle count in this domain to (fractional) nanoseconds.
    pub fn cycles_to_ns(self, cycles: u64) -> f64 {
        cycles as f64 * self.period_ns()
    }

    /// Convert a nanosecond duration to whole cycles, rounding up.
    pub fn ns_to_cycles(self, ns: f64) -> u64 {
        assert!(ns >= 0.0, "negative duration");
        (ns / self.period_ns()).ceil() as u64
    }

    /// Scale this frequency by `factor` (e.g. synthesis-induced fmax
    /// degradation). Panics if the result would be non-positive.
    pub fn scaled(self, factor: f64) -> Freq {
        Freq::mhz(self.mhz * factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_of_1ghz_is_1ns() {
        let f = Freq::ghz(1.0);
        assert!((f.period_ns() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cycles_to_ns_round_trip() {
        let f = Freq::mhz(200.0); // 5 ns period
        assert_eq!(f.cycles_to_ns(4) as u64, 20);
        assert_eq!(f.ns_to_cycles(20.0), 4);
    }

    #[test]
    fn ns_to_cycles_rounds_up() {
        let f = Freq::mhz(100.0); // 10 ns period
        assert_eq!(f.ns_to_cycles(11.0), 2);
        assert_eq!(f.ns_to_cycles(10.0), 1);
        assert_eq!(f.ns_to_cycles(0.0), 0);
    }

    #[test]
    fn scaled_frequency() {
        let f = Freq::mhz(300.0).scaled(0.5);
        assert!((f.as_mhz() - 150.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_panics() {
        let _ = Freq::mhz(0.0);
    }
}
