//! Set-associative, write-back, write-allocate cache model.
//!
//! The cache tracks tags and dirty bits only — data lives in the mpcl
//! buffers and is handled by the functional interpreter, so the model
//! here answers a single question per access: *hit or miss, and did a
//! dirty line get evicted?* Replacement is true LRU per set (the set
//! sizes involved are small enough that a timestamp scan is fast).

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.ways as u64 * self.line_bytes as u64)
    }

    /// Validate the geometry (panics with a descriptive message).
    fn check(&self) {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.ways >= 1, "need at least one way");
        assert!(
            self.size_bytes
                .is_multiple_of(self.ways as u64 * self.line_bytes as u64),
            "capacity must be a whole number of sets"
        );
        assert!(self.sets() >= 1, "cache too small for its ways/line");
    }
}

/// Outcome of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupResult {
    /// Did the access hit?
    pub hit: bool,
    /// On a miss that evicted a dirty line: the base address of the line
    /// that must be written back to the next level.
    pub writeback: Option<u64>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    /// Full line number (`addr / line_bytes`); comparing whole line
    /// numbers instead of tags lets the set index be hashed.
    line_no: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
}

/// One level of cache.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>, // sets * ways
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build an empty (all-invalid) cache.
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.check();
        let n = (cfg.sets() * cfg.ways as u64) as usize;
        Cache {
            cfg,
            lines: vec![Line::default(); n],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The geometry of this cache.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Base address of the line containing `addr`.
    pub fn line_base(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes as u64 - 1)
    }

    /// Invalidate everything and zero the counters.
    pub fn reset(&mut self) {
        for l in &mut self.lines {
            *l = Line::default();
        }
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
    }

    /// Hashed set index: XOR-folding the line number before the modulo
    /// spreads power-of-two strides over all sets, as the index-hashing
    /// in real LLCs/GPU L2s does (without it, a 4 KiB-stride column
    /// traversal would collapse onto a handful of sets).
    fn set_base(&self, line_no: u64) -> usize {
        let sets = self.cfg.sets();
        let hashed = line_no ^ (line_no >> 7) ^ (line_no >> 14) ^ (line_no >> 21);
        (hashed % sets) as usize * self.cfg.ways as usize
    }

    /// Access one line. `addr` may be any byte inside the line; `write`
    /// marks the line dirty on hit or after fill (write-allocate).
    /// A miss fills the line (caller is responsible for charging the
    /// next-level fetch).
    pub fn access(&mut self, addr: u64, write: bool) -> LookupResult {
        self.tick += 1;
        let line_no = addr / self.cfg.line_bytes as u64;
        let base = self.set_base(line_no);
        let ways = self.cfg.ways as usize;

        // Hit path.
        for i in base..base + ways {
            let l = &mut self.lines[i];
            if l.valid && l.line_no == line_no {
                l.last_use = self.tick;
                l.dirty |= write;
                self.hits += 1;
                return LookupResult {
                    hit: true,
                    writeback: None,
                };
            }
        }

        // Miss: pick invalid way, else LRU victim.
        self.misses += 1;
        let mut victim = base;
        let mut best = u64::MAX;
        for i in base..base + ways {
            let l = &self.lines[i];
            if !l.valid {
                victim = i;
                break;
            }
            if l.last_use < best {
                best = l.last_use;
                victim = i;
            }
        }

        let evicted = self.lines[victim];
        let writeback = if evicted.valid && evicted.dirty {
            Some(evicted.line_no * self.cfg.line_bytes as u64)
        } else {
            None
        };

        self.lines[victim] = Line {
            line_no,
            valid: true,
            dirty: write,
            last_use: self.tick,
        };
        LookupResult {
            hit: false,
            writeback,
        }
    }

    /// Probe without modifying state: would `addr` hit?
    pub fn probe(&self, addr: u64) -> bool {
        let line_no = addr / self.cfg.line_bytes as u64;
        let base = self.set_base(line_no);
        (base..base + self.cfg.ways as usize)
            .any(|i| self.lines[i].valid && self.lines[i].line_no == line_no)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64 B = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.config().sets(), 4);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, false).hit);
        assert!(c.access(0, false).hit);
        assert!(c.access(63, false).hit, "same line");
        assert!(!c.access(64, false).hit, "next line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 holds lines whose address is a multiple of 4*64 = 256.
        c.access(0, false); // A
        c.access(256, false); // B — set full
        c.access(0, false); // touch A so B is LRU
        let r = c.access(512, false); // C evicts B
        assert!(!r.hit);
        assert!(c.probe(0), "A retained");
        assert!(!c.probe(256), "B evicted");
        assert!(c.probe(512));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0, true); // dirty A
        c.access(256, false); // B
        c.access(256, false); // keep B warm; A is LRU
        let r = c.access(512, false);
        assert_eq!(r.writeback, Some(0));
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0, false);
        c.access(256, false);
        c.access(256, false);
        let r = c.access(512, false);
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0, false); // clean fill
        c.access(0, true); // dirty it via hit
        c.access(256, false);
        c.access(256, false);
        let r = c.access(512, false);
        assert_eq!(r.writeback, Some(0));
    }

    #[test]
    fn streaming_larger_than_capacity_always_misses() {
        let mut c = tiny();
        for pass in 0..2 {
            for line in 0..16u64 {
                let r = c.access(line * 64, false);
                assert!(!r.hit, "pass {pass} line {line}");
            }
        }
    }

    #[test]
    fn working_set_within_capacity_hits_on_second_pass() {
        let mut c = tiny();
        for line in 0..8u64 {
            c.access(line * 64, false);
        }
        for line in 0..8u64 {
            assert!(c.access(line * 64, false).hit);
        }
    }

    #[test]
    fn reset_invalidates() {
        let mut c = tiny();
        c.access(0, true);
        c.reset();
        assert!(!c.probe(0));
        assert_eq!(c.misses(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 48,
        });
    }
}
