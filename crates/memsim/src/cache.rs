//! Set-associative, write-back, write-allocate cache model.
//!
//! The cache tracks tags and dirty bits only — data lives in the mpcl
//! buffers and is handled by the functional interpreter, so the model
//! here answers a single question per access: *hit or miss, and did a
//! dirty line get evicted?* Replacement is true LRU per set (the set
//! sizes involved are small enough that a timestamp scan is fast).

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.ways as u64 * self.line_bytes as u64)
    }

    /// Validate the geometry (panics with a descriptive message).
    fn check(&self) {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.ways >= 1, "need at least one way");
        assert!(
            self.size_bytes
                .is_multiple_of(self.ways as u64 * self.line_bytes as u64),
            "capacity must be a whole number of sets"
        );
        assert!(self.sets() >= 1, "cache too small for its ways/line");
    }
}

/// Outcome of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupResult {
    /// Did the access hit?
    pub hit: bool,
    /// On a miss that evicted a dirty line: the base address of the line
    /// that must be written back to the next level.
    pub writeback: Option<u64>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    /// Full line number (`addr / line_bytes`); comparing whole line
    /// numbers instead of tags lets the set index be hashed.
    line_no: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
}

/// One level of cache.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>, // sets * ways
    /// `cfg.sets()` hoisted out of the per-access path (it divides).
    sets: u64,
    /// `sets - 1` when the set count is a power of two (mask instead of
    /// modulo on the access path); 0 otherwise.
    set_mask: u64,
    /// `log2(line_bytes)` — line numbers by shift instead of division.
    line_shift: u32,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build an empty (all-invalid) cache.
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.check();
        let sets = cfg.sets();
        let n = (sets * cfg.ways as u64) as usize;
        Cache {
            cfg,
            lines: vec![Line::default(); n],
            sets,
            set_mask: if sets.is_power_of_two() { sets - 1 } else { 0 },
            line_shift: cfg.line_bytes.trailing_zeros(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The geometry of this cache.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Base address of the line containing `addr`.
    pub fn line_base(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes as u64 - 1)
    }

    /// Invalidate everything and zero the counters.
    pub fn reset(&mut self) {
        for l in &mut self.lines {
            *l = Line::default();
        }
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
    }

    /// Hashed set index: XOR-folding the line number before the modulo
    /// spreads power-of-two strides over all sets, as the index-hashing
    /// in real LLCs/GPU L2s does (without it, a 4 KiB-stride column
    /// traversal would collapse onto a handful of sets).
    fn set_base(&self, line_no: u64) -> usize {
        let hashed = line_no ^ (line_no >> 7) ^ (line_no >> 14) ^ (line_no >> 21);
        let set = if self.set_mask != 0 {
            hashed & self.set_mask
        } else {
            hashed % self.sets
        };
        set as usize * self.cfg.ways as usize
    }

    /// Way index holding `line_no`, if cached. Shared by the access and
    /// probe paths.
    #[inline]
    fn find_way(&self, base: usize, line_no: u64) -> Option<usize> {
        (base..base + self.cfg.ways as usize)
            .find(|&i| self.lines[i].valid && self.lines[i].line_no == line_no)
    }

    /// Install `line_no` over the set's invalid or LRU way; returns the
    /// base address of a displaced dirty line.
    fn install(&mut self, base: usize, line_no: u64, write: bool) -> Option<u64> {
        let mut victim = base;
        let mut best = u64::MAX;
        for i in base..base + self.cfg.ways as usize {
            let l = &self.lines[i];
            if !l.valid {
                victim = i;
                break;
            }
            if l.last_use < best {
                best = l.last_use;
                victim = i;
            }
        }

        let evicted = self.lines[victim];
        let writeback = if evicted.valid && evicted.dirty {
            Some(evicted.line_no << self.line_shift)
        } else {
            None
        };

        self.lines[victim] = Line {
            line_no,
            valid: true,
            dirty: write,
            last_use: self.tick,
        };
        writeback
    }

    /// Access one line. `addr` may be any byte inside the line; `write`
    /// marks the line dirty on hit or after fill (write-allocate).
    /// A miss fills the line (caller is responsible for charging the
    /// next-level fetch).
    pub fn access(&mut self, addr: u64, write: bool) -> LookupResult {
        self.access_line_no(addr >> self.line_shift, write)
    }

    /// [`Cache::access`] by pre-divided line number — the per-line
    /// bookkeeping shared by the single-access path, the batched
    /// [`Cache::access_run`] and the hierarchy's line walk.
    pub fn access_line_no(&mut self, line_no: u64, write: bool) -> LookupResult {
        self.tick += 1;
        let base = self.set_base(line_no);
        if let Some(i) = self.find_way(base, line_no) {
            let l = &mut self.lines[i];
            l.last_use = self.tick;
            l.dirty |= write;
            self.hits += 1;
            return LookupResult {
                hit: true,
                writeback: None,
            };
        }
        self.misses += 1;
        let writeback = self.install(base, line_no, write);
        LookupResult {
            hit: false,
            writeback,
        }
    }

    /// Batch entry point for a coalesced segment: access `count`
    /// consecutive lines starting at the line containing `addr`, exactly
    /// as `count` calls to [`Cache::access`] would. The per-line
    /// [`LookupResult`] is streamed to `visit` (with the line index
    /// within the run) in access order, so callers can interleave their
    /// own timing model while the line-number arithmetic and set
    /// bookkeeping stay inside the cache.
    pub fn access_run(
        &mut self,
        addr: u64,
        count: u32,
        write: bool,
        mut visit: impl FnMut(u32, LookupResult),
    ) {
        let first = addr >> self.line_shift;
        for i in 0..count {
            let res = self.access_line_no(first + u64::from(i), write);
            visit(i, res);
        }
    }

    /// Probe without modifying state: would `addr` hit?
    pub fn probe(&self, addr: u64) -> bool {
        let line_no = addr >> self.line_shift;
        self.find_way(self.set_base(line_no), line_no).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64 B = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.config().sets(), 4);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, false).hit);
        assert!(c.access(0, false).hit);
        assert!(c.access(63, false).hit, "same line");
        assert!(!c.access(64, false).hit, "next line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 holds lines whose address is a multiple of 4*64 = 256.
        c.access(0, false); // A
        c.access(256, false); // B — set full
        c.access(0, false); // touch A so B is LRU
        let r = c.access(512, false); // C evicts B
        assert!(!r.hit);
        assert!(c.probe(0), "A retained");
        assert!(!c.probe(256), "B evicted");
        assert!(c.probe(512));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0, true); // dirty A
        c.access(256, false); // B
        c.access(256, false); // keep B warm; A is LRU
        let r = c.access(512, false);
        assert_eq!(r.writeback, Some(0));
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0, false);
        c.access(256, false);
        c.access(256, false);
        let r = c.access(512, false);
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0, false); // clean fill
        c.access(0, true); // dirty it via hit
        c.access(256, false);
        c.access(256, false);
        let r = c.access(512, false);
        assert_eq!(r.writeback, Some(0));
    }

    #[test]
    fn streaming_larger_than_capacity_always_misses() {
        let mut c = tiny();
        for pass in 0..2 {
            for line in 0..16u64 {
                let r = c.access(line * 64, false);
                assert!(!r.hit, "pass {pass} line {line}");
            }
        }
    }

    #[test]
    fn working_set_within_capacity_hits_on_second_pass() {
        let mut c = tiny();
        for line in 0..8u64 {
            c.access(line * 64, false);
        }
        for line in 0..8u64 {
            assert!(c.access(line * 64, false).hit);
        }
    }

    #[test]
    fn reset_invalidates() {
        let mut c = tiny();
        c.access(0, true);
        c.reset();
        assert!(!c.probe(0));
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn access_run_matches_per_line_access() {
        // Drive a batched cache and a per-line twin with the same
        // SplitMix64 request sequence; every outcome and counter must
        // match exactly.
        let mut batched = tiny();
        let mut serial = tiny();
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _ in 0..500 {
            let r = next();
            let addr = r % 4096;
            let count = ((r >> 32) % 5 + 1) as u32;
            let write = r & 1 == 0;
            let mut batch_out = Vec::new();
            batched.access_run(addr, count, write, |i, res| batch_out.push((i, res)));
            let first_line = addr & !63;
            for i in 0..count {
                let res = serial.access(first_line + u64::from(i) * 64, write);
                assert_eq!(batch_out[i as usize], (i, res));
            }
            assert_eq!(batched.hits(), serial.hits());
            assert_eq!(batched.misses(), serial.misses());
        }
    }

    #[test]
    fn hashed_index_same_for_pow2_and_generic_path() {
        // 3-way cache: 512*3/… pick sets not a power of two to exercise
        // the modulo path against the mask path on a pow2 twin with the
        // same geometry ratios — here we simply pin that a non-pow2 set
        // count still spreads and retains lines correctly.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 3 * 128,
            ways: 2,
            line_bytes: 64,
        });
        assert_eq!(c.config().sets(), 3);
        for line in 0..6u64 {
            c.access(line * 64, false);
        }
        for line in 0..6u64 {
            assert!(c.probe(line * 64), "line {line} retained");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 48,
        });
    }
}
