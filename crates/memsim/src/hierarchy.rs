//! Composed memory hierarchy with a bounded-MLP cost model.
//!
//! [`MemHierarchy`] strings together an optional TLB, up to three cache
//! levels, an optional stream prefetcher and a [`Dram`] device, and runs
//! an access stream through them with an event-driven cost model:
//!
//! * the front end issues accesses at a configurable streaming rate
//!   (`issue_bytes_per_ns` — aggregate core/pipeline issue bandwidth);
//! * each demand miss occupies one of `mlp` outstanding-miss slots; when
//!   all slots are busy the front end stalls until the earliest miss
//!   returns (this is what makes dependent/irregular streams
//!   latency-bound while leaving streamed traffic bandwidth-bound);
//! * prefetches and writebacks occupy DRAM bus time but no miss slot —
//!   they overlap with demand traffic, as in real memory controllers;
//! * total time covers every outstanding transaction and is stretched by
//!   the DRAM refresh overhead.
//!
//! Devices without caches (the FPGA targets) use the same engine with no
//! cache levels: every access becomes a DRAM transaction, and `mlp`
//! models the number of outstanding bursts the synthesized load/store
//! units support.

use crate::cache::{Cache, CacheConfig};
use crate::dram::{Dram, DramConfig};
use crate::prefetch::StreamPrefetcher;
use crate::req::{Access, AccessKind};
use crate::stats::MemStats;
use crate::tlb::Tlb;
use std::collections::HashMap;

/// How stores that miss the cache are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Classic write-allocate: a store miss fetches the line (read for
    /// ownership), dirties it, and the line is written back on eviction.
    /// A copy kernel then moves 3 bytes of DRAM traffic per 2 bytes of
    /// payload.
    WriteAllocate,
    /// Streaming / non-temporal stores with write combining: store
    /// misses post full lines straight to DRAM without fetching them.
    Streaming,
}

/// TLB parameters for the hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: usize,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Serialized page-walk cost per miss, nanoseconds.
    pub walk_ns: f64,
}

/// Prefetcher parameters for the hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct PrefetchConfig {
    /// Lines to run ahead of a confirmed demand stream.
    pub degree: u32,
}

/// Full hierarchy configuration.
#[derive(Debug, Clone)]
pub struct MemHierarchyConfig {
    /// Cache levels, innermost first. Empty for cacheless devices.
    pub caches: Vec<CacheConfig>,
    /// Serial cost charged per access that hits at the corresponding
    /// level (amortized over the core's ability to overlap hits), ns.
    pub hit_ns: Vec<f64>,
    /// Optional TLB.
    pub tlb: Option<TlbConfig>,
    /// Optional stream prefetcher (detects at last-level-cache misses).
    pub prefetch: Option<PrefetchConfig>,
    /// DRAM device configuration.
    pub dram: DramConfig,
    /// Aggregate front-end issue bandwidth, bytes per nanosecond.
    pub issue_bytes_per_ns: f64,
    /// Fixed front-end cost per access, ns (transaction-rate limits:
    /// pipeline initiation interval on FPGAs, LSU/interconnect slots on
    /// GPUs). Zero for purely byte-rate-limited front ends.
    pub issue_ns_per_access: f64,
    /// Maximum outstanding demand misses (memory-level parallelism).
    pub mlp: usize,
    /// Extra on-chip latency added to every demand DRAM round trip, ns.
    pub dram_extra_latency_ns: f64,
    /// Store-miss policy.
    pub write_policy: WritePolicy,
    /// Write-combining drain granularity for streaming stores, bytes:
    /// contiguous store runs are posted to DRAM in batches of this size
    /// (memory-controller write queues drain in bursts, avoiding a bus
    /// turnaround per line).
    pub wc_flush_bytes: u32,
}

impl MemHierarchyConfig {
    fn check(&self) {
        assert_eq!(
            self.caches.len(),
            self.hit_ns.len(),
            "one hit cost per cache level"
        );
        assert!(self.caches.len() <= 3, "at most three cache levels");
        assert!(self.mlp >= 1, "need at least one outstanding miss");
        assert!(self.issue_bytes_per_ns > 0.0);
    }
}

/// Result of running an access stream.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// Wall-clock time the stream took, nanoseconds (refresh-derated).
    pub ns: f64,
    /// Event counters for the run.
    pub stats: MemStats,
    /// Accesses actually simulated (differs from the nominal stream
    /// length when sampling extrapolation was used).
    pub simulated_accesses: u64,
}

impl StreamOutcome {
    /// Bandwidth for `useful_bytes` of payload, GB/s (1 GB = 1e9 B).
    pub fn bandwidth_gbps(&self, useful_bytes: u64) -> f64 {
        useful_bytes as f64 / self.ns
    }
}

/// The composed, stateful hierarchy.
#[derive(Debug, Clone)]
pub struct MemHierarchy {
    cfg: MemHierarchyConfig,
    caches: Vec<Cache>,
    tlb: Option<Tlb>,
    prefetcher: Option<StreamPrefetcher>,
    dram: Dram,
}

impl MemHierarchy {
    /// Build the hierarchy in a cold state.
    pub fn new(cfg: MemHierarchyConfig) -> Self {
        cfg.check();
        let caches: Vec<Cache> = cfg.caches.iter().map(|c| Cache::new(*c)).collect();
        let tlb = cfg.tlb.map(|t| Tlb::new(t.entries, t.page_bytes));
        let line = caches.first().map(|c| c.config().line_bytes).unwrap_or(64);
        let prefetcher = cfg.prefetch.map(|p| StreamPrefetcher::new(line, p.degree));
        let dram = Dram::new(cfg.dram.clone());
        MemHierarchy {
            cfg,
            caches,
            tlb,
            prefetcher,
            dram,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MemHierarchyConfig {
        &self.cfg
    }

    /// Reset all dynamic state (cold caches, idle DRAM).
    pub fn reset(&mut self) {
        for c in &mut self.caches {
            c.reset();
        }
        if let Some(t) = &mut self.tlb {
            t.reset();
        }
        if let Some(p) = &mut self.prefetcher {
            p.reset();
        }
        self.dram.reset();
    }

    /// Run a complete access stream and return its cost. Use
    /// [`MemHierarchy::run_sampled`] for very long streams.
    pub fn run(&mut self, stream: impl IntoIterator<Item = Access>) -> StreamOutcome {
        self.run_engine(stream.into_iter(), u64::MAX)
    }

    /// Run up to `cap` accesses of a stream that nominally contains
    /// `total` accesses; if truncated, the cost is extrapolated linearly
    /// (streaming workloads are steady-state, so the prefix rate is
    /// representative).
    pub fn run_sampled(
        &mut self,
        stream: impl IntoIterator<Item = Access>,
        total: u64,
        cap: u64,
    ) -> StreamOutcome {
        let mut out = self.run_engine(stream.into_iter(), cap);
        if out.simulated_accesses < total && out.simulated_accesses > 0 {
            let scale = total as f64 / out.simulated_accesses as f64;
            out.ns *= scale;
        }
        out
    }

    fn line_bytes(&self) -> u64 {
        self.caches
            .first()
            .map(|c| c.config().line_bytes as u64)
            .unwrap_or(0)
    }

    fn run_engine(&mut self, stream: impl Iterator<Item = Access>, cap: u64) -> StreamOutcome {
        let mut stats = MemStats::new();
        // Snapshot cumulative model counters so the outcome reports
        // per-run deltas even when state is carried across runs.
        let cache_base: Vec<(u64, u64)> =
            self.caches.iter().map(|c| (c.hits(), c.misses())).collect();
        let dram_base = self.dram.stats().clone();
        let pf_base = self.prefetcher.as_ref().map(|p| p.issued()).unwrap_or(0);
        let mut t = 0.0f64; // front-end time, ns
        let mut outstanding: Vec<f64> = Vec::with_capacity(self.cfg.mlp);
        let mut pf_ready: HashMap<u64, f64> = HashMap::new();
        let mut last_done = 0.0f64; // completion horizon of posted traffic
                                    // Write-combining run for streaming stores: [start, end) bytes.
        let mut wc_run: Option<(u64, u64)> = None;
        let mut n = 0u64;

        let issue_inv = 1.0 / self.cfg.issue_bytes_per_ns;
        let line = self.line_bytes();

        for acc in stream {
            if n >= cap {
                break;
            }
            n += 1;

            // Front-end issue cost.
            t += acc.bytes as f64 * issue_inv + self.cfg.issue_ns_per_access;
            match acc.kind {
                AccessKind::Read => {
                    stats.reads += 1;
                    stats.bytes_read += acc.bytes as u64;
                }
                AccessKind::Write => {
                    stats.writes += 1;
                    stats.bytes_written += acc.bytes as u64;
                }
            }

            // Address translation.
            if let Some(tlb) = &mut self.tlb {
                if tlb.access(acc.addr) {
                    stats.tlb_hits += 1;
                } else {
                    stats.tlb_misses += 1;
                    t += self.cfg.tlb.as_ref().expect("tlb cfg").walk_ns;
                }
            }

            if self.caches.is_empty() {
                // Cacheless device: the access *is* the DRAM transaction.
                self.issue_demand(acc, &mut t, &mut outstanding, &mut last_done);
                continue;
            }

            // Walk each cache line the access touches.
            let first = acc.addr & !(line - 1);
            let mut lb = first;
            while lb < acc.end() {
                let full_line = acc.addr <= lb && acc.end() >= lb + line;
                self.access_line(
                    lb,
                    acc.kind,
                    full_line,
                    &mut t,
                    &mut stats,
                    &mut outstanding,
                    &mut pf_ready,
                    &mut last_done,
                    &mut wc_run,
                );
                lb += line;
            }
        }

        // Drain: flush the write-combining tail, then wait for every
        // outstanding transaction and posted write.
        if let Some((start, end)) = wc_run.take() {
            let cycles_at = self.dram.ns_to_cycles(t);
            let (_, done) = self
                .dram
                .service(cycles_at, Access::write(start, (end - start) as u32));
            last_done = last_done.max(self.dram.cycles_to_ns(done));
        }
        for c in outstanding {
            t = t.max(c);
        }
        t = t.max(last_done);

        // Fold model-level counter deltas into the outcome.
        for (i, c) in self.caches.iter().enumerate() {
            stats.cache_hits[i] = c.hits() - cache_base[i].0;
            stats.cache_misses[i] = c.misses() - cache_base[i].1;
        }
        let d = self.dram.stats();
        stats.merge(&MemStats {
            row_hits: d.row_hits - dram_base.row_hits,
            row_misses: d.row_misses - dram_base.row_misses,
            row_empty: d.row_empty - dram_base.row_empty,
            bus_turnarounds: d.bus_turnarounds - dram_base.bus_turnarounds,
            dram_transactions: d.dram_transactions - dram_base.dram_transactions,
            dram_bytes: d.dram_bytes - dram_base.dram_bytes,
            ..MemStats::new()
        });
        if let Some(p) = &self.prefetcher {
            stats.prefetches_issued = p.issued() - pf_base;
        }

        StreamOutcome {
            ns: self.dram.derate_ns(t),
            stats,
            simulated_accesses: n,
        }
    }

    /// One cache-line-granular access through the cache levels.
    #[allow(clippy::too_many_arguments)]
    fn access_line(
        &mut self,
        line_base: u64,
        kind: AccessKind,
        full_line: bool,
        t: &mut f64,
        stats: &mut MemStats,
        outstanding: &mut Vec<f64>,
        pf_ready: &mut HashMap<u64, f64>,
        last_done: &mut f64,
        wc_run: &mut Option<(u64, u64)>,
    ) {
        let is_write = kind.is_write();
        let line = self.line_bytes();
        let streaming_store = is_write && self.cfg.write_policy == WritePolicy::Streaming;

        // Streaming stores bypass allocation entirely unless the line is
        // already cached (in which case they behave like normal stores).
        if streaming_store && !self.caches.iter().any(|c| c.probe(line_base)) {
            // Write-combining: contiguous store runs accumulate and drain
            // to DRAM in `wc_flush_bytes` batches.
            let flush = self.cfg.wc_flush_bytes.max(line as u32) as u64;
            match wc_run {
                // Further words into a line already buffered in the run.
                Some((start, end)) if line_base >= *start && line_base < *end => {}
                Some((start, end)) if *end == line_base && *end - *start < flush => {
                    *end += line;
                }
                _ => {
                    if let Some((start, end)) = wc_run.take() {
                        let cycles_at = self.dram.ns_to_cycles(*t);
                        let (_, done) = self
                            .dram
                            .service(cycles_at, Access::write(start, (end - start) as u32));
                        *last_done = last_done.max(self.dram.cycles_to_ns(done));
                    }
                    *wc_run = Some((line_base, line_base + line));
                }
            }
            return;
        }

        // Look up levels innermost-out.
        let levels = self.caches.len();
        for lvl in 0..levels {
            let res = self.caches[lvl].access(line_base, is_write && lvl == 0);
            if res.hit {
                *t += self.cfg.hit_ns[lvl];
                // Fill the line into the levels above (inclusive-ish).
                for up in (0..lvl).rev() {
                    let fill = self.caches[up].access(line_base, is_write && up == 0);
                    if let Some(wb) = fill.writeback {
                        // Dirty line displaced from an upper level lands
                        // in this level; mark it dirty here.
                        self.caches[lvl].access(wb, true);
                    }
                }
                return;
            }
            // Miss at this level: dirty victim falls to the next level.
            if let Some(wb) = res.writeback {
                if lvl + 1 < levels {
                    self.caches[lvl + 1].access(wb, true);
                } else {
                    stats.writebacks += 1;
                    let cycles_at = self.dram.ns_to_cycles(*t);
                    let (_, done) = self.dram.service(cycles_at, Access::write(wb, line as u32));
                    *last_done = last_done.max(self.dram.cycles_to_ns(done));
                }
            }
        }

        // Write-validate: a store covering the whole line allocates it
        // dirty without a read-for-ownership fetch (as sectored GPU L2s
        // and modern CPU "full-line write" optimizations do). The lookup
        // walk above already installed the line (dirty at L1) and handled
        // the victim writeback — skipping the fetch is the optimization.
        if is_write && full_line && levels > 0 {
            return;
        }

        // Missed every level. Prefetched already?
        if let Some(ready) = pf_ready.remove(&line_base) {
            stats.prefetch_hits += 1;
            *t = t.max(ready);
            *t += *self.cfg.hit_ns.last().unwrap_or(&0.0);
        } else {
            self.issue_demand(
                Access {
                    addr: line_base,
                    bytes: line as u32,
                    kind: AccessKind::Read,
                },
                t,
                outstanding,
                last_done,
            );
        }

        // Train the prefetcher on the demand-miss address stream.
        if let Some(pf) = &mut self.prefetcher {
            let lines = pf.on_miss(line_base);
            for pline in lines {
                if pf_ready.contains_key(&pline) {
                    continue;
                }
                let cycles_at = self.dram.ns_to_cycles(*t);
                let (_, done) = self
                    .dram
                    .service(cycles_at, Access::read(pline, line as u32));
                let ready = self.dram.cycles_to_ns(done) + self.cfg.dram_extra_latency_ns;
                pf_ready.insert(pline, ready);
                *last_done = last_done.max(ready);
            }
            // Bound the prefetch table (streams were evicted, entries stale).
            if pf_ready.len() > 4096 {
                pf_ready.clear();
            }
        }
    }

    /// Issue a demand DRAM transaction through the MLP window.
    fn issue_demand(
        &mut self,
        acc: Access,
        t: &mut f64,
        outstanding: &mut Vec<f64>,
        last_done: &mut f64,
    ) {
        if outstanding.len() == self.cfg.mlp {
            // Stall until the earliest outstanding miss completes.
            let (idx, _) = outstanding
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN times"))
                .expect("non-empty");
            let earliest = outstanding.swap_remove(idx);
            *t = t.max(earliest);
        }
        let cycles_at = self.dram.ns_to_cycles(*t);
        let (_, done) = self.dram.service(cycles_at, acc);
        let done_ns = self.dram.cycles_to_ns(done) + self.cfg.dram_extra_latency_ns;
        outstanding.push(done_ns);
        *last_done = last_done.max(done_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Freq;

    fn dram_cfg() -> DramConfig {
        DramConfig {
            channels: 2,
            banks_per_channel: 8,
            row_bytes: 2048,
            bus_bytes_per_cycle: 8,
            freq: Freq::mhz(1000.0),
            t_cas: 10,
            t_rcd: 10,
            t_rp: 10,
            t_turnaround: 6,
            refresh_overhead: 0.0,
            interleave_bytes: 256,
        }
    }

    fn cpu_like(mlp: usize, prefetch: bool) -> MemHierarchy {
        MemHierarchy::new(MemHierarchyConfig {
            caches: vec![
                CacheConfig {
                    size_bytes: 32 * 1024,
                    ways: 8,
                    line_bytes: 64,
                },
                CacheConfig {
                    size_bytes: 256 * 1024,
                    ways: 8,
                    line_bytes: 64,
                },
            ],
            hit_ns: vec![0.0, 2.0],
            tlb: Some(TlbConfig {
                entries: 64,
                page_bytes: 4096,
                walk_ns: 30.0,
            }),
            // Degree must cover the latency-bandwidth product (~17 lines
            // here) for the stream to become bus-bound.
            prefetch: prefetch.then_some(PrefetchConfig { degree: 32 }),
            dram: dram_cfg(),
            issue_bytes_per_ns: 32.0,
            issue_ns_per_access: 0.0,
            mlp,
            dram_extra_latency_ns: 40.0,
            write_policy: WritePolicy::WriteAllocate,
            wc_flush_bytes: 512,
        })
    }

    fn seq_reads(n: u64, step: u64) -> impl Iterator<Item = Access> {
        (0..n).map(move |i| Access::read(i * step, 4))
    }

    #[test]
    fn contiguous_with_prefetch_beats_without() {
        let n = 200_000;
        let with = cpu_like(8, true).run(seq_reads(n, 4));
        let without = cpu_like(8, false).run(seq_reads(n, 4));
        assert!(
            with.ns < without.ns * 0.7,
            "prefetch {} vs none {}",
            with.ns,
            without.ns
        );
        assert!(with.stats.prefetch_hits > 0);
    }

    #[test]
    fn contiguous_prefetched_stream_approaches_dram_peak() {
        let n = 500_000u64;
        let mut h = cpu_like(16, true);
        let out = h.run(seq_reads(n, 4));
        let gbps = out.bandwidth_gbps(n * 4);
        let peak = dram_cfg().peak_gbps();
        assert!(gbps > 0.6 * peak, "gbps {gbps} peak {peak}");
    }

    #[test]
    fn strided_large_stride_is_latency_bound() {
        let n = 50_000u64;
        // 4 KiB stride: every access a new page and a new DRAM row.
        let contig = cpu_like(8, true).run(seq_reads(n, 4));
        let strided = cpu_like(8, true).run(seq_reads(n, 4096));
        assert!(
            strided.ns > contig.ns * 4.0,
            "strided {} contig {}",
            strided.ns,
            contig.ns
        );
    }

    #[test]
    fn higher_mlp_helps_irregular_streams() {
        let n = 20_000u64;
        let lo = cpu_like(1, false).run(seq_reads(n, 4096));
        let hi = cpu_like(16, false).run(seq_reads(n, 4096));
        assert!(hi.ns < lo.ns * 0.5, "hi {} lo {}", hi.ns, lo.ns);
    }

    #[test]
    fn cache_resident_second_pass_is_fast() {
        let mut h = cpu_like(8, false);
        // 16 KiB working set fits L1.
        let pass1 = h.run(seq_reads(4096, 4));
        // Note: `run` does not reset state, so the second pass hits.
        let pass2 = h.run(seq_reads(4096, 4));
        assert!(
            pass2.ns < pass1.ns * 0.25,
            "p2 {} p1 {}",
            pass2.ns,
            pass1.ns
        );
        assert_eq!(pass2.stats.cache_misses[0], 0);
    }

    #[test]
    fn write_allocate_generates_writebacks_and_fills() {
        let n = 400_000u64;
        let mut h = cpu_like(8, false);
        let out = h.run((0..n).map(|i| Access::write(i * 4, 4)));
        assert!(out.stats.writebacks > 0, "dirty lines must be written back");
        // RFO: roughly one fill per line plus one writeback per line.
        let lines = n * 4 / 64;
        assert!(out.stats.dram_transactions as f64 > 1.5 * lines as f64);
    }

    #[test]
    fn streaming_stores_halve_write_traffic() {
        let n = 400_000u64;
        let mut cfg_wa = cpu_like(8, false);
        let mut cfg_nt = cpu_like(8, false);
        cfg_nt.cfg.write_policy = WritePolicy::Streaming;
        let wa = cfg_wa.run((0..n).map(|i| Access::write(i * 4, 4)));
        let nt = cfg_nt.run((0..n).map(|i| Access::write(i * 4, 4)));
        assert!(
            (nt.stats.dram_bytes as f64) < 0.6 * wa.stats.dram_bytes as f64,
            "nt {} wa {}",
            nt.stats.dram_bytes,
            wa.stats.dram_bytes
        );
    }

    #[test]
    fn cacheless_device_every_access_hits_dram() {
        let mut h = MemHierarchy::new(MemHierarchyConfig {
            caches: vec![],
            hit_ns: vec![],
            tlb: None,
            prefetch: None,
            dram: dram_cfg(),
            issue_bytes_per_ns: 8.0,
            issue_ns_per_access: 0.0,
            mlp: 4,
            dram_extra_latency_ns: 100.0,
            write_policy: WritePolicy::WriteAllocate,
            wc_flush_bytes: 512,
        });
        let out = h.run(seq_reads(1000, 4));
        assert_eq!(out.stats.dram_transactions, 1000);
    }

    #[test]
    fn sampling_extrapolates_linearly() {
        let mut h1 = cpu_like(8, true);
        let mut h2 = cpu_like(8, true);
        let full = h1.run(seq_reads(100_000, 4));
        let sampled = h2.run_sampled(seq_reads(100_000, 4), 100_000, 50_000);
        let ratio = sampled.ns / full.ns;
        assert!(ratio > 0.8 && ratio < 1.25, "ratio {ratio}");
        assert_eq!(sampled.simulated_accesses, 50_000);
    }

    #[test]
    fn tlb_misses_slow_the_stream() {
        let n = 20_000u64;
        let mut no_walk = cpu_like(8, false);
        no_walk.cfg.tlb = Some(TlbConfig {
            entries: 64,
            page_bytes: 4096,
            walk_ns: 0.0,
        });
        no_walk.tlb = Some(Tlb::new(64, 4096));
        let base = no_walk.run(seq_reads(n, 4096));
        let with = cpu_like(8, false).run(seq_reads(n, 4096));
        // Page walks serialize; DRAM work overlaps them, so the run is
        // at least walk-bound and strictly slower than the no-walk run.
        assert!(with.ns > base.ns, "with {} base {}", with.ns, base.ns);
        assert!(with.ns > 0.9 * (n as f64) * 30.0, "with {}", with.ns);
    }

    #[test]
    fn outcome_bandwidth_helper() {
        let out = StreamOutcome {
            ns: 1000.0,
            stats: MemStats::new(),
            simulated_accesses: 0,
        };
        assert!((out.bandwidth_gbps(4000) - 4.0).abs() < 1e-12);
    }
}
