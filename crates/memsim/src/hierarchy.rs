//! Composed memory hierarchy with a bounded-MLP cost model.
//!
//! [`MemHierarchy`] strings together an optional TLB, up to three cache
//! levels, an optional stream prefetcher and a [`Dram`] device, and runs
//! an access stream through them with an event-driven cost model:
//!
//! * the front end issues accesses at a configurable streaming rate
//!   (`issue_bytes_per_ns` — aggregate core/pipeline issue bandwidth);
//! * each demand miss occupies one of `mlp` outstanding-miss slots; when
//!   all slots are busy the front end stalls until the earliest miss
//!   returns (this is what makes dependent/irregular streams
//!   latency-bound while leaving streamed traffic bandwidth-bound);
//! * prefetches and writebacks occupy DRAM bus time but no miss slot —
//!   they overlap with demand traffic, as in real memory controllers;
//! * total time covers every outstanding transaction and is stretched by
//!   the DRAM refresh overhead.
//!
//! Devices without caches (the FPGA targets) use the same engine with no
//! cache levels: every access becomes a DRAM transaction, and `mlp`
//! models the number of outstanding bursts the synthesized load/store
//! units support.

use crate::cache::{Cache, CacheConfig};
use crate::dram::{Dram, DramConfig};
use crate::prefetch::StreamPrefetcher;
use crate::req::{Access, AccessKind};
use crate::stats::MemStats;
use crate::tlb::Tlb;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Accesses pulled from the stream per batch in the fast engine. Large
/// enough to amortize the per-chunk bookkeeping, small enough to stay in
/// L1.
const CHUNK: usize = 512;

/// Multiplicative hasher for cache-line addresses. The prefetch table is
/// keyed by line base addresses — already well distributed — so SipHash's
/// collision resistance buys nothing and its per-lookup cost dominates
/// the miss path. Map *semantics* (contains/insert/remove/len) do not
/// depend on the hasher, so swapping it cannot change any outcome.
#[derive(Debug, Default)]
struct LineHasher(u64);

impl Hasher for LineHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (FNV-1a); the hot path uses `write_u64`.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let mut z = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z ^= z >> 32;
        self.0 = z;
    }
}

type PfMap = HashMap<u64, f64, BuildHasherDefault<LineHasher>>;

/// Binary min-heap over completion times, replacing the reference
/// engine's O(mlp) linear scan per demand miss (the GPU model runs with
/// an MLP window of several hundred slots).
///
/// Byte-identity argument: the reference pops *a* minimum from the window
/// and folds `t = t.max(min)`; ties are interchangeable because only the
/// popped value (not its index) feeds the clock, and the remaining
/// multiset is the same either way. The final drain is a max-fold, which
/// is order-independent for NaN-free `f64`.
#[derive(Debug, Default)]
struct DoneHeap(Vec<f64>);

impl DoneHeap {
    fn with_capacity(n: usize) -> Self {
        DoneHeap(Vec::with_capacity(n))
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn push(&mut self, v: f64) {
        self.0.push(v);
        let mut i = self.0.len() - 1;
        while i > 0 {
            let p = (i - 1) / 2;
            if self.0[p] <= self.0[i] {
                break;
            }
            self.0.swap(p, i);
            i = p;
        }
    }

    fn pop_min(&mut self) -> f64 {
        let min = self.0[0];
        let last = self.0.pop().expect("non-empty");
        if !self.0.is_empty() {
            self.0[0] = last;
            let mut i = 0;
            loop {
                let l = 2 * i + 1;
                if l >= self.0.len() {
                    break;
                }
                let mut c = l;
                let r = l + 1;
                if r < self.0.len() && self.0[r] < self.0[l] {
                    c = r;
                }
                if self.0[i] <= self.0[c] {
                    break;
                }
                self.0.swap(i, c);
                i = c;
            }
        }
        min
    }

    /// Max-fold every outstanding completion into `t` (the final drain).
    fn fold_max(&self, mut t: f64) -> f64 {
        for &c in &self.0 {
            t = t.max(c);
        }
        t
    }
}

/// Mutable per-run state of the fast engine, grouped so the per-line
/// helper takes one argument instead of six.
#[derive(Debug)]
struct FastEngine {
    outstanding: DoneHeap,
    pf_ready: PfMap,
    last_done: f64,
    wc_run: Option<(u64, u64)>,
    /// Reusable prefetch-address buffer (the reference path allocates a
    /// fresh `Vec` on every last-level miss).
    pf_buf: Vec<u64>,
}

/// How stores that miss the cache are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Classic write-allocate: a store miss fetches the line (read for
    /// ownership), dirties it, and the line is written back on eviction.
    /// A copy kernel then moves 3 bytes of DRAM traffic per 2 bytes of
    /// payload.
    WriteAllocate,
    /// Streaming / non-temporal stores with write combining: store
    /// misses post full lines straight to DRAM without fetching them.
    Streaming,
}

/// TLB parameters for the hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: usize,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Serialized page-walk cost per miss, nanoseconds.
    pub walk_ns: f64,
}

/// Prefetcher parameters for the hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct PrefetchConfig {
    /// Lines to run ahead of a confirmed demand stream.
    pub degree: u32,
}

/// Full hierarchy configuration.
#[derive(Debug, Clone)]
pub struct MemHierarchyConfig {
    /// Cache levels, innermost first. Empty for cacheless devices.
    pub caches: Vec<CacheConfig>,
    /// Serial cost charged per access that hits at the corresponding
    /// level (amortized over the core's ability to overlap hits), ns.
    pub hit_ns: Vec<f64>,
    /// Optional TLB.
    pub tlb: Option<TlbConfig>,
    /// Optional stream prefetcher (detects at last-level-cache misses).
    pub prefetch: Option<PrefetchConfig>,
    /// DRAM device configuration.
    pub dram: DramConfig,
    /// Aggregate front-end issue bandwidth, bytes per nanosecond.
    pub issue_bytes_per_ns: f64,
    /// Fixed front-end cost per access, ns (transaction-rate limits:
    /// pipeline initiation interval on FPGAs, LSU/interconnect slots on
    /// GPUs). Zero for purely byte-rate-limited front ends.
    pub issue_ns_per_access: f64,
    /// Maximum outstanding demand misses (memory-level parallelism).
    pub mlp: usize,
    /// Extra on-chip latency added to every demand DRAM round trip, ns.
    pub dram_extra_latency_ns: f64,
    /// Store-miss policy.
    pub write_policy: WritePolicy,
    /// Write-combining drain granularity for streaming stores, bytes:
    /// contiguous store runs are posted to DRAM in batches of this size
    /// (memory-controller write queues drain in bursts, avoiding a bus
    /// turnaround per line).
    pub wc_flush_bytes: u32,
}

impl MemHierarchyConfig {
    fn check(&self) {
        assert_eq!(
            self.caches.len(),
            self.hit_ns.len(),
            "one hit cost per cache level"
        );
        assert!(self.caches.len() <= 3, "at most three cache levels");
        assert!(self.mlp >= 1, "need at least one outstanding miss");
        assert!(self.issue_bytes_per_ns > 0.0);
    }
}

/// Result of running an access stream.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// Wall-clock time the stream took, nanoseconds (refresh-derated).
    pub ns: f64,
    /// Event counters for the run.
    pub stats: MemStats,
    /// Accesses actually simulated (differs from the nominal stream
    /// length when sampling extrapolation was used).
    pub simulated_accesses: u64,
}

impl StreamOutcome {
    /// Bandwidth for `useful_bytes` of payload, GB/s (1 GB = 1e9 B).
    pub fn bandwidth_gbps(&self, useful_bytes: u64) -> f64 {
        useful_bytes as f64 / self.ns
    }
}

/// The composed, stateful hierarchy.
#[derive(Debug, Clone)]
pub struct MemHierarchy {
    cfg: MemHierarchyConfig,
    caches: Vec<Cache>,
    tlb: Option<Tlb>,
    prefetcher: Option<StreamPrefetcher>,
    dram: Dram,
}

impl MemHierarchy {
    /// Build the hierarchy in a cold state.
    pub fn new(cfg: MemHierarchyConfig) -> Self {
        cfg.check();
        let caches: Vec<Cache> = cfg.caches.iter().map(|c| Cache::new(*c)).collect();
        let tlb = cfg.tlb.map(|t| Tlb::new(t.entries, t.page_bytes));
        let line = caches.first().map(|c| c.config().line_bytes).unwrap_or(64);
        let prefetcher = cfg.prefetch.map(|p| StreamPrefetcher::new(line, p.degree));
        let dram = Dram::new(cfg.dram.clone());
        MemHierarchy {
            cfg,
            caches,
            tlb,
            prefetcher,
            dram,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MemHierarchyConfig {
        &self.cfg
    }

    /// Reset all dynamic state (cold caches, idle DRAM).
    pub fn reset(&mut self) {
        for c in &mut self.caches {
            c.reset();
        }
        if let Some(t) = &mut self.tlb {
            t.reset();
        }
        if let Some(p) = &mut self.prefetcher {
            p.reset();
        }
        self.dram.reset();
    }

    /// Run a complete access stream and return its cost. Use
    /// [`MemHierarchy::run_sampled`] for very long streams.
    pub fn run(&mut self, stream: impl IntoIterator<Item = Access>) -> StreamOutcome {
        self.run_engine(stream.into_iter(), u64::MAX)
    }

    /// Run up to `cap` accesses of a stream that nominally contains
    /// `total` accesses; if truncated, the cost is extrapolated linearly
    /// (streaming workloads are steady-state, so the prefix rate is
    /// representative).
    pub fn run_sampled(
        &mut self,
        stream: impl IntoIterator<Item = Access>,
        total: u64,
        cap: u64,
    ) -> StreamOutcome {
        let mut out = self.run_engine(stream.into_iter(), cap);
        if out.simulated_accesses < total && out.simulated_accesses > 0 {
            let scale = total as f64 / out.simulated_accesses as f64;
            out.ns *= scale;
        }
        out
    }

    fn line_bytes(&self) -> u64 {
        self.caches
            .first()
            .map(|c| c.config().line_bytes as u64)
            .unwrap_or(0)
    }

    /// Route a stream through the batched fast engine, or the original
    /// per-request reference engine when `MPSTREAM_SIM_SLOW=1` (see
    /// [`crate::slowpath`]). Both produce byte-identical outcomes; the
    /// reference is kept verbatim as the oracle the equivalence suite
    /// diffs against.
    fn run_engine(&mut self, stream: impl Iterator<Item = Access>, cap: u64) -> StreamOutcome {
        if crate::slowpath::slow() {
            self.run_engine_reference(stream, cap)
        } else {
            self.run_engine_fast(stream, cap)
        }
    }

    fn run_engine_reference(
        &mut self,
        stream: impl Iterator<Item = Access>,
        cap: u64,
    ) -> StreamOutcome {
        let mut stats = MemStats::new();
        // Snapshot cumulative model counters so the outcome reports
        // per-run deltas even when state is carried across runs.
        let cache_base: Vec<(u64, u64)> =
            self.caches.iter().map(|c| (c.hits(), c.misses())).collect();
        let dram_base = self.dram.stats().clone();
        let pf_base = self.prefetcher.as_ref().map(|p| p.issued()).unwrap_or(0);
        let mut t = 0.0f64; // front-end time, ns
        let mut outstanding: Vec<f64> = Vec::with_capacity(self.cfg.mlp);
        let mut pf_ready: HashMap<u64, f64> = HashMap::new();
        let mut last_done = 0.0f64; // completion horizon of posted traffic
                                    // Write-combining run for streaming stores: [start, end) bytes.
        let mut wc_run: Option<(u64, u64)> = None;
        let mut n = 0u64;

        let issue_inv = 1.0 / self.cfg.issue_bytes_per_ns;
        let line = self.line_bytes();

        for acc in stream {
            if n >= cap {
                break;
            }
            n += 1;

            // Front-end issue cost.
            t += acc.bytes as f64 * issue_inv + self.cfg.issue_ns_per_access;
            match acc.kind {
                AccessKind::Read => {
                    stats.reads += 1;
                    stats.bytes_read += acc.bytes as u64;
                }
                AccessKind::Write => {
                    stats.writes += 1;
                    stats.bytes_written += acc.bytes as u64;
                }
            }

            // Address translation.
            if let Some(tlb) = &mut self.tlb {
                if tlb.access(acc.addr) {
                    stats.tlb_hits += 1;
                } else {
                    stats.tlb_misses += 1;
                    t += self.cfg.tlb.as_ref().expect("tlb cfg").walk_ns;
                }
            }

            if self.caches.is_empty() {
                // Cacheless device: the access *is* the DRAM transaction.
                self.issue_demand(acc, &mut t, &mut outstanding, &mut last_done);
                continue;
            }

            // Walk each cache line the access touches.
            let first = acc.addr & !(line - 1);
            let mut lb = first;
            while lb < acc.end() {
                let full_line = acc.addr <= lb && acc.end() >= lb + line;
                self.access_line(
                    lb,
                    acc.kind,
                    full_line,
                    &mut t,
                    &mut stats,
                    &mut outstanding,
                    &mut pf_ready,
                    &mut last_done,
                    &mut wc_run,
                );
                lb += line;
            }
        }

        // Drain: flush the write-combining tail, then wait for every
        // outstanding transaction and posted write.
        if let Some((start, end)) = wc_run.take() {
            let cycles_at = self.dram.ns_to_cycles(t);
            let (_, done) = self
                .dram
                .service(cycles_at, Access::write(start, (end - start) as u32));
            last_done = last_done.max(self.dram.cycles_to_ns(done));
        }
        for c in outstanding {
            t = t.max(c);
        }
        t = t.max(last_done);

        // Fold model-level counter deltas into the outcome.
        for (i, c) in self.caches.iter().enumerate() {
            stats.cache_hits[i] = c.hits() - cache_base[i].0;
            stats.cache_misses[i] = c.misses() - cache_base[i].1;
        }
        let d = self.dram.stats();
        stats.merge(&MemStats {
            row_hits: d.row_hits - dram_base.row_hits,
            row_misses: d.row_misses - dram_base.row_misses,
            row_empty: d.row_empty - dram_base.row_empty,
            bus_turnarounds: d.bus_turnarounds - dram_base.bus_turnarounds,
            dram_transactions: d.dram_transactions - dram_base.dram_transactions,
            dram_bytes: d.dram_bytes - dram_base.dram_bytes,
            ..MemStats::new()
        });
        if let Some(p) = &self.prefetcher {
            stats.prefetches_issued = p.issued() - pf_base;
        }

        StreamOutcome {
            ns: self.dram.derate_ns(t),
            stats,
            simulated_accesses: n,
        }
    }

    /// One cache-line-granular access through the cache levels.
    #[allow(clippy::too_many_arguments)]
    fn access_line(
        &mut self,
        line_base: u64,
        kind: AccessKind,
        full_line: bool,
        t: &mut f64,
        stats: &mut MemStats,
        outstanding: &mut Vec<f64>,
        pf_ready: &mut HashMap<u64, f64>,
        last_done: &mut f64,
        wc_run: &mut Option<(u64, u64)>,
    ) {
        let is_write = kind.is_write();
        let line = self.line_bytes();
        let streaming_store = is_write && self.cfg.write_policy == WritePolicy::Streaming;

        // Streaming stores bypass allocation entirely unless the line is
        // already cached (in which case they behave like normal stores).
        if streaming_store && !self.caches.iter().any(|c| c.probe(line_base)) {
            // Write-combining: contiguous store runs accumulate and drain
            // to DRAM in `wc_flush_bytes` batches.
            let flush = self.cfg.wc_flush_bytes.max(line as u32) as u64;
            match wc_run {
                // Further words into a line already buffered in the run.
                Some((start, end)) if line_base >= *start && line_base < *end => {}
                Some((start, end)) if *end == line_base && *end - *start < flush => {
                    *end += line;
                }
                _ => {
                    if let Some((start, end)) = wc_run.take() {
                        let cycles_at = self.dram.ns_to_cycles(*t);
                        let (_, done) = self
                            .dram
                            .service(cycles_at, Access::write(start, (end - start) as u32));
                        *last_done = last_done.max(self.dram.cycles_to_ns(done));
                    }
                    *wc_run = Some((line_base, line_base + line));
                }
            }
            return;
        }

        // Look up levels innermost-out.
        let levels = self.caches.len();
        for lvl in 0..levels {
            let res = self.caches[lvl].access(line_base, is_write && lvl == 0);
            if res.hit {
                *t += self.cfg.hit_ns[lvl];
                // Fill the line into the levels above (inclusive-ish).
                for up in (0..lvl).rev() {
                    let fill = self.caches[up].access(line_base, is_write && up == 0);
                    if let Some(wb) = fill.writeback {
                        // Dirty line displaced from an upper level lands
                        // in this level; mark it dirty here.
                        self.caches[lvl].access(wb, true);
                    }
                }
                return;
            }
            // Miss at this level: dirty victim falls to the next level.
            if let Some(wb) = res.writeback {
                if lvl + 1 < levels {
                    self.caches[lvl + 1].access(wb, true);
                } else {
                    stats.writebacks += 1;
                    let cycles_at = self.dram.ns_to_cycles(*t);
                    let (_, done) = self.dram.service(cycles_at, Access::write(wb, line as u32));
                    *last_done = last_done.max(self.dram.cycles_to_ns(done));
                }
            }
        }

        // Write-validate: a store covering the whole line allocates it
        // dirty without a read-for-ownership fetch (as sectored GPU L2s
        // and modern CPU "full-line write" optimizations do). The lookup
        // walk above already installed the line (dirty at L1) and handled
        // the victim writeback — skipping the fetch is the optimization.
        if is_write && full_line && levels > 0 {
            return;
        }

        // Missed every level. Prefetched already?
        if let Some(ready) = pf_ready.remove(&line_base) {
            stats.prefetch_hits += 1;
            *t = t.max(ready);
            *t += *self.cfg.hit_ns.last().unwrap_or(&0.0);
        } else {
            self.issue_demand(
                Access {
                    addr: line_base,
                    bytes: line as u32,
                    kind: AccessKind::Read,
                },
                t,
                outstanding,
                last_done,
            );
        }

        // Train the prefetcher on the demand-miss address stream.
        if let Some(pf) = &mut self.prefetcher {
            let lines = pf.on_miss(line_base);
            for pline in lines {
                if pf_ready.contains_key(&pline) {
                    continue;
                }
                let cycles_at = self.dram.ns_to_cycles(*t);
                let (_, done) = self
                    .dram
                    .service(cycles_at, Access::read(pline, line as u32));
                let ready = self.dram.cycles_to_ns(done) + self.cfg.dram_extra_latency_ns;
                pf_ready.insert(pline, ready);
                *last_done = last_done.max(ready);
            }
            // Bound the prefetch table (streams were evicted, entries stale).
            if pf_ready.len() > 4096 {
                pf_ready.clear();
            }
        }
    }

    /// Issue a demand DRAM transaction through the MLP window.
    fn issue_demand(
        &mut self,
        acc: Access,
        t: &mut f64,
        outstanding: &mut Vec<f64>,
        last_done: &mut f64,
    ) {
        if outstanding.len() == self.cfg.mlp {
            // Stall until the earliest outstanding miss completes.
            let (idx, _) = outstanding
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN times"))
                .expect("non-empty");
            let earliest = outstanding.swap_remove(idx);
            *t = t.max(earliest);
        }
        let cycles_at = self.dram.ns_to_cycles(*t);
        let (_, done) = self.dram.service(cycles_at, acc);
        let done_ns = self.dram.cycles_to_ns(done) + self.cfg.dram_extra_latency_ns;
        outstanding.push(done_ns);
        *last_done = last_done.max(done_ns);
    }

    /// The batched engine. Semantics-preserving differences from
    /// [`run_engine_reference`](Self::run_engine_reference):
    ///
    /// * accesses are pulled in chunks of [`CHUNK`] so TLB lookups for
    ///   runs of same-page accesses collapse into one probe plus an O(1)
    ///   batch update ([`Tlb::access_run`]) — later accesses of a run are
    ///   guaranteed hits on the just-touched entry and contribute no
    ///   walk time;
    /// * the MLP window is a [`DoneHeap`] instead of a linearly scanned
    ///   `Vec`;
    /// * the prefetch in-flight table uses a multiplicative hasher;
    /// * prefetch addresses land in a reusable buffer instead of a fresh
    ///   allocation per miss.
    ///
    /// Every floating-point operation happens in the same order with the
    /// same operands as the reference, so outcomes are byte-identical.
    fn run_engine_fast(
        &mut self,
        mut stream: impl Iterator<Item = Access>,
        cap: u64,
    ) -> StreamOutcome {
        let mut stats = MemStats::new();
        let cache_base: Vec<(u64, u64)> =
            self.caches.iter().map(|c| (c.hits(), c.misses())).collect();
        let dram_base = self.dram.stats().clone();
        let pf_base = self.prefetcher.as_ref().map(|p| p.issued()).unwrap_or(0);
        let mut t = 0.0f64;
        let mut eng = FastEngine {
            outstanding: DoneHeap::with_capacity(self.cfg.mlp),
            pf_ready: PfMap::default(),
            last_done: 0.0,
            wc_run: None,
            pf_buf: Vec::new(),
        };
        let mut n = 0u64;

        let issue_inv = 1.0 / self.cfg.issue_bytes_per_ns;
        let issue_ns = self.cfg.issue_ns_per_access;
        let line = self.line_bytes();
        let has_caches = !self.caches.is_empty();
        let walk_ns = self.cfg.tlb.as_ref().map(|c| c.walk_ns).unwrap_or(0.0);
        let page_mask = self
            .tlb
            .as_ref()
            .map(|tlb| !(tlb.page_bytes() - 1))
            .unwrap_or(0);

        let mut chunk: Vec<Access> = Vec::with_capacity(CHUNK);
        'outer: loop {
            chunk.clear();
            while (chunk.len() as u64) < cap - n && chunk.len() < CHUNK {
                match stream.next() {
                    Some(a) => chunk.push(a),
                    None => break,
                }
            }
            if chunk.is_empty() {
                break 'outer;
            }
            n += chunk.len() as u64;

            let mut i = 0;
            while i < chunk.len() {
                // Length of the same-page run starting at `i` (1 when
                // there is no TLB; the whole TLB block is skipped then).
                let mut run = 1usize;
                if self.tlb.is_some() {
                    let page = chunk[i].addr & page_mask;
                    while i + run < chunk.len() && chunk[i + run].addr & page_mask == page {
                        run += 1;
                    }
                }
                for (j, &acc) in chunk.iter().enumerate().take(i + run).skip(i) {
                    // Front-end issue cost.
                    t += acc.bytes as f64 * issue_inv + issue_ns;
                    match acc.kind {
                        AccessKind::Read => {
                            stats.reads += 1;
                            stats.bytes_read += acc.bytes as u64;
                        }
                        AccessKind::Write => {
                            stats.writes += 1;
                            stats.bytes_written += acc.bytes as u64;
                        }
                    }

                    // Address translation, batched over the run: only the
                    // first access can miss; the rest hit the just-touched
                    // entry and add no time.
                    if j == i {
                        if let Some(tlb) = &mut self.tlb {
                            if tlb.access_run(acc.addr, run as u64) {
                                stats.tlb_hits += run as u64;
                            } else {
                                stats.tlb_misses += 1;
                                stats.tlb_hits += (run - 1) as u64;
                                t += walk_ns;
                            }
                        }
                    }

                    if !has_caches {
                        // Cacheless device: the access *is* the DRAM
                        // transaction.
                        self.issue_demand_fast(acc, &mut t, &mut eng);
                        continue;
                    }

                    // Walk each cache line the access touches.
                    let mut lb = acc.addr & !(line - 1);
                    while lb < acc.end() {
                        let full_line = acc.addr <= lb && acc.end() >= lb + line;
                        self.access_line_fast(
                            lb, acc.kind, full_line, &mut t, &mut stats, &mut eng,
                        );
                        lb += line;
                    }
                }
                i += run;
            }
        }

        // Drain: flush the write-combining tail, then wait for every
        // outstanding transaction and posted write.
        if let Some((start, end)) = eng.wc_run.take() {
            let cycles_at = self.dram.ns_to_cycles(t);
            let (_, done) = self
                .dram
                .service(cycles_at, Access::write(start, (end - start) as u32));
            eng.last_done = eng.last_done.max(self.dram.cycles_to_ns(done));
        }
        t = eng.outstanding.fold_max(t);
        t = t.max(eng.last_done);

        // Fold model-level counter deltas into the outcome.
        for (i, c) in self.caches.iter().enumerate() {
            stats.cache_hits[i] = c.hits() - cache_base[i].0;
            stats.cache_misses[i] = c.misses() - cache_base[i].1;
        }
        let d = self.dram.stats();
        stats.merge(&MemStats {
            row_hits: d.row_hits - dram_base.row_hits,
            row_misses: d.row_misses - dram_base.row_misses,
            row_empty: d.row_empty - dram_base.row_empty,
            bus_turnarounds: d.bus_turnarounds - dram_base.bus_turnarounds,
            dram_transactions: d.dram_transactions - dram_base.dram_transactions,
            dram_bytes: d.dram_bytes - dram_base.dram_bytes,
            ..MemStats::new()
        });
        if let Some(p) = &self.prefetcher {
            stats.prefetches_issued = p.issued() - pf_base;
        }

        StreamOutcome {
            ns: self.dram.derate_ns(t),
            stats,
            simulated_accesses: n,
        }
    }

    /// Fast-path twin of [`access_line`](Self::access_line); same logic
    /// against the [`FastEngine`] state.
    fn access_line_fast(
        &mut self,
        line_base: u64,
        kind: AccessKind,
        full_line: bool,
        t: &mut f64,
        stats: &mut MemStats,
        eng: &mut FastEngine,
    ) {
        let is_write = kind.is_write();
        let line = self.line_bytes();
        let streaming_store = is_write && self.cfg.write_policy == WritePolicy::Streaming;

        // Streaming stores bypass allocation entirely unless the line is
        // already cached (in which case they behave like normal stores).
        if streaming_store && !self.caches.iter().any(|c| c.probe(line_base)) {
            // Write-combining: contiguous store runs accumulate and drain
            // to DRAM in `wc_flush_bytes` batches.
            let flush = self.cfg.wc_flush_bytes.max(line as u32) as u64;
            match &mut eng.wc_run {
                // Further words into a line already buffered in the run.
                Some((start, end)) if line_base >= *start && line_base < *end => {}
                Some((start, end)) if *end == line_base && *end - *start < flush => {
                    *end += line;
                }
                _ => {
                    if let Some((start, end)) = eng.wc_run.take() {
                        let cycles_at = self.dram.ns_to_cycles(*t);
                        let (_, done) = self
                            .dram
                            .service(cycles_at, Access::write(start, (end - start) as u32));
                        eng.last_done = eng.last_done.max(self.dram.cycles_to_ns(done));
                    }
                    eng.wc_run = Some((line_base, line_base + line));
                }
            }
            return;
        }

        // Look up levels innermost-out.
        let levels = self.caches.len();
        for lvl in 0..levels {
            let res = self.caches[lvl].access(line_base, is_write && lvl == 0);
            if res.hit {
                *t += self.cfg.hit_ns[lvl];
                // Fill the line into the levels above (inclusive-ish).
                for up in (0..lvl).rev() {
                    let fill = self.caches[up].access(line_base, is_write && up == 0);
                    if let Some(wb) = fill.writeback {
                        // Dirty line displaced from an upper level lands
                        // in this level; mark it dirty here.
                        self.caches[lvl].access(wb, true);
                    }
                }
                return;
            }
            // Miss at this level: dirty victim falls to the next level.
            if let Some(wb) = res.writeback {
                if lvl + 1 < levels {
                    self.caches[lvl + 1].access(wb, true);
                } else {
                    stats.writebacks += 1;
                    let cycles_at = self.dram.ns_to_cycles(*t);
                    let (_, done) = self.dram.service(cycles_at, Access::write(wb, line as u32));
                    eng.last_done = eng.last_done.max(self.dram.cycles_to_ns(done));
                }
            }
        }

        // Write-validate: see the reference path for the rationale.
        if is_write && full_line && levels > 0 {
            return;
        }

        // Missed every level. Prefetched already?
        if let Some(ready) = eng.pf_ready.remove(&line_base) {
            stats.prefetch_hits += 1;
            *t = t.max(ready);
            *t += *self.cfg.hit_ns.last().unwrap_or(&0.0);
        } else {
            self.issue_demand_fast(
                Access {
                    addr: line_base,
                    bytes: line as u32,
                    kind: AccessKind::Read,
                },
                t,
                eng,
            );
        }

        // Train the prefetcher on the demand-miss address stream.
        if let Some(pf) = &mut self.prefetcher {
            let mut buf = std::mem::take(&mut eng.pf_buf);
            buf.clear();
            pf.on_miss_into(line_base, &mut buf);
            for &pline in &buf {
                if eng.pf_ready.contains_key(&pline) {
                    continue;
                }
                let cycles_at = self.dram.ns_to_cycles(*t);
                let (_, done) = self
                    .dram
                    .service(cycles_at, Access::read(pline, line as u32));
                let ready = self.dram.cycles_to_ns(done) + self.cfg.dram_extra_latency_ns;
                eng.pf_ready.insert(pline, ready);
                eng.last_done = eng.last_done.max(ready);
            }
            eng.pf_buf = buf;
            // Bound the prefetch table (streams were evicted, entries stale).
            if eng.pf_ready.len() > 4096 {
                eng.pf_ready.clear();
            }
        }
    }

    /// Fast-path twin of [`issue_demand`](Self::issue_demand): the stall
    /// pops the earliest completion from the heap instead of a linear
    /// scan.
    fn issue_demand_fast(&mut self, acc: Access, t: &mut f64, eng: &mut FastEngine) {
        if eng.outstanding.len() == self.cfg.mlp {
            // Stall until the earliest outstanding miss completes.
            let earliest = eng.outstanding.pop_min();
            *t = t.max(earliest);
        }
        let cycles_at = self.dram.ns_to_cycles(*t);
        let (_, done) = self.dram.service(cycles_at, acc);
        let done_ns = self.dram.cycles_to_ns(done) + self.cfg.dram_extra_latency_ns;
        eng.outstanding.push(done_ns);
        eng.last_done = eng.last_done.max(done_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Freq;

    fn dram_cfg() -> DramConfig {
        DramConfig {
            channels: 2,
            banks_per_channel: 8,
            row_bytes: 2048,
            bus_bytes_per_cycle: 8,
            freq: Freq::mhz(1000.0),
            t_cas: 10,
            t_rcd: 10,
            t_rp: 10,
            t_turnaround: 6,
            refresh_overhead: 0.0,
            interleave_bytes: 256,
        }
    }

    fn cpu_like(mlp: usize, prefetch: bool) -> MemHierarchy {
        MemHierarchy::new(MemHierarchyConfig {
            caches: vec![
                CacheConfig {
                    size_bytes: 32 * 1024,
                    ways: 8,
                    line_bytes: 64,
                },
                CacheConfig {
                    size_bytes: 256 * 1024,
                    ways: 8,
                    line_bytes: 64,
                },
            ],
            hit_ns: vec![0.0, 2.0],
            tlb: Some(TlbConfig {
                entries: 64,
                page_bytes: 4096,
                walk_ns: 30.0,
            }),
            // Degree must cover the latency-bandwidth product (~17 lines
            // here) for the stream to become bus-bound.
            prefetch: prefetch.then_some(PrefetchConfig { degree: 32 }),
            dram: dram_cfg(),
            issue_bytes_per_ns: 32.0,
            issue_ns_per_access: 0.0,
            mlp,
            dram_extra_latency_ns: 40.0,
            write_policy: WritePolicy::WriteAllocate,
            wc_flush_bytes: 512,
        })
    }

    fn seq_reads(n: u64, step: u64) -> impl Iterator<Item = Access> {
        (0..n).map(move |i| Access::read(i * step, 4))
    }

    #[test]
    fn contiguous_with_prefetch_beats_without() {
        let n = 200_000;
        let with = cpu_like(8, true).run(seq_reads(n, 4));
        let without = cpu_like(8, false).run(seq_reads(n, 4));
        assert!(
            with.ns < without.ns * 0.7,
            "prefetch {} vs none {}",
            with.ns,
            without.ns
        );
        assert!(with.stats.prefetch_hits > 0);
    }

    #[test]
    fn contiguous_prefetched_stream_approaches_dram_peak() {
        let n = 500_000u64;
        let mut h = cpu_like(16, true);
        let out = h.run(seq_reads(n, 4));
        let gbps = out.bandwidth_gbps(n * 4);
        let peak = dram_cfg().peak_gbps();
        assert!(gbps > 0.6 * peak, "gbps {gbps} peak {peak}");
    }

    #[test]
    fn strided_large_stride_is_latency_bound() {
        let n = 50_000u64;
        // 4 KiB stride: every access a new page and a new DRAM row.
        let contig = cpu_like(8, true).run(seq_reads(n, 4));
        let strided = cpu_like(8, true).run(seq_reads(n, 4096));
        assert!(
            strided.ns > contig.ns * 4.0,
            "strided {} contig {}",
            strided.ns,
            contig.ns
        );
    }

    #[test]
    fn higher_mlp_helps_irregular_streams() {
        let n = 20_000u64;
        let lo = cpu_like(1, false).run(seq_reads(n, 4096));
        let hi = cpu_like(16, false).run(seq_reads(n, 4096));
        assert!(hi.ns < lo.ns * 0.5, "hi {} lo {}", hi.ns, lo.ns);
    }

    #[test]
    fn cache_resident_second_pass_is_fast() {
        let mut h = cpu_like(8, false);
        // 16 KiB working set fits L1.
        let pass1 = h.run(seq_reads(4096, 4));
        // Note: `run` does not reset state, so the second pass hits.
        let pass2 = h.run(seq_reads(4096, 4));
        assert!(
            pass2.ns < pass1.ns * 0.25,
            "p2 {} p1 {}",
            pass2.ns,
            pass1.ns
        );
        assert_eq!(pass2.stats.cache_misses[0], 0);
    }

    #[test]
    fn write_allocate_generates_writebacks_and_fills() {
        let n = 400_000u64;
        let mut h = cpu_like(8, false);
        let out = h.run((0..n).map(|i| Access::write(i * 4, 4)));
        assert!(out.stats.writebacks > 0, "dirty lines must be written back");
        // RFO: roughly one fill per line plus one writeback per line.
        let lines = n * 4 / 64;
        assert!(out.stats.dram_transactions as f64 > 1.5 * lines as f64);
    }

    #[test]
    fn streaming_stores_halve_write_traffic() {
        let n = 400_000u64;
        let mut cfg_wa = cpu_like(8, false);
        let mut cfg_nt = cpu_like(8, false);
        cfg_nt.cfg.write_policy = WritePolicy::Streaming;
        let wa = cfg_wa.run((0..n).map(|i| Access::write(i * 4, 4)));
        let nt = cfg_nt.run((0..n).map(|i| Access::write(i * 4, 4)));
        assert!(
            (nt.stats.dram_bytes as f64) < 0.6 * wa.stats.dram_bytes as f64,
            "nt {} wa {}",
            nt.stats.dram_bytes,
            wa.stats.dram_bytes
        );
    }

    #[test]
    fn cacheless_device_every_access_hits_dram() {
        let mut h = MemHierarchy::new(MemHierarchyConfig {
            caches: vec![],
            hit_ns: vec![],
            tlb: None,
            prefetch: None,
            dram: dram_cfg(),
            issue_bytes_per_ns: 8.0,
            issue_ns_per_access: 0.0,
            mlp: 4,
            dram_extra_latency_ns: 100.0,
            write_policy: WritePolicy::WriteAllocate,
            wc_flush_bytes: 512,
        });
        let out = h.run(seq_reads(1000, 4));
        assert_eq!(out.stats.dram_transactions, 1000);
    }

    #[test]
    fn sampling_extrapolates_linearly() {
        let mut h1 = cpu_like(8, true);
        let mut h2 = cpu_like(8, true);
        let full = h1.run(seq_reads(100_000, 4));
        let sampled = h2.run_sampled(seq_reads(100_000, 4), 100_000, 50_000);
        let ratio = sampled.ns / full.ns;
        assert!(ratio > 0.8 && ratio < 1.25, "ratio {ratio}");
        assert_eq!(sampled.simulated_accesses, 50_000);
    }

    #[test]
    fn tlb_misses_slow_the_stream() {
        let n = 20_000u64;
        let mut no_walk = cpu_like(8, false);
        no_walk.cfg.tlb = Some(TlbConfig {
            entries: 64,
            page_bytes: 4096,
            walk_ns: 0.0,
        });
        no_walk.tlb = Some(Tlb::new(64, 4096));
        let base = no_walk.run(seq_reads(n, 4096));
        let with = cpu_like(8, false).run(seq_reads(n, 4096));
        // Page walks serialize; DRAM work overlaps them, so the run is
        // at least walk-bound and strictly slower than the no-walk run.
        assert!(with.ns > base.ns, "with {} base {}", with.ns, base.ns);
        assert!(with.ns > 0.9 * (n as f64) * 30.0, "with {}", with.ns);
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Run the same stream through the reference and fast engines on
    /// twin hierarchies; outcomes must match to the bit.
    fn assert_paths_identical(mut a: MemHierarchy, mut b: MemHierarchy, accs: &[Access], cap: u64) {
        let slow = a.run_engine_reference(accs.iter().copied(), cap);
        let fast = b.run_engine_fast(accs.iter().copied(), cap);
        assert_eq!(
            slow.ns.to_bits(),
            fast.ns.to_bits(),
            "ns diverged: slow {} fast {}",
            slow.ns,
            fast.ns
        );
        assert_eq!(slow.stats, fast.stats, "stats diverged");
        assert_eq!(slow.simulated_accesses, fast.simulated_accesses);
    }

    #[test]
    fn fast_engine_matches_reference_contiguous() {
        let accs: Vec<Access> = seq_reads(100_000, 4).collect();
        assert_paths_identical(cpu_like(8, true), cpu_like(8, true), &accs, u64::MAX);
    }

    #[test]
    fn fast_engine_matches_reference_strided() {
        let accs: Vec<Access> = seq_reads(20_000, 4096).collect();
        assert_paths_identical(cpu_like(4, true), cpu_like(4, true), &accs, u64::MAX);
    }

    #[test]
    fn fast_engine_matches_reference_random_mix() {
        let mut state = 0x0123_4567_89ab_cdefu64;
        let accs: Vec<Access> = (0..50_000)
            .map(|_| {
                let r = splitmix(&mut state);
                let addr = r % (64 * 1024 * 1024);
                let bytes = [4u32, 8, 64, 256][(r >> 40) as usize % 4];
                if r & 1 == 0 {
                    Access::read(addr, bytes)
                } else {
                    Access::write(addr, bytes)
                }
            })
            .collect();
        assert_paths_identical(cpu_like(8, true), cpu_like(8, true), &accs, u64::MAX);
    }

    #[test]
    fn fast_engine_matches_reference_streaming_stores() {
        let mut a = cpu_like(8, false);
        let mut b = cpu_like(8, false);
        a.cfg.write_policy = WritePolicy::Streaming;
        b.cfg.write_policy = WritePolicy::Streaming;
        let accs: Vec<Access> = (0..100_000).map(|i| Access::write(i * 4, 4)).collect();
        assert_paths_identical(a, b, &accs, u64::MAX);
    }

    #[test]
    fn fast_engine_matches_reference_cacheless_wide_mlp() {
        let mk = || {
            MemHierarchy::new(MemHierarchyConfig {
                caches: vec![],
                hit_ns: vec![],
                tlb: None,
                prefetch: None,
                dram: dram_cfg(),
                issue_bytes_per_ns: 8.0,
                issue_ns_per_access: 1.5,
                mlp: 64,
                dram_extra_latency_ns: 100.0,
                write_policy: WritePolicy::WriteAllocate,
                wc_flush_bytes: 512,
            })
        };
        let mut state = 7u64;
        let accs: Vec<Access> = (0..30_000)
            .map(|i| {
                let r = splitmix(&mut state);
                if r & 3 == 0 {
                    Access::write((r % (1 << 28)) & !63, 1024)
                } else {
                    Access::read(i * 1024, 1024)
                }
            })
            .collect();
        assert_paths_identical(mk(), mk(), &accs, u64::MAX);
    }

    #[test]
    fn fast_engine_matches_reference_under_sampling_cap() {
        let accs: Vec<Access> = seq_reads(40_000, 4).collect();
        assert_paths_identical(cpu_like(8, true), cpu_like(8, true), &accs, 10_000);
    }

    #[test]
    fn dispatcher_selects_fast_path_by_default() {
        // `run` must agree with both engines regardless of the mode the
        // process latched — the contract the whole PR rests on.
        let accs: Vec<Access> = seq_reads(10_000, 4).collect();
        let via_run = cpu_like(8, true).run(accs.iter().copied());
        let via_fast = cpu_like(8, true).run_engine_fast(accs.iter().copied(), u64::MAX);
        assert_eq!(via_run.ns.to_bits(), via_fast.ns.to_bits());
        assert_eq!(via_run.stats, via_fast.stats);
    }

    #[test]
    fn outcome_bandwidth_helper() {
        let out = StreamOutcome {
            ns: 1000.0,
            stats: MemStats::new(),
            simulated_accesses: 0,
        };
        assert!((out.bandwidth_gbps(4000) - 4.0).abs() < 1e-12);
    }
}
