//! A packetized latency/bandwidth link.
//!
//! Models the PCIe host–device interconnect used (a) for the paper's
//! "source/destination of streams" knob (streaming from host memory
//! instead of device DRAM) and (b) for kernel-launch control transfers,
//! whose fixed cost dominates small-array bandwidth in Figures 1a and 2.

/// Static link parameters.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// One-way latency per transfer, nanoseconds.
    pub latency_ns: f64,
    /// Sustained payload bandwidth, GB/s (1 GB = 1e9 B).
    pub gbps: f64,
    /// Payload bytes per packet (TLP payload).
    pub packet_bytes: u32,
    /// Per-packet protocol overhead, nanoseconds.
    pub per_packet_ns: f64,
}

impl LinkConfig {
    /// PCIe Gen3 x16-ish (GPU): ~12 GB/s effective.
    pub fn pcie_gen3_x16() -> Self {
        LinkConfig {
            latency_ns: 800.0,
            gbps: 12.0,
            packet_bytes: 256,
            per_packet_ns: 2.0,
        }
    }

    /// PCIe Gen3 x8-ish (FPGA boards): ~6 GB/s effective.
    pub fn pcie_gen3_x8() -> Self {
        LinkConfig {
            latency_ns: 900.0,
            gbps: 6.0,
            packet_bytes: 256,
            per_packet_ns: 4.0,
        }
    }

    /// A CPU "device" talks to host memory directly: negligible latency,
    /// very high bandwidth (acts as a near-no-op link).
    pub fn loopback() -> Self {
        LinkConfig {
            latency_ns: 50.0,
            gbps: 30.0,
            packet_bytes: 4096,
            per_packet_ns: 0.0,
        }
    }
}

/// A stateless timed link (no queuing across transfers: MP-STREAM
/// transfers are serialized by the in-order command queue anyway).
#[derive(Debug, Clone, Copy)]
pub struct Link {
    cfg: LinkConfig,
}

impl Link {
    /// Wrap a configuration.
    pub fn new(cfg: LinkConfig) -> Self {
        assert!(cfg.gbps > 0.0 && cfg.packet_bytes > 0);
        Link { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Time to move `bytes` of payload one way, nanoseconds.
    pub fn transfer_ns(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return self.cfg.latency_ns;
        }
        let packets = bytes.div_ceil(self.cfg.packet_bytes as u64) as f64;
        self.cfg.latency_ns + packets * self.cfg.per_packet_ns + bytes as f64 / self.cfg.gbps
    }

    /// Effective bandwidth achieved for a transfer of `bytes`, GB/s.
    pub fn effective_gbps(&self, bytes: u64) -> f64 {
        bytes as f64 / self.transfer_ns(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_costs_latency() {
        let l = Link::new(LinkConfig::pcie_gen3_x16());
        assert_eq!(l.transfer_ns(0), 800.0);
    }

    #[test]
    fn large_transfers_approach_nominal_bandwidth() {
        let l = Link::new(LinkConfig::pcie_gen3_x16());
        let eff = l.effective_gbps(1 << 30);
        assert!(eff > 0.9 * 12.0 * 0.9, "eff {eff}");
        assert!(eff < 12.0);
    }

    #[test]
    fn small_transfers_are_latency_bound() {
        let l = Link::new(LinkConfig::pcie_gen3_x8());
        let eff = l.effective_gbps(64);
        assert!(eff < 0.1, "eff {eff} GB/s for 64 B");
    }

    #[test]
    fn monotone_in_bytes() {
        let l = Link::new(LinkConfig::pcie_gen3_x8());
        let mut last = 0.0;
        for b in [1u64, 100, 10_000, 1_000_000] {
            let t = l.transfer_ns(b);
            assert!(t > last);
            last = t;
        }
    }
}
