//! A hardware stream prefetcher.
//!
//! Detects constant-stride miss streams (at cache-line granularity) and,
//! once a stream is confirmed, issues prefetches `degree` lines ahead of
//! the demand stream. This is the mechanism that lets the CPU model
//! sustain a large fraction of DRAM peak for contiguous traversals while
//! leaving strided/irregular traversals latency-bound — the contrast the
//! paper's Figure 2 measures.

/// Maximum concurrently tracked streams.
const MAX_STREAMS: usize = 16;

#[derive(Debug, Clone, Copy)]
struct Stream {
    /// Next line address expected to miss if the stream continues.
    next_line: u64,
    /// Stride between successive lines, in bytes (signed).
    stride: i64,
    /// Consecutive confirmations; streams with `confidence >= 2` prefetch.
    confidence: u32,
    /// How far ahead (lines) we have already prefetched.
    issued_ahead: u32,
    last_use: u64,
}

/// Stream prefetcher operating on miss addresses.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    line_bytes: u64,
    degree: u32,
    streams: Vec<Stream>,
    tick: u64,
    issued: u64,
}

impl StreamPrefetcher {
    /// `line_bytes`: cache-line granularity; `degree`: how many lines to
    /// run ahead of the demand stream once confident.
    pub fn new(line_bytes: u32, degree: u32) -> Self {
        assert!(line_bytes.is_power_of_two());
        assert!(degree >= 1);
        StreamPrefetcher {
            line_bytes: line_bytes as u64,
            degree,
            streams: Vec::with_capacity(MAX_STREAMS),
            tick: 0,
            issued: 0,
        }
    }

    /// Total prefetches issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Forget all streams.
    pub fn reset(&mut self) {
        self.streams.clear();
        self.tick = 0;
        self.issued = 0;
    }

    /// Observe a demand miss at `addr`; returns the list of line base
    /// addresses that should be prefetched now (possibly empty).
    pub fn on_miss(&mut self, addr: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.on_miss_into(addr, &mut out);
        out
    }

    /// Allocation-free variant of [`on_miss`](Self::on_miss): appends the
    /// prefetch addresses to `out` (which is *not* cleared), letting hot
    /// loops reuse one buffer across millions of misses.
    pub fn on_miss_into(&mut self, addr: u64, out: &mut Vec<u64>) {
        self.tick += 1;
        let line = addr & !(self.line_bytes - 1);

        // Try to match an existing stream.
        for s in &mut self.streams {
            if line == s.next_line {
                s.confidence = (s.confidence + 1).min(8);
                s.last_use = self.tick;
                s.next_line = (s.next_line as i64 + s.stride) as u64;
                if s.confidence >= 2 {
                    // Keep the prefetch frontier `degree` lines ahead.
                    // One line was consumed by this demand miss.
                    s.issued_ahead = s.issued_ahead.saturating_sub(1);
                    while s.issued_ahead < self.degree {
                        let ahead = (s.next_line as i64 + s.stride * s.issued_ahead as i64) as u64;
                        out.push(ahead);
                        s.issued_ahead += 1;
                        self.issued += 1;
                    }
                }
                return;
            }
        }

        // Try to pair with a recent miss to form a new stream: look for a
        // stream whose *origin* is one line behind with stride 0 marker.
        // Simpler scheme: allocate a candidate stream expecting the next
        // sequential line in both directions.
        if self.streams.len() == MAX_STREAMS {
            let (idx, _) = self
                .streams
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_use)
                .expect("non-empty");
            self.streams.swap_remove(idx);
        }
        self.streams.push(Stream {
            next_line: line + self.line_bytes,
            stride: self.line_bytes as i64,
            confidence: 1,
            issued_ahead: 0,
            last_use: self.tick,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_misses_trigger_prefetch() {
        let mut p = StreamPrefetcher::new(64, 4);
        assert!(p.on_miss(0).is_empty(), "first miss allocates");
        let pf = p.on_miss(64); // confirms the stream
        assert_eq!(pf.len(), 4, "runs degree lines ahead");
        assert_eq!(pf[0], 128);
        assert_eq!(pf[3], 320);
    }

    #[test]
    fn steady_state_issues_one_per_miss() {
        let mut p = StreamPrefetcher::new(64, 4);
        p.on_miss(0);
        p.on_miss(64);
        let pf = p.on_miss(128);
        assert_eq!(pf.len(), 1, "frontier advances by one line per demand");
    }

    #[test]
    fn random_misses_never_prefetch() {
        let mut p = StreamPrefetcher::new(64, 4);
        for addr in [0u64, 10_000, 777_216, 123_456, 999_936] {
            assert!(p.on_miss(addr).is_empty());
        }
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn independent_streams_coexist() {
        let mut p = StreamPrefetcher::new(64, 2);
        // Interleave two sequential streams at distant bases.
        p.on_miss(0);
        p.on_miss(1 << 30);
        let a = p.on_miss(64);
        let b = p.on_miss((1 << 30) + 64);
        assert!(!a.is_empty());
        assert!(!b.is_empty());
    }

    #[test]
    fn on_miss_into_appends_without_clearing() {
        let mut p = StreamPrefetcher::new(64, 2);
        let mut buf = vec![42u64];
        p.on_miss_into(0, &mut buf);
        p.on_miss_into(64, &mut buf);
        assert_eq!(buf, vec![42, 128, 192], "sentinel retained, lines appended");
    }

    #[test]
    fn reset_forgets_streams() {
        let mut p = StreamPrefetcher::new(64, 4);
        p.on_miss(0);
        p.on_miss(64);
        p.reset();
        assert!(p.on_miss(128).is_empty());
        assert_eq!(p.issued(), 0);
    }
}
