//! Closed-form event counts for provably-regular access patterns.
//!
//! A contiguous unit-stride run on a cacheless hierarchy (the FPGA
//! targets) is completely regular: every access is a DRAM transaction,
//! chunks walk each channel's local address space monotonically, and
//! pages are touched in order. Hit/miss/row-buffer counts then have
//! closed forms — no per-request simulation needed to know *what*
//! happens, only *when* (timing still requires the event-driven engine,
//! whose floating-point accumulation order defines the byte-identical
//! `ns` contract; see DESIGN.md "Simulator performance").
//!
//! [`analyze`] returns `None` unless the pattern provably matches the
//! formulas; the returned counts are validated against the reference
//! engine by randomized tests here and by `tests/memsim_equivalence.rs`.
//! This is the oracle the batched fast path is checked against on
//! regular streams, per Chilukuri et al.'s observation that
//! architecture-independent features of regular programs are statically
//! derivable.

use crate::hierarchy::MemHierarchyConfig;
use crate::req::AccessKind;
use crate::stats::MemStats;

/// A contiguous unit-stride access run: `accesses` transactions of
/// `bytes` each, starting at `start`, all reads or all writes.
#[derive(Debug, Clone, Copy)]
pub struct UnitStrideRun {
    /// Byte address of the first access.
    pub start: u64,
    /// Number of accesses.
    pub accesses: u64,
    /// Bytes per access (the coalesced transaction size).
    pub bytes: u32,
    /// Direction of every access in the run.
    pub kind: AccessKind,
}

impl UnitStrideRun {
    /// Total bytes the run moves.
    pub fn total_bytes(&self) -> u64 {
        self.accesses * self.bytes as u64
    }
}

/// Predict the event counters for running `run` through a *fresh*
/// hierarchy built from `cfg`, without simulating. Returns `None` when
/// the closed forms do not provably apply:
///
/// * the hierarchy must be cacheless with no prefetcher (every access is
///   exactly one DRAM transaction stream);
/// * access size and channel-interleave granularity must nest (one must
///   divide the other) and the DRAM chunk size must divide the row size,
///   so chunks never straddle row-buffer boundaries;
/// * the run must start on a full channel stripe and cover whole
///   interleave units, so each channel sees one contiguous local range;
/// * with a TLB, pages must nest with the access size (each access
///   probes exactly one page, pages are touched monotonically, so every
///   touched page misses exactly once regardless of TLB capacity).
pub fn analyze(cfg: &MemHierarchyConfig, run: &UnitStrideRun) -> Option<MemStats> {
    if !cfg.caches.is_empty() || cfg.prefetch.is_some() {
        return None;
    }
    if run.accesses == 0 || run.bytes == 0 {
        return None;
    }
    let b = run.bytes as u64;
    let d = &cfg.dram;
    let ilv = d.interleave_bytes as u64;
    let chans = d.channels as u64;
    let row = d.row_bytes as u64;
    let banks = d.banks_per_channel as u64;
    let total = run.total_bytes();
    // Chunks are what `Dram::service` splits an access into.
    let chunk = b.min(ilv);
    if !ilv.is_multiple_of(b) && !b.is_multiple_of(ilv) {
        return None;
    }
    if !run.start.is_multiple_of(ilv * chans)
        || !total.is_multiple_of(ilv)
        || !row.is_multiple_of(chunk)
    {
        return None;
    }

    let mut s = MemStats::new();
    match run.kind {
        AccessKind::Read => {
            s.reads = run.accesses;
            s.bytes_read = total;
        }
        AccessKind::Write => {
            s.writes = run.accesses;
            s.bytes_written = total;
        }
    }

    if let Some(tlb) = &cfg.tlb {
        let page = tlb.page_bytes;
        if !page.is_multiple_of(b) {
            return None;
        }
        // Pages are visited in non-decreasing order with all accesses to
        // a page contiguous: each distinct page misses exactly once.
        let first = run.start / page;
        let last = (run.start + (run.accesses - 1) * b) / page;
        s.tlb_misses = last - first + 1;
        s.tlb_hits = run.accesses - s.tlb_misses;
    }

    let units = total / ilv;
    let chunks_per_unit = ilv / chunk;
    s.dram_transactions = units * chunks_per_unit;
    s.dram_bytes = total;
    // Bus direction never flips within a single-kind run, and a fresh
    // device has no prior transfer to turn around from.
    s.bus_turnarounds = 0;

    // Interleave units round-robin over channels starting at channel 0
    // (stripe-aligned start). Channel `c` sees one contiguous local byte
    // range; row-buffer slots (`local / row_bytes`) are visited
    // monotonically, so per bank the first touch finds the bank
    // precharged (empty) and each further slot on that bank is a row
    // miss; every remaining chunk is a row hit.
    let local0 = (run.start / (ilv * chans)) * ilv;
    for c in 0..chans {
        let units_c = units / chans + u64::from(c < units % chans);
        if units_c == 0 {
            continue;
        }
        let local_end = local0 + units_c * ilv;
        let slots = (local_end - 1) / row - local0 / row + 1;
        let banks_touched = slots.min(banks);
        s.row_empty += banks_touched;
        s.row_misses += slots - banks_touched;
        s.row_hits += units_c * chunks_per_unit - slots;
    }
    Some(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::DramConfig;
    use crate::hierarchy::{MemHierarchy, TlbConfig, WritePolicy};
    use crate::req::Access;

    fn cacheless(dram: DramConfig, tlb: Option<TlbConfig>) -> MemHierarchyConfig {
        MemHierarchyConfig {
            caches: vec![],
            hit_ns: vec![],
            tlb,
            prefetch: None,
            dram,
            issue_bytes_per_ns: 16.0,
            issue_ns_per_access: 0.5,
            mlp: 16,
            dram_extra_latency_ns: 120.0,
            write_policy: WritePolicy::WriteAllocate,
            wc_flush_bytes: 512,
        }
    }

    fn simulate(cfg: &MemHierarchyConfig, run: &UnitStrideRun) -> MemStats {
        let mut h = MemHierarchy::new(cfg.clone());
        let b = run.bytes;
        let out = h.run((0..run.accesses).map(|i| Access {
            addr: run.start + i * b as u64,
            bytes: b,
            kind: run.kind,
        }));
        out.stats
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn matches_simulation_across_fpga_presets() {
        let presets = [
            DramConfig::ddr3_fpga_aocl(),
            DramConfig::ddr4_fpga_arria10(),
            DramConfig::ddr3_fpga_sdaccel(),
            DramConfig::hmc_fpga(),
        ];
        let mut state = 0xa11c_e5ed_u64;
        for dram in presets {
            for kind in [AccessKind::Read, AccessKind::Write] {
                for _ in 0..4 {
                    let r = splitmix(&mut state);
                    let stripe = dram.interleave_bytes as u64 * dram.channels as u64;
                    let bytes = [64u32, 128, 512, 1024][(r % 4) as usize];
                    // Whole number of stripes, 1–8 MiB worth of traffic.
                    let stripes = (r >> 8) % 256 + 32;
                    let total = stripes * stripe;
                    let run = UnitStrideRun {
                        start: ((r >> 20) % 64) * stripe,
                        accesses: total / bytes as u64,
                        bytes,
                        kind,
                    };
                    let cfg = cacheless(dram.clone(), None);
                    let predicted = analyze(&cfg, &run)
                        .unwrap_or_else(|| panic!("preconditions hold for {run:?}"));
                    let simulated = simulate(&cfg, &run);
                    assert_eq!(predicted, simulated, "diverged for {run:?} on {dram:?}");
                }
            }
        }
    }

    #[test]
    fn matches_simulation_with_tlb() {
        let cfg = cacheless(
            DramConfig::ddr3_fpga_aocl(),
            Some(TlbConfig {
                entries: 8,
                page_bytes: 4096,
                walk_ns: 50.0,
            }),
        );
        let run = UnitStrideRun {
            start: 0,
            accesses: 4096,
            bytes: 512,
            kind: AccessKind::Read,
        };
        let predicted = analyze(&cfg, &run).expect("preconditions hold");
        let simulated = simulate(&cfg, &run);
        assert_eq!(predicted, simulated);
        assert_eq!(predicted.tlb_misses, 512, "one miss per 4 KiB page");
    }

    #[test]
    fn rejects_cached_hierarchies_and_ragged_runs() {
        let with_cache = {
            let mut c = cacheless(DramConfig::ddr3_fpga_aocl(), None);
            c.caches = vec![crate::cache::CacheConfig {
                size_bytes: 32 * 1024,
                ways: 4,
                line_bytes: 64,
            }];
            c.hit_ns = vec![1.0];
            c
        };
        let run = UnitStrideRun {
            start: 0,
            accesses: 1024,
            bytes: 512,
            kind: AccessKind::Read,
        };
        assert!(
            analyze(&with_cache, &run).is_none(),
            "caches break the form"
        );

        let cfg = cacheless(DramConfig::ddr3_fpga_aocl(), None);
        let misaligned = UnitStrideRun { start: 64, ..run };
        assert!(analyze(&cfg, &misaligned).is_none(), "stripe alignment");
        let ragged = UnitStrideRun { bytes: 384, ..run };
        assert!(
            analyze(&cfg, &ragged).is_none(),
            "size must nest with interleave"
        );
    }

    #[test]
    fn row_counts_have_expected_shape() {
        // 2 channels, 8 banks, 8 KiB rows, 512 B interleave: 4 MiB of
        // 512 B reads = 8192 transactions, 256 row slots per channel.
        let cfg = cacheless(DramConfig::ddr3_fpga_aocl(), None);
        let run = UnitStrideRun {
            start: 0,
            accesses: 8192,
            bytes: 512,
            kind: AccessKind::Read,
        };
        let s = analyze(&cfg, &run).expect("preconditions hold");
        assert_eq!(s.dram_transactions, 8192);
        assert_eq!(s.row_empty, 16, "each bank opened once");
        assert_eq!(s.row_hits + s.row_misses + s.row_empty, 8192);
    }
}
