//! # memsim — memory-system simulation building blocks
//!
//! This crate provides the timed models out of which the MP-STREAM device
//! targets (CPU, GPU, and the two OpenCL FPGAs) are composed:
//!
//! * [`dram`] — a banked, multi-channel DRAM with row-buffer state,
//!   read/write bus turnaround and refresh, timed in DRAM bus cycles;
//! * [`cache`] — set-associative write-back, write-allocate caches;
//! * [`tlb`] — a small translation look-aside buffer;
//! * [`prefetch`] — a stream prefetcher that detects sequential miss
//!   streams and hides DRAM latency for contiguous traversals;
//! * [`link`] — a packetized latency/bandwidth link used for the PCIe
//!   host–device interconnect and for kernel-launch control transfers;
//! * [`coalesce`] — a request coalescer merging adjacent word accesses
//!   into wide memory transactions (GPU warps, FPGA vector ports);
//! * [`hierarchy`] — a composed cache hierarchy + DRAM with a
//!   bounded-MLP (memory-level-parallelism) event-driven cost model.
//!
//! All models are *deterministic*: the same access stream always produces
//! the same cycle counts, which keeps the benchmark reproducible and the
//! tests meaningful.
//!
//! Addresses are plain `u64` byte addresses in a flat simulated physical
//! address space; time is carried either in cycles of a model-local clock
//! (see [`clock::Freq`]) or in nanoseconds.

pub mod analytic;
pub mod cache;
pub mod clock;
pub mod coalesce;
pub mod controller;
pub mod dram;
pub mod hierarchy;
pub mod link;
pub mod prefetch;
pub mod req;
pub mod slowpath;
pub mod stats;
pub mod tlb;

pub use cache::{Cache, CacheConfig};
pub use clock::Freq;
pub use coalesce::{BufferedCoalesce, CoalesceMode, Coalescer};
pub use controller::{
    interleaved_trace, MemoryController, ReplayOutcome, SchedPolicy, TimedRequest,
};
pub use dram::{Dram, DramConfig};
pub use hierarchy::{
    MemHierarchy, MemHierarchyConfig, PrefetchConfig, StreamOutcome, TlbConfig, WritePolicy,
};
pub use link::{Link, LinkConfig};
pub use prefetch::StreamPrefetcher;
pub use req::{Access, AccessKind};
pub use stats::MemStats;
