//! A small fully-associative TLB with LRU replacement.
//!
//! Strided (column-major) traversals of large arrays touch a new page on
//! nearly every access once the row length exceeds the page size; the
//! resulting page-walk serialization is one of the mechanisms behind the
//! strided-bandwidth collapse in Figure 2 of the paper.

/// How many recently-touched entry indices the MRU filter remembers.
const MRU_WAYS: usize = 4;

/// Translation look-aside buffer.
#[derive(Debug, Clone)]
pub struct Tlb {
    page_bytes: u64,
    page_shift: u32,
    entries: Vec<(u64, u64)>, // (page number, last-use tick)
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    // Indices into `entries` of the most recently used translations,
    // front = newest. Streaming sweeps hit the same page for thousands of
    // consecutive accesses, so this skips the linear scan almost always.
    // Purely an acceleration structure: pages are unique in `entries`, so
    // finding the entry through the filter instead of the scan cannot
    // change any hit/miss outcome or tick value.
    mru: [u32; MRU_WAYS],
}

impl Tlb {
    /// Create a TLB covering `capacity` pages of `page_bytes` each.
    pub fn new(capacity: usize, page_bytes: u64) -> Self {
        assert!(capacity > 0, "TLB needs at least one entry");
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            page_bytes,
            page_shift: page_bytes.trailing_zeros(),
            entries: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            mru: [u32::MAX; MRU_WAYS],
        }
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Total bytes the TLB can map.
    pub fn reach_bytes(&self) -> u64 {
        self.capacity as u64 * self.page_bytes
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drop all translations and counters.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
        self.mru = [u32::MAX; MRU_WAYS];
    }

    /// Move `idx` (a valid `entries` index) to the front of the MRU
    /// filter, shifting the others back.
    fn promote(&mut self, idx: u32) {
        if self.mru[0] == idx {
            return;
        }
        let mut prev = idx;
        for slot in &mut self.mru {
            std::mem::swap(slot, &mut prev);
            if prev == idx {
                break; // It was already in the filter further back.
            }
        }
    }

    /// Look up `page` via the MRU filter, then the full scan.
    fn find(&self, page: u64) -> Option<usize> {
        for &idx in &self.mru {
            if let Some(&(p, _)) = self.entries.get(idx as usize) {
                if p == page {
                    return Some(idx as usize);
                }
            }
        }
        self.entries.iter().position(|(p, _)| *p == page)
    }

    /// Translate the page containing `addr`; returns `true` on hit,
    /// `false` when a page walk is required (the entry is installed).
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let page = addr >> self.page_shift;
        if let Some(idx) = self.find(page) {
            self.entries[idx].1 = self.tick;
            self.hits += 1;
            self.promote(idx as u32);
            return true;
        }
        self.misses += 1;
        if self.entries.len() == self.capacity {
            // Evict LRU.
            let (idx, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .expect("non-empty");
            self.entries.swap_remove(idx);
            // swap_remove moves the tail entry into `idx`, invalidating
            // any cached indices.
            self.mru = [u32::MAX; MRU_WAYS];
        }
        self.entries.push((page, self.tick));
        self.promote((self.entries.len() - 1) as u32);
        false
    }

    /// Translate `count` back-to-back accesses that all fall in the page
    /// containing `addr`. Returns the outcome of the *first* access; the
    /// remaining `count - 1` are guaranteed hits on the just-touched
    /// entry. Equivalent to calling [`access`](Self::access) `count`
    /// times with same-page addresses, in O(1) after the first.
    pub fn access_run(&mut self, addr: u64, count: u64) -> bool {
        debug_assert!(count >= 1);
        let first = self.access(addr);
        if count > 1 {
            self.tick += count - 1;
            self.hits += count - 1;
            let idx = self.mru[0] as usize;
            debug_assert_eq!(self.entries[idx].0, addr >> self.page_shift);
            self.entries[idx].1 = self.tick;
        }
        first
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_install() {
        let mut t = Tlb::new(4, 4096);
        assert!(!t.access(0));
        assert!(t.access(100), "same page");
        assert!(!t.access(4096), "next page");
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2, 4096);
        t.access(0); // page 0
        t.access(4096); // page 1
        t.access(0); // page 0 warm
        t.access(8192); // page 2 evicts page 1
        assert!(t.access(0), "page 0 retained");
        assert!(!t.access(4096), "page 1 evicted");
    }

    #[test]
    fn reach() {
        let t = Tlb::new(64, 2 * 1024 * 1024);
        assert_eq!(t.reach_bytes(), 128 * 1024 * 1024);
    }

    #[test]
    fn sequential_within_reach_misses_once_per_page() {
        let mut t = Tlb::new(8, 4096);
        for addr in (0..8 * 4096u64).step_by(64) {
            t.access(addr);
        }
        assert_eq!(t.misses(), 8);
    }

    #[test]
    fn access_run_matches_repeated_access() {
        let mut batched = Tlb::new(4, 4096);
        let mut serial = Tlb::new(4, 4096);
        let mut state = 0xdead_beef_cafe_f00du64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _ in 0..300 {
            let r = next();
            let addr = r % (16 * 4096);
            let count = (r >> 32) % 7 + 1;
            let b = batched.access_run(addr, count);
            let s = serial.access(addr);
            for _ in 1..count {
                assert!(serial.access(addr), "later same-page accesses hit");
            }
            assert_eq!(b, s);
            assert_eq!(batched.hits(), serial.hits());
            assert_eq!(batched.misses(), serial.misses());
        }
        // Replacement state must match too: probe every page once.
        for page in 0..16u64 {
            assert_eq!(
                batched.access(page * 4096),
                serial.access(page * 4096),
                "page {page} residency diverged"
            );
        }
    }

    #[test]
    fn mru_filter_preserves_lru_order() {
        // A pattern that cycles through capacity+1 pages exercises
        // eviction with a warm MRU filter; outcomes must match the
        // textbook LRU sequence.
        let mut t = Tlb::new(3, 4096);
        for round in 0..4 {
            for page in 0..4u64 {
                let hit = t.access(page * 4096);
                assert!(!hit, "round {round} page {page}: cyclic thrash never hits");
            }
        }
        assert_eq!(t.misses(), 16);
        assert_eq!(t.hits(), 0);
    }

    #[test]
    fn reset_clears() {
        let mut t = Tlb::new(2, 4096);
        t.access(0);
        t.reset();
        assert!(!t.access(0));
        assert_eq!(t.misses(), 1);
    }
}
