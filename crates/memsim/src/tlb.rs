//! A small fully-associative TLB with LRU replacement.
//!
//! Strided (column-major) traversals of large arrays touch a new page on
//! nearly every access once the row length exceeds the page size; the
//! resulting page-walk serialization is one of the mechanisms behind the
//! strided-bandwidth collapse in Figure 2 of the paper.

/// Translation look-aside buffer.
#[derive(Debug, Clone)]
pub struct Tlb {
    page_bytes: u64,
    entries: Vec<(u64, u64)>, // (page number, last-use tick)
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Create a TLB covering `capacity` pages of `page_bytes` each.
    pub fn new(capacity: usize, page_bytes: u64) -> Self {
        assert!(capacity > 0, "TLB needs at least one entry");
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        Tlb {
            page_bytes,
            entries: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Total bytes the TLB can map.
    pub fn reach_bytes(&self) -> u64 {
        self.capacity as u64 * self.page_bytes
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drop all translations and counters.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.tick = 0;
        self.hits = 0;
        self.misses = 0;
    }

    /// Translate the page containing `addr`; returns `true` on hit,
    /// `false` when a page walk is required (the entry is installed).
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let page = addr / self.page_bytes;
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == page) {
            e.1 = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() == self.capacity {
            // Evict LRU.
            let (idx, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .expect("non-empty");
            self.entries.swap_remove(idx);
        }
        self.entries.push((page, self.tick));
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_install() {
        let mut t = Tlb::new(4, 4096);
        assert!(!t.access(0));
        assert!(t.access(100), "same page");
        assert!(!t.access(4096), "next page");
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2, 4096);
        t.access(0); // page 0
        t.access(4096); // page 1
        t.access(0); // page 0 warm
        t.access(8192); // page 2 evicts page 1
        assert!(t.access(0), "page 0 retained");
        assert!(!t.access(4096), "page 1 evicted");
    }

    #[test]
    fn reach() {
        let t = Tlb::new(64, 2 * 1024 * 1024);
        assert_eq!(t.reach_bytes(), 128 * 1024 * 1024);
    }

    #[test]
    fn sequential_within_reach_misses_once_per_page() {
        let mut t = Tlb::new(8, 4096);
        for addr in (0..8 * 4096u64).step_by(64) {
            t.access(addr);
        }
        assert_eq!(t.misses(), 8);
    }

    #[test]
    fn reset_clears() {
        let mut t = Tlb::new(2, 4096);
        t.access(0);
        t.reset();
        assert!(!t.access(0));
        assert_eq!(t.misses(), 1);
    }
}
