//! The `MPSTREAM_SIM_SLOW` oracle switch.
//!
//! The hierarchy engine and the target-layer cost memo both ship a fast
//! path whose contract is *byte-identical output* to the original
//! per-request implementation. Setting `MPSTREAM_SIM_SLOW=1` routes every
//! simulation through the original code and disables the memo, turning
//! the slow path into a reference oracle the equivalence suite (and any
//! suspicious user) can diff the fast path against.
//!
//! The environment is read once; tests and the `bench-self` harness can
//! override the mode at runtime with [`force`] to compare both paths
//! inside one process.

use std::sync::atomic::{AtomicU8, Ordering};

const UNSET: u8 = 0;
const FAST: u8 = 1;
const SLOW: u8 = 2;

static MODE: AtomicU8 = AtomicU8::new(UNSET);

/// Is the per-request reference path selected? First call latches the
/// `MPSTREAM_SIM_SLOW` environment variable (the literal `"1"` enables,
/// matching every other boolean `MPSTREAM_*` switch).
pub fn slow() -> bool {
    match MODE.load(Ordering::Relaxed) {
        SLOW => true,
        FAST => false,
        _ => {
            let slow = std::env::var("MPSTREAM_SIM_SLOW")
                .map(|v| v == "1")
                .unwrap_or(false);
            MODE.store(if slow { SLOW } else { FAST }, Ordering::Relaxed);
            slow
        }
    }
}

/// Force the mode for the rest of the process (overrides the
/// environment). Used by the self-benchmark and the equivalence tests to
/// exercise both paths in one process.
pub fn force(slow: bool) {
    MODE.store(if slow { SLOW } else { FAST }, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_overrides_and_latches() {
        force(true);
        assert!(slow());
        force(false);
        assert!(!slow());
    }
}
