//! A banked, multi-channel DRAM timing model.
//!
//! The model tracks, per channel, when the data bus is next free and the
//! direction of the last transfer (read/write turnaround costs idle bus
//! cycles), and per bank, the currently open row and when the bank can
//! accept its next column command. Sequential streams with good request
//! parallelism therefore saturate the data bus (peak bandwidth), while
//! dependent or row-thrashing streams degrade to command-latency rates —
//! exactly the distinction the MP-STREAM figures hinge on.
//!
//! Time inside the model is counted in cycles of the *effective data-rate
//! clock* ([`DramConfig::freq`]): one cycle moves
//! [`DramConfig::bus_bytes_per_cycle`] bytes on one channel. Peak
//! bandwidth is therefore `channels * bus_bytes_per_cycle * freq`.
//!
//! Address mapping is `row : bank : channel : offset` with channel
//! interleaving at [`DramConfig::interleave_bytes`] granularity, the usual
//! layout for spreading a sequential stream over all channels.

use crate::clock::Freq;
use crate::req::{Access, AccessKind};
use crate::stats::MemStats;

/// Static configuration of a DRAM device.
#[derive(Debug, Clone)]
pub struct DramConfig {
    /// Independent channels, each with its own data bus.
    pub channels: u32,
    /// Banks per channel.
    pub banks_per_channel: u32,
    /// Row-buffer (open page) size per bank, bytes.
    pub row_bytes: u32,
    /// Bytes transferred per cycle of `freq` on one channel's data bus.
    pub bus_bytes_per_cycle: u32,
    /// Effective data-rate frequency (MT/s expressed as a [`Freq`]).
    pub freq: Freq,
    /// Column access (CAS) latency, cycles.
    pub t_cas: u64,
    /// Row-activate to column-command delay, cycles.
    pub t_rcd: u64,
    /// Row precharge time, cycles.
    pub t_rp: u64,
    /// Bus idle cycles inserted when the transfer direction flips.
    pub t_turnaround: u64,
    /// Fraction of time lost to refresh, e.g. `0.03` for 3 %.
    pub refresh_overhead: f64,
    /// Channel interleave granularity, bytes.
    pub interleave_bytes: u32,
}

impl DramConfig {
    /// Theoretical peak bandwidth in GB/s (1 GB = 1e9 bytes, as in STREAM).
    pub fn peak_gbps(&self) -> f64 {
        self.channels as f64 * self.bus_bytes_per_cycle as f64 * self.freq.as_mhz() * 1e6 / 1e9
    }

    /// 4-channel DDR3-1066-ish system: ~34 GB/s peak, matching the paper's
    /// Xeon E5-2609 v2 host ("34 GB/s Peak BW").
    pub fn ddr3_quad_channel() -> Self {
        DramConfig {
            channels: 4,
            banks_per_channel: 8,
            row_bytes: 8192,
            bus_bytes_per_cycle: 8,
            freq: Freq::mhz(1066.0),
            t_cas: 12,
            t_rcd: 12,
            t_rp: 12,
            t_turnaround: 5,
            refresh_overhead: 0.03,
            interleave_bytes: 256,
        }
    }

    /// GDDR5 on a 384-bit bus at 7 GT/s: 336 GB/s peak, matching the
    /// paper's GTX Titan Black.
    pub fn gddr5_titan() -> Self {
        DramConfig {
            channels: 12,
            banks_per_channel: 16,
            row_bytes: 2048,
            bus_bytes_per_cycle: 4,
            freq: Freq::mhz(7000.0),
            t_cas: 60,
            t_rcd: 60,
            t_rp: 60,
            t_turnaround: 16,
            refresh_overhead: 0.03,
            interleave_bytes: 256,
        }
    }

    /// Two-bank-of-DDR3 board memory: 25.6 GB/s peak, matching the
    /// Nallatech PCIe-385 (Stratix V, "25 GB/s Peak BW").
    pub fn ddr3_fpga_aocl() -> Self {
        DramConfig {
            channels: 2,
            banks_per_channel: 8,
            row_bytes: 8192,
            bus_bytes_per_cycle: 8,
            freq: Freq::mhz(1600.0),
            t_cas: 16,
            t_rcd: 16,
            t_rp: 16,
            t_turnaround: 10,
            refresh_overhead: 0.03,
            interleave_bytes: 512,
        }
    }

    /// Dual-channel DDR4-2133 as on Arria-10 dev boards (the "newer
    /// FPGA boards" the paper's future work points to): ~34 GB/s peak.
    pub fn ddr4_fpga_arria10() -> Self {
        DramConfig {
            channels: 2,
            banks_per_channel: 16,
            row_bytes: 8192,
            bus_bytes_per_cycle: 8,
            freq: Freq::mhz(2133.0),
            t_cas: 32,
            t_rcd: 32,
            t_rp: 32,
            t_turnaround: 12,
            refresh_overhead: 0.03,
            interleave_bytes: 512,
        }
    }

    /// A Hybrid Memory Cube stack as FPGA boards started shipping it
    /// (the paper's outlook: HMC "can change the picture considerably"):
    /// four half-width serial links into a 3D-stacked DRAM, ~60 GB/s
    /// usable. Many narrow pseudo-channels with small closed pages —
    /// high peak bandwidth *and* far better tolerance of irregular
    /// access than DDR3 (row misses barely cost anything).
    pub fn hmc_fpga() -> Self {
        DramConfig {
            channels: 16,
            banks_per_channel: 16,
            row_bytes: 256,
            bus_bytes_per_cycle: 4,
            freq: Freq::mhz(937.5),
            t_cas: 8,
            t_rcd: 8,
            t_rp: 4,
            t_turnaround: 2,
            refresh_overhead: 0.02,
            interleave_bytes: 128,
        }
    }

    /// Single-channel DDR3-1333: ~10.6 GB/s peak, matching the Alpha-Data
    /// ADM-PCIE-V7 board ("10 GB/s Peak BW").
    pub fn ddr3_fpga_sdaccel() -> Self {
        DramConfig {
            channels: 1,
            banks_per_channel: 8,
            row_bytes: 8192,
            bus_bytes_per_cycle: 8,
            freq: Freq::mhz(1333.0),
            t_cas: 13,
            t_rcd: 13,
            t_rp: 13,
            t_turnaround: 9,
            refresh_overhead: 0.03,
            interleave_bytes: 4096,
        }
    }
}

/// Per-bank dynamic state.
#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    /// Currently open row index, if any.
    open_row: Option<u64>,
    /// Cycle at which the bank can accept its next column command.
    ready_at: u64,
}

/// Per-channel dynamic state.
#[derive(Debug, Clone, Copy, Default)]
struct Channel {
    /// Cycle at which the data bus finishes its current burst.
    bus_free_at: u64,
    /// Direction of the last data transfer on this channel.
    last_kind: Option<AccessKind>,
}

/// The timed DRAM device. Create one per simulated board.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<Bank>, // channels * banks_per_channel
    channels: Vec<Channel>,
    stats: MemStats,
}

impl Dram {
    /// Build a DRAM with all banks precharged and buses idle.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.channels > 0 && cfg.banks_per_channel > 0);
        assert!(cfg.interleave_bytes > 0 && cfg.row_bytes > 0);
        let banks = vec![Bank::default(); (cfg.channels * cfg.banks_per_channel) as usize];
        let channels = vec![Channel::default(); cfg.channels as usize];
        Dram {
            cfg,
            banks,
            channels,
            stats: MemStats::new(),
        }
    }

    /// The configuration this device was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Reset dynamic state and counters (a fresh run on the same device).
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            *b = Bank::default();
        }
        for c in &mut self.channels {
            *c = Channel::default();
        }
        self.stats = MemStats::new();
    }

    /// Clock-domain helper: convert a nanosecond timestamp into this
    /// DRAM's cycle domain.
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        self.cfg.freq.ns_to_cycles(ns)
    }

    /// Clock-domain helper: convert a cycle timestamp into nanoseconds.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        self.cfg.freq.cycles_to_ns(cycles)
    }

    /// Stretch a duration to account for refresh overhead.
    pub fn derate_ns(&self, ns: f64) -> f64 {
        ns / (1.0 - self.cfg.refresh_overhead)
    }

    /// Service a transaction issued at cycle `at`; returns `(start, done)`
    /// cycles. Transactions larger than the interleave granularity are
    /// split across channels and proceed in parallel; `done` is when the
    /// last chunk's data completes.
    pub fn service(&mut self, at: u64, acc: Access) -> (u64, u64) {
        let mut start_min = u64::MAX;
        let mut done_max = 0u64;
        let mut addr = acc.addr;
        let mut remaining = acc.bytes as u64;
        while remaining > 0 {
            let in_chunk = (self.cfg.interleave_bytes as u64
                - addr % self.cfg.interleave_bytes as u64)
                .min(remaining);
            let (s, d) = self.service_chunk(at, addr, in_chunk as u32, acc.kind);
            start_min = start_min.min(s);
            done_max = done_max.max(d);
            addr += in_chunk;
            remaining -= in_chunk;
        }
        (start_min, done_max)
    }

    /// Address mapping `row : bank : channel : offset` — returns
    /// `(channel index, global bank index, row number)`.
    fn map(&self, addr: u64) -> (usize, usize, u64) {
        let cfg = &self.cfg;
        let chan_idx = ((addr / cfg.interleave_bytes as u64) % cfg.channels as u64) as usize;
        // Channel-local byte address: collapse the interleave stripes.
        let stripe = addr / (cfg.interleave_bytes as u64 * cfg.channels as u64);
        let local = stripe * cfg.interleave_bytes as u64 + addr % cfg.interleave_bytes as u64;
        let bank_idx = ((local / cfg.row_bytes as u64) % cfg.banks_per_channel as u64) as usize;
        let row = local / (cfg.row_bytes as u64 * cfg.banks_per_channel as u64);
        (
            chan_idx,
            chan_idx * cfg.banks_per_channel as usize + bank_idx,
            row,
        )
    }

    /// Would an access at `addr` hit its bank's currently open row?
    /// Pure peek — no state change (used by scheduling policies).
    pub fn peek_row_hit(&self, addr: u64) -> bool {
        let (_, bank, row) = self.map(addr);
        self.banks[bank].open_row == Some(row)
    }

    /// Service one chunk that lives entirely within a single channel's
    /// interleave unit.
    fn service_chunk(&mut self, at: u64, addr: u64, bytes: u32, kind: AccessKind) -> (u64, u64) {
        let (chan_idx, global_bank, row) = self.map(addr);
        let cfg = &self.cfg;

        // Row-buffer outcome decides the command latency.
        let cmd_lat = match self.banks[global_bank].open_row {
            Some(r) if r == row => {
                self.stats.row_hits += 1;
                cfg.t_cas
            }
            Some(_) => {
                self.stats.row_misses += 1;
                cfg.t_rp + cfg.t_rcd + cfg.t_cas
            }
            None => {
                self.stats.row_empty += 1;
                cfg.t_rcd + cfg.t_cas
            }
        };

        let chan = &mut self.channels[chan_idx];
        let turnaround = match chan.last_kind {
            Some(k) if k != kind => {
                self.stats.bus_turnarounds += 1;
                cfg.t_turnaround
            }
            _ => 0,
        };

        // The column command can issue once the bank is ready; its data
        // needs the bus free (plus any direction change gap). Commands of
        // later transactions overlap with earlier data transfers, so a
        // row-hit stream keeps the bus 100 % occupied.
        let cmd_at = at.max(self.banks[global_bank].ready_at);
        let data_start = (cmd_at + cmd_lat).max(chan.bus_free_at + turnaround);
        let data_cycles = (bytes as u64).div_ceil(cfg.bus_bytes_per_cycle as u64);
        let done = data_start + data_cycles;

        chan.bus_free_at = done;
        chan.last_kind = Some(kind);
        self.banks[global_bank].open_row = Some(row);
        // Column commands pipeline: the next CAS to this bank may issue
        // one burst-length after this one's *effective* CAS slot, so a
        // row-hit stream keeps the data bus fully occupied.
        self.banks[global_bank].ready_at = (data_start + data_cycles).saturating_sub(cfg.t_cas);

        self.stats.dram_transactions += 1;
        self.stats.dram_bytes += bytes as u64;
        (data_start.saturating_sub(cmd_lat), done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> DramConfig {
        DramConfig {
            channels: 1,
            banks_per_channel: 2,
            row_bytes: 1024,
            bus_bytes_per_cycle: 8,
            freq: Freq::mhz(1000.0),
            t_cas: 10,
            t_rcd: 10,
            t_rp: 10,
            t_turnaround: 6,
            refresh_overhead: 0.0,
            interleave_bytes: 256,
        }
    }

    #[test]
    fn peak_bandwidth_formula() {
        let cfg = DramConfig::ddr3_quad_channel();
        let peak = cfg.peak_gbps();
        assert!((peak - 34.1).abs() < 0.2, "peak {peak}");
        assert!((DramConfig::gddr5_titan().peak_gbps() - 336.0).abs() < 1.0);
        assert!((DramConfig::ddr3_fpga_aocl().peak_gbps() - 25.6).abs() < 0.2);
        assert!((DramConfig::ddr3_fpga_sdaccel().peak_gbps() - 10.66).abs() < 0.2);
    }

    #[test]
    fn first_access_pays_activate_plus_cas() {
        let mut d = Dram::new(small_cfg());
        let (_, done) = d.service(0, Access::read(0, 64));
        // t_rcd + t_cas + 64/8 data cycles.
        assert_eq!(done, 10 + 10 + 8);
        assert_eq!(d.stats().row_empty, 1);
    }

    #[test]
    fn row_hit_streams_back_to_back() {
        let mut d = Dram::new(small_cfg());
        let (_, d1) = d.service(0, Access::read(0, 64));
        let (_, d2) = d.service(0, Access::read(64, 64));
        // Second burst's command overlaps the first burst's data: the bus
        // never idles, so exactly 8 more data cycles.
        assert_eq!(d2 - d1, 8);
        assert_eq!(d.stats().row_hits, 1);
    }

    #[test]
    fn row_miss_pays_precharge() {
        let mut d = Dram::new(small_cfg());
        // Two rows on the same bank: rows alternate every
        // row_bytes * banks bytes within one channel.
        let row_stride = 1024 * 2; // row_bytes * banks_per_channel
        d.service(0, Access::read(0, 64));
        let before = d.stats().row_misses;
        d.service(0, Access::read(row_stride, 64));
        // Different bank actually — bank = (local/row) % banks. addr 2048
        // maps to bank 0 row 1, so it is a miss on bank 0? local=2048,
        // bank=(2048/1024)%2=0, row=2048/2048=1 → same bank, new row.
        assert_eq!(d.stats().row_misses, before + 1);
    }

    #[test]
    fn turnaround_counted_on_direction_flip() {
        let mut d = Dram::new(small_cfg());
        d.service(0, Access::read(0, 64));
        d.service(0, Access::write(64, 64));
        assert_eq!(d.stats().bus_turnarounds, 1);
        d.service(0, Access::write(128, 64));
        assert_eq!(d.stats().bus_turnarounds, 1);
    }

    #[test]
    fn saturated_stream_reaches_peak_bandwidth() {
        let cfg = small_cfg();
        let peak = cfg.peak_gbps();
        let mut d = Dram::new(cfg);
        // Issue a long sequential read stream, all available at t=0.
        let n = 4096u64;
        let mut done = 0;
        for i in 0..n {
            let (_, dn) = d.service(0, Access::read(i * 64, 64));
            done = done.max(dn);
        }
        let ns = d.cycles_to_ns(done);
        let gbps = (n * 64) as f64 / ns;
        // Sequential same-row bursts should land within 5 % of peak.
        assert!(gbps > 0.95 * peak, "gbps {gbps} vs peak {peak}");
    }

    #[test]
    fn strided_dependent_stream_is_much_slower() {
        let cfg = small_cfg();
        let mut d = Dram::new(cfg);
        // Strided reads, each issued only after the previous completes
        // (MLP = 1) and each hitting a new row on the same bank.
        let mut t = 0u64;
        let n = 256u64;
        for i in 0..n {
            let (_, done) = d.service(t, Access::read(i * 2048, 64));
            t = done;
        }
        let ns = d.cycles_to_ns(t);
        let gbps = (n * 64) as f64 / ns;
        assert!(gbps < 0.35 * d.config().peak_gbps(), "gbps {gbps}");
    }

    #[test]
    fn large_transaction_splits_across_channels() {
        let mut cfg = small_cfg();
        cfg.channels = 2;
        let mut d = Dram::new(cfg);
        // 1 KiB burst = 4 interleave chunks over 2 channels.
        d.service(0, Access::read(0, 1024));
        assert_eq!(d.stats().dram_transactions, 4);
        assert_eq!(d.stats().dram_bytes, 1024);
    }

    #[test]
    fn reset_clears_state() {
        let mut d = Dram::new(small_cfg());
        d.service(0, Access::read(0, 64));
        d.reset();
        assert_eq!(d.stats().dram_transactions, 0);
        let (_, done) = d.service(0, Access::read(0, 64));
        assert_eq!(done, 28); // identical to a fresh device
    }

    #[test]
    fn derate_accounts_refresh() {
        let mut cfg = small_cfg();
        cfg.refresh_overhead = 0.05;
        let d = Dram::new(cfg);
        assert!((d.derate_ns(95.0) - 100.0).abs() < 1e-9);
    }
}
