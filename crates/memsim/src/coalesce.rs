//! Memory-request coalescing.
//!
//! GPUs coalesce the per-work-item accesses of a warp into aligned
//! memory-segment transactions; OpenCL-FPGA memory controllers do the
//! same for vectorized kernel arguments ("up to 16 words", §III of the
//! paper). The coalescer here implements the aligned-segment rule: all
//! same-direction accesses inside a window that touch the same aligned
//! `segment_bytes` block become one transaction *of the whole segment* —
//! so a stride-2 pattern still moves full segments and wastes half the
//! bus, which is precisely the GPU-strided behaviour in Figure 2.

use crate::req::{Access, AccessKind};

/// How accesses merge into transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoalesceMode {
    /// GPU-style: any touched aligned segment is transferred whole, so a
    /// sparse pattern still moves full segments (wasting bus bytes).
    AlignedSegment,
    /// FPGA-LSU-style: abutting same-direction accesses merge into one
    /// burst of their exact union extent, capped at the segment size;
    /// non-abutting accesses stay as-is (no inflation).
    Extent,
}

/// Coalesces a window of accesses into memory transactions.
#[derive(Debug, Clone, Copy)]
pub struct Coalescer {
    /// Aligned transaction granularity / maximum burst length in bytes.
    pub segment_bytes: u32,
    /// How many consecutive accesses form one coalescing window (e.g. a
    /// 32-lane warp). Window boundaries never merge.
    pub window: usize,
    /// Merging rule.
    pub mode: CoalesceMode,
}

impl Coalescer {
    /// Create an aligned-segment coalescer; `segment_bytes` must be a
    /// power of two.
    pub fn new(segment_bytes: u32, window: usize) -> Self {
        assert!(segment_bytes.is_power_of_two());
        assert!(window >= 1);
        Coalescer {
            segment_bytes,
            window,
            mode: CoalesceMode::AlignedSegment,
        }
    }

    /// Create an extent (burst) coalescer.
    pub fn extent(max_burst_bytes: u32, window: usize) -> Self {
        assert!(max_burst_bytes.is_power_of_two());
        assert!(window >= 1);
        Coalescer {
            segment_bytes: max_burst_bytes,
            window,
            mode: CoalesceMode::Extent,
        }
    }

    /// Coalesce one window of accesses (typically one warp's lane
    /// accesses for one instruction). Returns the resulting transactions
    /// in address order (aligned mode) or program order (extent mode).
    pub fn coalesce_window(&self, window: &[Access]) -> Vec<Access> {
        match self.mode {
            CoalesceMode::AlignedSegment => self.coalesce_aligned(window),
            CoalesceMode::Extent => self.coalesce_extent(window),
        }
    }

    fn coalesce_aligned(&self, window: &[Access]) -> Vec<Access> {
        let seg = self.segment_bytes as u64;
        let mut segments: Vec<(u64, AccessKind)> = Vec::new();
        for a in window {
            let mut s = a.addr & !(seg - 1);
            let end = a.end();
            while s < end {
                if !segments.iter().any(|&(b, k)| b == s && k == a.kind) {
                    segments.push((s, a.kind));
                }
                s += seg;
            }
        }
        segments.sort_unstable_by_key(|&(b, _)| b);
        segments
            .into_iter()
            .map(|(base, kind)| Access {
                addr: base,
                bytes: self.segment_bytes,
                kind,
            })
            .collect()
    }

    fn coalesce_extent(&self, window: &[Access]) -> Vec<Access> {
        let mut out: Vec<Access> = Vec::new();
        for &a in window {
            if let Some(last) = out.last_mut() {
                if last.abuts(&a) && last.bytes + a.bytes <= self.segment_bytes {
                    last.bytes += a.bytes;
                    continue;
                }
            }
            out.push(a);
        }
        out
    }

    /// Stream adapter: consume an access iterator, emitting coalesced
    /// transactions window by window.
    pub fn coalesce<I>(&self, iter: I) -> CoalesceIter<I::IntoIter>
    where
        I: IntoIterator<Item = Access>,
    {
        CoalesceIter {
            co: *self,
            inner: iter.into_iter(),
            pending: Vec::new(),
            out: Vec::new(),
        }
    }

    /// Like [`Coalescer::coalesce`], but reuses its window, scratch and
    /// output buffers across windows instead of allocating fresh vectors
    /// per window. Emits exactly the same transaction sequence; the
    /// simulator's fast path uses this to keep the hot loop
    /// allocation-free, while the [`Coalescer::coalesce`] chain stays
    /// the straightforward reference implementation.
    pub fn coalesce_buffered<I>(&self, iter: I) -> BufferedCoalesce<I::IntoIter>
    where
        I: IntoIterator<Item = Access>,
    {
        BufferedCoalesce {
            co: *self,
            inner: iter.into_iter(),
            pending: Vec::with_capacity(self.window),
            segs: Vec::new(),
            out: Vec::new(),
            cursor: 0,
        }
    }
}

/// Iterator returned by [`Coalescer::coalesce`].
#[derive(Debug)]
pub struct CoalesceIter<I: Iterator<Item = Access>> {
    co: Coalescer,
    inner: I,
    pending: Vec<Access>,
    out: Vec<Access>,
}

impl<I: Iterator<Item = Access>> Iterator for CoalesceIter<I> {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        loop {
            if let Some(a) = self.out.pop() {
                return Some(a);
            }
            self.pending.clear();
            for a in self.inner.by_ref() {
                self.pending.push(a);
                if self.pending.len() == self.co.window {
                    break;
                }
            }
            if self.pending.is_empty() {
                return None;
            }
            let mut segs = self.co.coalesce_window(&self.pending);
            segs.reverse(); // pop() from the back yields address order
            self.out = segs;
        }
    }
}

/// Iterator returned by [`Coalescer::coalesce_buffered`]. Identical
/// output to [`CoalesceIter`]; buffers persist across windows.
#[derive(Debug)]
pub struct BufferedCoalesce<I: Iterator<Item = Access>> {
    co: Coalescer,
    inner: I,
    pending: Vec<Access>,
    /// Scratch for aligned-mode segment dedup.
    segs: Vec<(u64, AccessKind)>,
    out: Vec<Access>,
    cursor: usize,
}

impl<I: Iterator<Item = Access>> Iterator for BufferedCoalesce<I> {
    type Item = Access;

    #[inline]
    fn next(&mut self) -> Option<Access> {
        loop {
            if self.cursor < self.out.len() {
                let a = self.out[self.cursor];
                self.cursor += 1;
                return Some(a);
            }
            self.pending.clear();
            for a in self.inner.by_ref() {
                self.pending.push(a);
                if self.pending.len() == self.co.window {
                    break;
                }
            }
            if self.pending.is_empty() {
                return None;
            }
            self.out.clear();
            self.cursor = 0;
            match self.co.mode {
                // Same merge rule as `coalesce_extent`, appending into
                // the reused buffer (cleared above, so windows never
                // merge across the boundary).
                CoalesceMode::Extent => {
                    for &a in &self.pending {
                        if let Some(last) = self.out.last_mut() {
                            if last.abuts(&a) && last.bytes + a.bytes <= self.co.segment_bytes {
                                last.bytes += a.bytes;
                                continue;
                            }
                        }
                        self.out.push(a);
                    }
                }
                // Same dedup + sort as `coalesce_aligned`, with the
                // segment list kept in a reused scratch vector.
                CoalesceMode::AlignedSegment => {
                    let seg = self.co.segment_bytes as u64;
                    self.segs.clear();
                    for a in &self.pending {
                        let mut s = a.addr & !(seg - 1);
                        let end = a.end();
                        while s < end {
                            if !self.segs.iter().any(|&(b, k)| b == s && k == a.kind) {
                                self.segs.push((s, a.kind));
                            }
                            s += seg;
                        }
                    }
                    self.segs.sort_unstable_by_key(|&(b, _)| b);
                    self.out
                        .extend(self.segs.iter().map(|&(base, kind)| Access {
                            addr: base,
                            bytes: self.co.segment_bytes,
                            kind,
                        }));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_contiguous_warp_is_one_segment_per_128b() {
        let co = Coalescer::new(128, 32);
        // 32 lanes x 4 B contiguous = 128 B = exactly one segment.
        let window: Vec<_> = (0..32).map(|i| Access::read(i * 4, 4)).collect();
        let out = co.coalesce_window(&window);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], Access::read(0, 128));
    }

    #[test]
    fn stride_two_doubles_the_segments() {
        let co = Coalescer::new(128, 32);
        let window: Vec<_> = (0..32).map(|i| Access::read(i * 8, 4)).collect();
        let out = co.coalesce_window(&window);
        assert_eq!(out.len(), 2, "touches 256 B = 2 segments for 128 B useful");
    }

    #[test]
    fn scattered_accesses_do_not_merge() {
        let co = Coalescer::new(128, 4);
        let window: Vec<_> = (0..4).map(|i| Access::read(i * 4096, 4)).collect();
        let out = co.coalesce_window(&window);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn reads_and_writes_stay_separate() {
        let co = Coalescer::new(128, 2);
        let out = co.coalesce_window(&[Access::read(0, 4), Access::write(4, 4)]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn access_spanning_segments_touches_both() {
        let co = Coalescer::new(128, 1);
        let out = co.coalesce_window(&[Access::read(120, 16)]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].addr, 0);
        assert_eq!(out[1].addr, 128);
    }

    #[test]
    fn streaming_adapter_respects_windows() {
        let co = Coalescer::new(128, 32);
        let accesses: Vec<_> = (0..64).map(|i| Access::read(i * 4, 4)).collect();
        let out: Vec<_> = co.coalesce(accesses).collect();
        // Two warps x one 128 B segment each.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].addr, 0);
        assert_eq!(out[1].addr, 128);
    }

    #[test]
    fn extent_mode_merges_abutting_runs_exactly() {
        let co = Coalescer::extent(512, 16);
        let window: Vec<_> = (0..16).map(|i| Access::read(i * 4, 4)).collect();
        let out = co.coalesce_window(&window);
        assert_eq!(out, vec![Access::read(0, 64)]);
    }

    #[test]
    fn extent_mode_respects_burst_cap() {
        let co = Coalescer::extent(32, 16);
        let window: Vec<_> = (0..16).map(|i| Access::read(i * 4, 4)).collect();
        let out = co.coalesce_window(&window);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|a| a.bytes == 32));
    }

    #[test]
    fn extent_mode_never_inflates_sparse_accesses() {
        let co = Coalescer::extent(512, 4);
        let window: Vec<_> = (0..4).map(|i| Access::read(i * 4096, 4)).collect();
        let out = co.coalesce_window(&window);
        assert_eq!(out.len(), 4);
        assert!(
            out.iter().all(|a| a.bytes == 4),
            "exact extents, no segment padding"
        );
    }

    #[test]
    fn extent_mode_splits_on_direction_change() {
        let co = Coalescer::extent(512, 4);
        let out = co.coalesce_window(&[
            Access::read(0, 4),
            Access::read(4, 4),
            Access::write(8, 4),
            Access::write(12, 4),
        ]);
        assert_eq!(out, vec![Access::read(0, 8), Access::write(8, 8)]);
    }

    #[test]
    fn buffered_adapter_matches_reference_adapter() {
        // SplitMix64-style scramble for a deterministic pseudo-random
        // access stream that exercises merging, spanning and dedup.
        fn mix(mut x: u64) -> u64 {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
            x ^ (x >> 31)
        }
        for seed in 0..4u64 {
            let accesses: Vec<Access> = (0..517)
                .map(|i| {
                    let r = mix(seed.wrapping_mul(1 << 20).wrapping_add(i));
                    let addr = (r % 4096) * 4;
                    let bytes = [4u32, 8, 16, 120][(r >> 8) as usize % 4];
                    if r >> 16 & 1 == 0 {
                        Access::read(addr, bytes)
                    } else {
                        Access::write(addr, bytes)
                    }
                })
                .collect();
            for co in [
                Coalescer::new(128, 32),
                Coalescer::new(64, 7),
                Coalescer::extent(512, 16),
                Coalescer::extent(32, 5),
            ] {
                let reference: Vec<_> = co.coalesce(accesses.iter().copied()).collect();
                let buffered: Vec<_> = co.coalesce_buffered(accesses.iter().copied()).collect();
                assert_eq!(buffered, reference, "seed={seed} co={co:?}");
            }
        }
    }

    #[test]
    fn bytes_conserved_or_inflated_never_lost() {
        // Every byte requested must be covered by some emitted segment.
        let co = Coalescer::new(64, 8);
        let accesses: Vec<_> = (0..8).map(|i| Access::read(i * 100, 4)).collect();
        let out = co.coalesce_window(&accesses);
        for a in &accesses {
            let covered = out
                .iter()
                .any(|s| s.addr <= a.addr && a.end() <= s.end() && s.kind == a.kind);
            assert!(covered, "access {a:?} not covered by {out:?}");
        }
    }
}
