//! Integration tests composing several memsim building blocks — the
//! behaviours that only emerge when DRAM, caches, prefetcher and the
//! MLP engine interact.

use memsim::{
    Access, Cache, CacheConfig, CoalesceMode, Coalescer, Dram, DramConfig, Freq, MemHierarchy,
    MemHierarchyConfig, PrefetchConfig, TlbConfig, WritePolicy,
};

fn dram() -> DramConfig {
    DramConfig {
        channels: 2,
        banks_per_channel: 8,
        row_bytes: 4096,
        bus_bytes_per_cycle: 8,
        freq: Freq::mhz(1000.0),
        t_cas: 11,
        t_rcd: 11,
        t_rp: 11,
        t_turnaround: 6,
        refresh_overhead: 0.03,
        interleave_bytes: 256,
    }
}

fn hierarchy(caches: Vec<CacheConfig>, hit_ns: Vec<f64>, mlp: usize) -> MemHierarchy {
    MemHierarchy::new(MemHierarchyConfig {
        caches,
        hit_ns,
        tlb: Some(TlbConfig {
            entries: 64,
            page_bytes: 2 << 20,
            walk_ns: 60.0,
        }),
        prefetch: Some(PrefetchConfig { degree: 32 }),
        dram: dram(),
        issue_bytes_per_ns: 32.0,
        issue_ns_per_access: 0.0,
        mlp,
        dram_extra_latency_ns: 40.0,
        write_policy: WritePolicy::Streaming,
        wc_flush_bytes: 1024,
    })
}

fn three_levels() -> Vec<CacheConfig> {
    vec![
        CacheConfig {
            size_bytes: 32 << 10,
            ways: 8,
            line_bytes: 64,
        },
        CacheConfig {
            size_bytes: 256 << 10,
            ways: 8,
            line_bytes: 64,
        },
        CacheConfig {
            size_bytes: 8 << 20,
            ways: 16,
            line_bytes: 64,
        },
    ]
}

#[test]
fn channel_parallelism_doubles_saturated_bandwidth() {
    let mut one = dram();
    one.channels = 1;
    let two = dram();
    let run = |cfg: DramConfig| {
        let peak = cfg.peak_gbps();
        let mut d = Dram::new(cfg);
        let n = 8192u64;
        let mut done = 0;
        for i in 0..n {
            let (_, dn) = d.service(0, Access::read(i * 64, 64));
            done = done.max(dn);
        }
        ((n * 64) as f64 / d.cycles_to_ns(done), peak)
    };
    let (bw1, peak1) = run(one);
    let (bw2, peak2) = run(two);
    assert!((peak2 / peak1 - 2.0).abs() < 1e-9);
    assert!(bw2 > 1.8 * bw1, "two channels: {bw2} vs one: {bw1}");
}

#[test]
fn l3_resident_working_set_never_touches_dram_after_warmup() {
    let mut h = hierarchy(three_levels(), vec![0.0, 0.5, 1.5], 16);
    // 1 MiB working set: fits L3, exceeds L1+L2.
    let pass = |h: &mut MemHierarchy| h.run((0..16_384u64).map(|i| Access::read(i * 64, 64)));
    pass(&mut h); // warm
    let warm = pass(&mut h);
    assert_eq!(
        warm.stats.dram_transactions, 0,
        "resident set must be served by the caches: {:?}",
        warm.stats
    );
    assert!(warm.stats.cache_hits.iter().sum::<u64>() >= 16_384);
}

#[test]
fn inclusive_fill_promotes_into_upper_levels() {
    let mut h = hierarchy(three_levels(), vec![0.0, 0.5, 1.5], 16);
    // Touch a line once (cold miss to DRAM), then again: the refill must
    // land in L1, so the second access is an L1 hit.
    let a = |h: &mut MemHierarchy| h.run(std::iter::once(Access::read(0, 4)));
    let cold = a(&mut h);
    assert_eq!(cold.stats.cache_misses[0], 1);
    assert_eq!(cold.stats.dram_transactions, 1);
    let warm = a(&mut h);
    assert_eq!(warm.stats.cache_hits[0], 1);
    assert_eq!(warm.stats.dram_transactions, 0);
}

#[test]
fn prefetcher_covers_most_of_a_long_contiguous_stream() {
    let mut h = hierarchy(three_levels(), vec![0.0, 0.5, 1.5], 16);
    let n = 500_000u64;
    let out = h.run((0..n).map(|i| Access::read(i * 4, 4)));
    let lines = n * 4 / 64;
    assert!(
        out.stats.prefetch_hits as f64 > 0.9 * lines as f64,
        "prefetch hits {} of {} lines",
        out.stats.prefetch_hits,
        lines
    );
    // Refresh derating keeps reported time above raw cycle time.
    assert!(out.ns > 0.0);
}

#[test]
fn write_combining_respects_flush_granularity() {
    let mut h = hierarchy(three_levels(), vec![0.0, 0.5, 1.5], 16);
    // Pure store stream, streaming policy: posted in wc_flush_bytes
    // batches, which the DRAM then slices at its 256 B channel
    // interleave — so the bus sees bytes/256 chunk-transactions, and
    // crucially *not* one transaction per 64 B line (that would be
    // bytes/64 and a turnaround storm).
    let n = 65_536u64;
    let out = h.run((0..n).map(|i| Access::write(i * 4, 4)));
    let bytes = n * 4;
    assert_eq!(
        out.stats.dram_bytes, bytes,
        "every store byte reaches DRAM once"
    );
    let chunks = bytes / 256;
    assert!(
        out.stats.dram_transactions >= chunks && out.stats.dram_transactions <= chunks + 4,
        "transactions {} vs expected ~{chunks}",
        out.stats.dram_transactions
    );
}

#[test]
fn coalescer_modes_disagree_exactly_on_sparse_patterns() {
    let sparse: Vec<Access> = (0..64).map(|i| Access::read(i * 4096, 4)).collect();
    let aligned = Coalescer::new(128, 32);
    let extent = Coalescer::extent(128, 32);
    assert_eq!(aligned.mode, CoalesceMode::AlignedSegment);
    let a_bytes: u64 = aligned
        .coalesce(sparse.clone())
        .map(|t| t.bytes as u64)
        .sum();
    let e_bytes: u64 = extent.coalesce(sparse).map(|t| t.bytes as u64).sum();
    assert_eq!(a_bytes, 64 * 128, "segments move whole 128B lines");
    assert_eq!(e_bytes, 64 * 4, "extent bursts move exactly what was asked");
}

#[test]
fn cache_hash_spreads_power_of_two_strides() {
    // 4 KiB stride over a 768-set cache: linear indexing would hit ~24
    // sets; the hashed index must keep the conflict-miss rate low for a
    // working set well under capacity.
    let mut c = Cache::new(CacheConfig {
        size_bytes: 1536 << 10,
        ways: 16,
        line_bytes: 128,
    });
    let lines = 1024u64;
    for pass in 0..3 {
        let mut misses0 = c.misses();
        for i in 0..lines {
            c.access(i * 4096, false);
        }
        misses0 = c.misses() - misses0;
        if pass > 0 {
            assert!(
                misses0 < lines / 4,
                "pass {pass}: {misses0} misses of {lines} — set hashing failed"
            );
        }
    }
}

#[test]
fn hierarchy_without_tlb_or_prefetch_still_works() {
    let mut h = MemHierarchy::new(MemHierarchyConfig {
        caches: vec![],
        hit_ns: vec![],
        tlb: None,
        prefetch: None,
        dram: dram(),
        issue_bytes_per_ns: 8.0,
        issue_ns_per_access: 2.0,
        mlp: 2,
        dram_extra_latency_ns: 90.0,
        write_policy: WritePolicy::WriteAllocate,
        wc_flush_bytes: 512,
    });
    let out = h.run((0..1000u64).map(|i| Access::read(i * 64, 64)));
    assert_eq!(out.stats.dram_transactions, 1000);
    // Issue pacing: at least 2 ns per access.
    assert!(out.ns >= 2000.0);
}
