//! # mpstream-cluster — distributed sweep execution
//!
//! Coordinator/worker sharding over the serve protocol, with a
//! fault-tolerant merge. A **coordinator** is a normal serve daemon
//! (same submit/status/fetch/cancel surface, same job manager and
//! result store) whose executor, instead of running sweeps locally,
//! splits each job's deterministic parameter space into contiguous
//! **shards** with stable FNV-1a identities and hands them out to
//! registered **workers** over four extra endpoints:
//!
//! | endpoint          | who calls it | meaning                                |
//! |-------------------|--------------|----------------------------------------|
//! | `POST /register`  | worker       | join the pool, get a worker id         |
//! | `POST /lease`     | worker       | claim a queued shard (204 = no work)   |
//! | `POST /heartbeat` | worker       | extend a lease; `ok:false` = lost it   |
//! | `POST /complete`  | worker       | deliver a shard's checkpoint records   |
//!
//! Workers execute shards on fresh per-shard engines, so the offline
//! CLI's whole environment surface (`MPSTREAM_FAULTS`, `MPSTREAM_JOBS`,
//! retry policy, tracing) applies per worker unchanged. The merged
//! report is **byte-identical to a single-node run**: shards cover the
//! space exactly once, the deterministic simulation makes re-executed
//! shards reproduce the same records, merged checkpoint lines are
//! deduplicated by config key, and per-shard counters are summed from
//! a journal that admits each shard exactly once.
//!
//! The pieces:
//!
//! * [`shard`] — shard identity/planning and the wire records;
//! * [`coordinator`] — lease bookkeeping, the exactly-once merge
//!   journal, the dispatch executor and the `/metrics` gauges;
//! * [`worker`] — the register/lease/execute/complete poll loop;
//! * [`cli`] — argument grammar and execution for
//!   `mpstream coordinator|worker`.

pub mod cli;
pub mod coordinator;
pub mod shard;
pub mod worker;

pub use cli::{
    is_cluster_command, parse_cluster_args, run_coordinator, run_worker, ClusterCommand, USAGE,
};
pub use coordinator::{Cluster, Coordinator, CoordinatorOpts};
pub use shard::{shard_id, Lease, MergedShard, ShardCounters, ShardPlan};
pub use worker::{Worker, WorkerOpts};
