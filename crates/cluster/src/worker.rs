//! The worker: a serve daemon that pulls shards from a coordinator.
//!
//! A worker is two things at once: a plain [`Server`] bound to its own
//! address (so `/healthz` and `/metrics` report on it like any other
//! daemon), and a poll loop that registers with the coordinator,
//! leases shards, executes them on a fresh per-shard [`Engine`]
//! (`MPSTREAM_FAULTS`, `MPSTREAM_JOBS`, retry policy — everything the
//! offline CLI honours — flows through [`core_cli::build_engine`]
//! unchanged), and posts the results back.
//!
//! Liveness is cooperative: every finished point sends a heartbeat;
//! `{"ok":false}` means the lease lapsed (the coordinator re-queued
//! the shard), so the worker cancels the rest of the shard and drops
//! its half-finished copy rather than double-reporting.
//!
//! [`Engine`]: mpstream_core::Engine

use crate::shard::{Lease, MergedShard, ShardCounters};
use mpstream_core::checkpoint;
use mpstream_core::cli as core_cli;
use mpstream_core::config::BenchConfig;
use mpstream_core::engine::CancelToken;
use mpstream_core::json::{parse_flat_object, JsonLine};
use mpstream_core::sweep::SweepResult;
use mpstream_core::trace::{self, Trace};
use mpstream_core::Runner;
use mpstream_serve::breaker::{BreakerOpts, CircuitBreaker};
use mpstream_serve::client::{http_request_breaker, http_request_opts, ClientOpts, HttpReply};
use mpstream_serve::server::{ServeOpts, Server};
use mpstream_serve::spec;
use mpstream_serve::Metrics;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How a worker is configured.
#[derive(Debug, Clone)]
pub struct WorkerOpts {
    /// Coordinator address to join (`host:port`).
    pub join: String,
    /// The worker's own observability daemon (address, store, ...).
    pub serve: ServeOpts,
    /// How long to sleep when the coordinator has no work.
    pub poll: Duration,
    /// Write a Chrome trace of executed shards here on exit.
    pub trace: Option<PathBuf>,
    /// Circuit-breaker tuning for coordinator calls: after
    /// `failure_threshold` consecutive failures the worker quarantines
    /// itself for the (jittered) cooldown instead of tight-looping
    /// against a dead coordinator.
    pub breaker: BreakerOpts,
}

/// Distinguishes the default store directories of workers sharing a
/// process (the e2e tests start several).
static WORKER_SEQ: AtomicU64 = AtomicU64::new(0);

impl Default for WorkerOpts {
    fn default() -> Self {
        let seq = WORKER_SEQ.fetch_add(1, Ordering::Relaxed);
        WorkerOpts {
            join: "127.0.0.1:8377".to_string(),
            serve: ServeOpts {
                addr: "127.0.0.1:0".to_string(),
                store_dir: std::env::temp_dir()
                    .join(format!("mpstream-worker-{}-{seq}", std::process::id())),
                ..ServeOpts::default()
            },
            poll: Duration::from_millis(200),
            trace: None,
            // Seed varies per worker so co-located workers de-sync
            // their quarantines (deterministically per process).
            breaker: BreakerOpts {
                seed: BreakerOpts::default().seed ^ seq,
                ..BreakerOpts::default()
            },
        }
    }
}

/// The registration/lease/execute/complete loop, separated from the
/// worker's own HTTP server so the two can run on different threads.
#[derive(Debug)]
struct Puller {
    metrics: Arc<Metrics>,
    join: String,
    poll: Duration,
    trace: Option<Arc<Trace>>,
    stop: Arc<AtomicBool>,
    client: ClientOpts,
    breaker: CircuitBreaker,
}

impl Puller {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// One breaker-guarded POST to the coordinator. All control-plane
    /// calls (`/register`, `/lease`, `/complete`) go through here so
    /// consecutive failures open the breaker and quarantine the worker
    /// instead of burning a full connect-retry schedule per poll.
    fn call(&self, path: &str, body: &[u8]) -> Result<HttpReply, String> {
        let reply =
            http_request_breaker(&self.join, "POST", path, body, &self.client, &self.breaker);
        Metrics::set(&self.metrics.breaker_opens, self.breaker.opens());
        reply
    }

    /// Sleep out a failure: the breaker's remaining (jittered)
    /// quarantine while open, else one poll interval — chunked so a
    /// stop request still lands promptly.
    fn quarantine_sleep(&self) {
        let wait = self
            .breaker
            .remaining_quarantine()
            .unwrap_or(self.poll)
            .max(self.poll);
        let deadline = std::time::Instant::now() + wait;
        while std::time::Instant::now() < deadline && !self.stopping() {
            std::thread::sleep(Duration::from_millis(50).min(self.poll));
        }
    }

    /// Register with the coordinator, patiently: it may not be up yet,
    /// or may be restarting. `None` when stopped while trying.
    fn register(&self, own_addr: &str) -> Option<u64> {
        let mut body = JsonLine::new();
        body.str_field("addr", own_addr);
        let body = body.finish();
        loop {
            if self.stopping() {
                return None;
            }
            if let Ok(reply) = self.call("/register", body.as_bytes()) {
                if reply.status == 200 {
                    if let Some(id) = parse_flat_object(reply.text().trim())
                        .and_then(|o| o.get("worker")?.as_u64())
                    {
                        return Some(id);
                    }
                }
            }
            self.quarantine_sleep();
        }
    }

    /// Execute one leased shard and post the results back. A lost
    /// lease (heartbeat answered `ok:false`) or a stop request cancels
    /// mid-shard; the partial results are discarded, never posted.
    fn run_lease(&self, worker_id: u64, lease: &Lease) {
        let Ok(req) = spec::spec_to_request(&lease.spec) else {
            return;
        };
        let configs = core_cli::sweep_param_space(&req).configs();
        if lease.start >= lease.end || lease.end > configs.len() {
            return;
        }
        let work: Vec<BenchConfig> = configs[lease.start..lease.end]
            .iter()
            .map(|c| core_cli::bench_protocol(&req, c.clone()))
            .collect();
        if let Some(t) = &self.trace {
            t.wall_instant(
                lease.start as u64,
                "shard-lease",
                trace::args([
                    ("shard", lease.shard.as_str().into()),
                    ("job", lease.job.into()),
                    ("points", (work.len() as u64).into()),
                ]),
            );
        }

        let token = CancelToken::new();
        let engine =
            core_cli::build_engine(&req, self.trace.clone()).with_cancel(Some(token.clone()));
        let mut hb = JsonLine::new();
        hb.u64_field("worker", worker_id);
        hb.u64_field("job", lease.job);
        hb.str_field("shard", &lease.shard);
        let hb = hb.finish();
        let observe = |_outcome: &mpstream_core::Outcome| {
            if self.stopping() {
                token.cancel();
                return;
            }
            // A briefly unreachable coordinator is not a lost lease;
            // keep working and let /complete decide. Only an explicit
            // "ok": false (or a non-200) from a reachable coordinator
            // cancels the shard.
            if let Ok(reply) = http_request_opts(
                &self.join,
                "POST",
                "/heartbeat",
                hb.as_bytes(),
                &self.client,
            ) {
                let ok = reply.status == 200
                    && parse_flat_object(reply.text().trim())
                        .and_then(|o| o.get("ok")?.as_bool())
                        .unwrap_or(false);
                if !ok {
                    token.cancel();
                }
            }
        };
        let outcomes = engine.run_list_observed(|| Runner::for_target(req.target), &work, observe);
        if token.is_cancelled() {
            return;
        }

        let counters = ShardCounters::from_engine(&engine);
        let header = MergedShard {
            shard: lease.shard.clone(),
            job: lease.job,
            start: lease.start,
            end: lease.end,
            counters,
        };
        let mut body = header.render();
        body.push('\n');
        for outcome in &outcomes {
            body.push_str(&checkpoint::render_record(outcome));
            body.push('\n');
        }
        let _ = self.call("/complete", body.as_bytes());

        // Account the shard in the worker's own /metrics (the engine
        // was fresh, so its counters are exactly this shard's).
        let mut result = SweepResult {
            points: outcomes,
            cache: Default::default(),
            retry: Default::default(),
            faults: Default::default(),
            resumed: 0,
        };
        counters.fill_result(&mut result);
        self.metrics.absorb_sweep(&result);
        if let Some(t) = &self.trace {
            t.wall_instant(
                lease.start as u64,
                "shard-complete",
                trace::args([
                    ("shard", lease.shard.as_str().into()),
                    ("job", lease.job.into()),
                ]),
            );
        }
    }

    /// Poll the coordinator for shards until stopped.
    fn poll_loop(&self, own_addr: &str) {
        let Some(mut worker_id) = self.register(own_addr) else {
            return;
        };
        loop {
            if self.stopping() {
                return;
            }
            let mut body = JsonLine::new();
            body.u64_field("worker", worker_id);
            let body = body.finish();
            match self.call("/lease", body.as_bytes()) {
                Ok(reply) if reply.status == 200 => {
                    if let Some(lease) = Lease::parse(reply.text().trim()) {
                        self.run_lease(worker_id, &lease);
                    }
                }
                Ok(reply) if reply.status == 409 => {
                    // Coordinator restarted and forgot us.
                    match self.register(own_addr) {
                        Some(id) => worker_id = id,
                        None => return,
                    }
                }
                _ => self.quarantine_sleep(),
            }
        }
    }
}

/// A bound worker, ready to [`run`](Worker::run).
pub struct Worker {
    server: Server,
    puller: Puller,
    trace_path: Option<PathBuf>,
}

impl Worker {
    /// Bind the worker's own observability daemon. The poll loop does
    /// not start until [`run`](Worker::run).
    pub fn bind(opts: WorkerOpts) -> std::io::Result<Worker> {
        let server = Server::bind(opts.serve)?;
        let metrics = server.metrics();
        Ok(Worker {
            server,
            puller: Puller {
                metrics,
                join: opts.join,
                poll: opts.poll,
                trace: opts.trace.as_ref().map(|_| Trace::new()),
                stop: Arc::new(AtomicBool::new(false)),
                client: ClientOpts::default(),
                breaker: CircuitBreaker::new(opts.breaker),
            },
            trace_path: opts.trace,
        })
    }

    /// The worker daemon's actually-bound address.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.server.local_addr()
    }

    /// Shared flag that makes [`run`](Worker::run) return after the
    /// current shard (checked between polls and between points).
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.puller.stop)
    }

    /// Serve and poll until the stop flag is raised, then drain the
    /// observability daemon and (optionally) write the shard trace.
    pub fn run(self) -> std::io::Result<()> {
        let Worker {
            server,
            puller,
            trace_path,
        } = self;
        let addr = server.local_addr()?;
        let handle = server.shutdown_handle()?;
        let http = std::thread::Builder::new()
            .name("mpstream-worker-http".into())
            .spawn(move || server.run())?;
        puller.poll_loop(&addr.to_string());
        handle.trigger();
        http.join()
            .map_err(|_| std::io::Error::other("worker http thread panicked"))??;
        if let (Some(path), Some(t)) = (&trace_path, &puller.trace) {
            let json = if mpstream_core::env::flag_enabled("MPSTREAM_TRACE_CANONICAL") {
                t.canonical_chrome_json()
            } else {
                t.to_chrome_json()
            };
            std::fs::write(path, json)?;
        }
        Ok(())
    }
}
