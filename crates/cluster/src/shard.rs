//! Shard identity, planning and the cluster wire records.
//!
//! A *shard* is a contiguous index range of a sweep's deterministic
//! cartesian configuration order. Its identity is a stable FNV-1a hash
//! over `target:spec:start..end`, so re-submitting the same sweep (or
//! restarting the coordinator) reproduces the same shard ids — that is
//! what makes the merge journal idempotent: a shard that was already
//! merged under one coordinator incarnation is recognised and skipped
//! by the next.
//!
//! Everything that crosses the wire or the journal is flat one-line
//! JSON rendered with [`JsonLine`] and parsed with
//! [`parse_flat_object`], the same grammar the serve layer speaks.

use mpstream_core::engine::{fnv1a, plan_shards, RetryStats};
use mpstream_core::json::{parse_flat_object, JsonLine, JsonObject};
use mpstream_core::sweep::SweepResult;

/// One planned shard of a job's sweep: a stable id plus the half-open
/// config-index range `[start, end)` it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Stable identity, sixteen lower-case hex digits.
    pub id: String,
    /// First config index (inclusive).
    pub start: usize,
    /// Past-the-end config index.
    pub end: usize,
}

/// The stable shard id: FNV-1a over `target:spec:start..end`.
pub fn shard_id(target: &str, spec: &str, start: usize, end: usize) -> String {
    format!(
        "{:016x}",
        fnv1a(format!("{target}:{spec}:{start}..{end}").as_bytes())
    )
}

/// Split a sweep of `total` configs into shards of at most
/// `shard_points` points each, with stable ids.
pub fn plan(target: &str, spec: &str, total: usize, shard_points: usize) -> Vec<ShardPlan> {
    plan_shards(total, shard_points)
        .into_iter()
        .map(|(start, end)| ShardPlan {
            id: shard_id(target, spec, start, end),
            start,
            end,
        })
        .collect()
}

/// Counter deltas one worker incurred executing one shard. Summed over
/// a job's merged shards these reconstruct the cache/retry/fault
/// sections of the single-node report exactly, because each shard runs
/// on a fresh engine and each shard is merged exactly once.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Build-cache hits.
    pub cache_hits: u64,
    /// Build-cache misses.
    pub cache_misses: u64,
    /// Re-attempts after transient failures.
    pub retries: u64,
    /// Transient failures observed.
    pub transient_errors: u64,
    /// Configs whose retry budget ran out.
    pub gave_up: u64,
    /// Worker panics isolated into outcomes.
    pub panics_isolated: u64,
    /// Injected build faults.
    pub fault_build: u64,
    /// Injected enqueue timeouts.
    pub fault_timeout: u64,
    /// Injected device-lost faults.
    pub fault_device_lost: u64,
    /// Injected bit flips.
    pub fault_bit_flip: u64,
}

impl ShardCounters {
    /// Snapshot a freshly-run engine's absolute counters (valid as
    /// deltas because cluster workers build one engine per shard).
    pub fn from_engine(engine: &mpstream_core::Engine) -> ShardCounters {
        let cache = engine.cache_stats();
        let retry = engine.retry_stats();
        let faults = engine.fault_counters();
        ShardCounters {
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            retries: retry.retries,
            transient_errors: retry.transient_errors,
            gave_up: retry.gave_up,
            panics_isolated: retry.panics_isolated,
            fault_build: faults.build,
            fault_timeout: faults.timeout,
            fault_device_lost: faults.device_lost,
            fault_bit_flip: faults.bit_flip,
        }
    }

    /// Add another shard's counters into this accumulator.
    pub fn absorb(&mut self, other: &ShardCounters) {
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.retries += other.retries;
        self.transient_errors += other.transient_errors;
        self.gave_up += other.gave_up;
        self.panics_isolated += other.panics_isolated;
        self.fault_build += other.fault_build;
        self.fault_timeout += other.fault_timeout;
        self.fault_device_lost += other.fault_device_lost;
        self.fault_bit_flip += other.fault_bit_flip;
    }

    /// Pour the accumulated counters into an (otherwise assembled)
    /// [`SweepResult`], so the merged report renders the same
    /// cache/retry/fault rows a single-node run would.
    pub fn fill_result(&self, result: &mut SweepResult) {
        result.cache = mpcl::CacheStats {
            hits: self.cache_hits,
            misses: self.cache_misses,
        };
        result.retry = RetryStats {
            retries: self.retries,
            transient_errors: self.transient_errors,
            gave_up: self.gave_up,
            panics_isolated: self.panics_isolated,
        };
        result.faults = mpcl::FaultCounters {
            build: self.fault_build,
            timeout: self.fault_timeout,
            device_lost: self.fault_device_lost,
            bit_flip: self.fault_bit_flip,
        };
    }

    fn write_fields(&self, w: &mut JsonLine) {
        w.u64_field("cache_hits", self.cache_hits);
        w.u64_field("cache_misses", self.cache_misses);
        w.u64_field("retries", self.retries);
        w.u64_field("transient", self.transient_errors);
        w.u64_field("gave_up", self.gave_up);
        w.u64_field("panics", self.panics_isolated);
        w.u64_field("fault_build", self.fault_build);
        w.u64_field("fault_timeout", self.fault_timeout);
        w.u64_field("fault_lost", self.fault_device_lost);
        w.u64_field("fault_bitflip", self.fault_bit_flip);
    }

    fn parse_fields(obj: &JsonObject) -> Option<ShardCounters> {
        let f = |k: &str| obj.get(k).and_then(|v| v.as_u64());
        Some(ShardCounters {
            cache_hits: f("cache_hits")?,
            cache_misses: f("cache_misses")?,
            retries: f("retries")?,
            transient_errors: f("transient")?,
            gave_up: f("gave_up")?,
            panics_isolated: f("panics")?,
            fault_build: f("fault_build")?,
            fault_timeout: f("fault_timeout")?,
            fault_device_lost: f("fault_lost")?,
            fault_bit_flip: f("fault_bitflip")?,
        })
    }
}

/// A merged shard as journalled by the coordinator (`shards.jsonl`)
/// and as carried in the header line of a worker's `POST /complete`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergedShard {
    /// The shard's stable id.
    pub shard: String,
    /// The job it belongs to.
    pub job: u64,
    /// First config index (inclusive).
    pub start: usize,
    /// Past-the-end config index.
    pub end: usize,
    /// Counter deltas the executing worker reported.
    pub counters: ShardCounters,
}

impl MergedShard {
    /// One-line JSON form.
    pub fn render(&self) -> String {
        let mut w = JsonLine::new();
        w.str_field("shard", &self.shard);
        w.u64_field("job", self.job);
        w.u64_field("start", self.start as u64);
        w.u64_field("end", self.end as u64);
        self.counters.write_fields(&mut w);
        w.finish()
    }

    /// Parse the one-line JSON form; `None` for anything malformed.
    pub fn parse(line: &str) -> Option<MergedShard> {
        let obj = parse_flat_object(line)?;
        Some(MergedShard {
            shard: obj.get("shard")?.as_str()?.to_string(),
            job: obj.get("job")?.as_u64()?,
            start: obj.get("start")?.as_u64()? as usize,
            end: obj.get("end")?.as_u64()? as usize,
            counters: ShardCounters::parse_fields(&obj)?,
        })
    }
}

/// A lease as granted by `POST /lease`: which shard of which job to
/// run, the spec to run it against, and how long the lease lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// The job the shard belongs to.
    pub job: u64,
    /// The shard's stable id.
    pub shard: String,
    /// First config index (inclusive).
    pub start: usize,
    /// Past-the-end config index.
    pub end: usize,
    /// The job-spec JSON line (the serve wire grammar).
    pub spec: String,
    /// Lease lifetime granted by the coordinator.
    pub lease_ms: u64,
}

impl Lease {
    /// One-line JSON form (the spec line nests as an escaped string).
    pub fn render(&self) -> String {
        let mut w = JsonLine::new();
        w.u64_field("job", self.job);
        w.str_field("shard", &self.shard);
        w.u64_field("start", self.start as u64);
        w.u64_field("end", self.end as u64);
        w.str_field("spec", &self.spec);
        w.u64_field("lease_ms", self.lease_ms);
        w.finish()
    }

    /// Parse the one-line JSON form; `None` for anything malformed.
    pub fn parse(line: &str) -> Option<Lease> {
        let obj = parse_flat_object(line)?;
        Some(Lease {
            job: obj.get("job")?.as_u64()?,
            shard: obj.get("shard")?.as_str()?.to_string(),
            start: obj.get("start")?.as_u64()? as usize,
            end: obj.get("end")?.as_u64()? as usize,
            spec: obj.get("spec")?.as_str()?.to_string(),
            lease_ms: obj.get("lease_ms")?.as_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ids_are_stable_and_distinct() {
        let a = shard_id("cpu-avx2", "{\"kernels\":\"copy\"}", 0, 8);
        let b = shard_id("cpu-avx2", "{\"kernels\":\"copy\"}", 0, 8);
        let c = shard_id("cpu-avx2", "{\"kernels\":\"copy\"}", 8, 16);
        let d = shard_id("fpga-small", "{\"kernels\":\"copy\"}", 0, 8);
        assert_eq!(a, b, "same inputs must yield the same id");
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|ch| ch.is_ascii_hexdigit()));
        assert_ne!(a, c, "different ranges must differ");
        assert_ne!(a, d, "different targets must differ");
    }

    #[test]
    fn plan_covers_the_space_with_stable_ids() {
        let shards = plan("cpu-avx2", "{}", 10, 4);
        assert_eq!(
            shards.iter().map(|s| (s.start, s.end)).collect::<Vec<_>>(),
            vec![(0, 4), (4, 8), (8, 10)]
        );
        let again = plan("cpu-avx2", "{}", 10, 4);
        assert_eq!(shards, again);
        let ids: std::collections::BTreeSet<&str> = shards.iter().map(|s| s.id.as_str()).collect();
        assert_eq!(ids.len(), shards.len(), "ids must be distinct");
    }

    #[test]
    fn merged_shard_round_trips() {
        let rec = MergedShard {
            shard: "00ff00ff00ff00ff".into(),
            job: 7,
            start: 8,
            end: 16,
            counters: ShardCounters {
                cache_hits: 1,
                cache_misses: 7,
                retries: 2,
                transient_errors: 3,
                gave_up: 0,
                panics_isolated: 0,
                fault_build: 1,
                fault_timeout: 0,
                fault_device_lost: 1,
                fault_bit_flip: 0,
            },
        };
        assert_eq!(MergedShard::parse(&rec.render()), Some(rec));
        assert_eq!(MergedShard::parse("{\"shard\":\"x\"}"), None);
        assert_eq!(MergedShard::parse("not json"), None);
    }

    #[test]
    fn lease_round_trips_with_embedded_spec() {
        let lease = Lease {
            job: 3,
            shard: "abcdef0123456789".into(),
            start: 0,
            end: 8,
            spec: "{\"kernels\":\"copy,triad\",\"size_bytes\":131072}".into(),
            lease_ms: 5000,
        };
        let line = lease.render();
        assert_eq!(Lease::parse(&line), Some(lease.clone()));
        // The embedded spec must survive as a parseable flat object.
        let inner = Lease::parse(&line).unwrap().spec;
        assert!(parse_flat_object(&inner).is_some());
    }

    #[test]
    fn counters_fill_a_sweep_result() {
        let mut acc = ShardCounters::default();
        acc.absorb(&ShardCounters {
            cache_misses: 4,
            retries: 1,
            ..Default::default()
        });
        acc.absorb(&ShardCounters {
            cache_hits: 2,
            cache_misses: 1,
            fault_bit_flip: 3,
            ..Default::default()
        });
        let mut result = SweepResult {
            points: Vec::new(),
            cache: Default::default(),
            retry: Default::default(),
            faults: Default::default(),
            resumed: 0,
        };
        acc.fill_result(&mut result);
        assert_eq!(result.cache.hits, 2);
        assert_eq!(result.cache.misses, 5);
        assert_eq!(result.retry.retries, 1);
        assert_eq!(result.faults.bit_flip, 3);
    }
}
