//! Argument grammar and execution for the cluster subcommands:
//! `mpstream coordinator` and `mpstream worker`. Factored like
//! [`mpstream_serve::cli`]; the workspace binary dispatches here when
//! the first argument names one of these subcommands.

use crate::coordinator::{Coordinator, CoordinatorOpts};
use crate::worker::{Worker, WorkerOpts};
use mpstream_serve::signal::ShutdownSignal;
use mpstream_serve::RetentionPolicy;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Usage text for the cluster subcommands.
pub const USAGE: &str = "\
usage: mpstream coordinator [--addr H:P] [--store DIR] [--jobs N] [--queue N]
                            [--lease-ms N] [--shard-points N]
                            [--tenants FILE] [--retention TERMS]
       mpstream worker --join H:P [--addr H:P] [--store DIR] [--poll-ms N]
                       [--quarantine-ms N] [--trace FILE]

  coordinator accepts jobs exactly like `mpstream serve` (submit/
  status/fetch/cancel against it as usual) but delegates execution to
  registered workers, sharding each sweep and merging the results.
    --addr <host:port>    listen address (default 127.0.0.1:8377)
    --store <dir>         result-store directory (default ./mpstream-store)
    --jobs <N>            HTTP worker threads (default 4)
    --queue <N>           job-queue capacity before 503 (default 16)
    --lease-ms <N>        shard lease lifetime (default 5000)
    --shard-points <N>    sweep points per shard (default 8)
    --tenants <file>      tenants.jsonl with per-tenant API keys, rate
                          limits, and queue quotas (default anonymous-only)
    --retention <terms>   store bounds: max-jobs=N,max-bytes=N[K|M|G],
                          min-age-s=N (default unbounded)
    --chaos-profile <p>   chaos-test profile (quick); test hook

  worker joins a coordinator and executes leased shards; its own
  /metrics and /healthz are served on --addr.
    --join <host:port>    the coordinator to join (required)
    --addr <host:port>    observability address (default 127.0.0.1:0)
    --store <dir>         local store directory (default under the temp dir)
    --poll-ms <N>         idle poll interval (default 200)
    --quarantine-ms <N>   circuit-breaker cooldown after the coordinator
                          stops answering (default 1000)
    --trace <file>        write a Chrome trace of executed shards on exit";

/// A parsed cluster subcommand.
#[derive(Debug, Clone)]
pub enum ClusterCommand {
    /// Run the coordinator daemon.
    Coordinator(CoordinatorOpts),
    /// Run a worker daemon.
    Worker(WorkerOpts),
}

/// Does this argument vector start with a cluster subcommand?
pub fn is_cluster_command(args: &[String]) -> bool {
    matches!(
        args.first().map(String::as_str),
        Some("coordinator" | "worker")
    )
}

fn positive(flag: &str, value: String) -> Result<usize, String> {
    value
        .parse()
        .ok()
        .filter(|&n: &usize| n > 0)
        .ok_or_else(|| format!("{flag} needs a positive integer"))
}

/// Parse a cluster argument vector (`Ok(None)` for `--help`).
pub fn parse_cluster_args(args: &[String]) -> Result<Option<ClusterCommand>, String> {
    let (verb, rest): (&str, &[String]) = match args.split_first() {
        Some((v, rest)) => (v.as_str(), rest),
        None => return Err("missing subcommand".into()),
    };
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(None);
    }
    match verb {
        "coordinator" => {
            let mut opts = CoordinatorOpts::default();
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                let mut need = |flag: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{flag} needs a value"))
                };
                match arg.as_str() {
                    "--addr" => opts.serve.addr = need("--addr")?,
                    "--store" => opts.serve.store_dir = PathBuf::from(need("--store")?),
                    "--jobs" => opts.serve.http_workers = positive("--jobs", need("--jobs")?)?,
                    "--queue" => opts.serve.queue_capacity = positive("--queue", need("--queue")?)?,
                    "--lease-ms" => {
                        opts.lease = Duration::from_millis(positive(
                            "--lease-ms",
                            need("--lease-ms")?,
                        )? as u64)
                    }
                    "--shard-points" => {
                        opts.shard_points = positive("--shard-points", need("--shard-points")?)?
                    }
                    "--tenants" => {
                        opts.serve.tenants_file = Some(PathBuf::from(need("--tenants")?))
                    }
                    "--retention" => {
                        opts.serve.retention = RetentionPolicy::parse(&need("--retention")?)?
                    }
                    "--chaos-profile" => {
                        let profile = need("--chaos-profile")?;
                        // Validate the name at parse time; bind applies it.
                        opts.serve.clone().apply_chaos_profile(&profile)?;
                        opts.serve.chaos_profile = Some(profile);
                    }
                    other => return Err(format!("unknown coordinator argument '{other}'")),
                }
            }
            Ok(Some(ClusterCommand::Coordinator(opts)))
        }
        "worker" => {
            let mut opts = WorkerOpts::default();
            let mut join = None;
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                let mut need = |flag: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{flag} needs a value"))
                };
                match arg.as_str() {
                    "--join" => join = Some(need("--join")?),
                    "--addr" => opts.serve.addr = need("--addr")?,
                    "--store" => opts.serve.store_dir = PathBuf::from(need("--store")?),
                    "--poll-ms" => {
                        opts.poll =
                            Duration::from_millis(positive("--poll-ms", need("--poll-ms")?)? as u64)
                    }
                    "--quarantine-ms" => {
                        opts.breaker.cooldown = Duration::from_millis(positive(
                            "--quarantine-ms",
                            need("--quarantine-ms")?,
                        )?
                            as u64)
                    }
                    "--trace" => opts.trace = Some(PathBuf::from(need("--trace")?)),
                    other => return Err(format!("unknown worker argument '{other}'")),
                }
            }
            opts.join = join.ok_or("worker needs --join <host:port>")?;
            Ok(Some(ClusterCommand::Worker(opts)))
        }
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

/// Run the coordinator daemon until SIGTERM/SIGINT, then drain and
/// return. Prints the bound address on startup so scripts can scrape
/// it (same shape as `mpstream serve`).
pub fn run_coordinator(opts: CoordinatorOpts) -> Result<(), String> {
    let lease_ms = opts.lease.as_millis();
    let shard_points = opts.shard_points;
    let store_dir = opts.serve.store_dir.clone();
    let coordinator =
        Coordinator::bind(opts.clone()).map_err(|e| format!("bind {}: {e}", opts.serve.addr))?;
    let addr = coordinator.local_addr().map_err(|e| e.to_string())?;
    let handle = coordinator.shutdown_handle().map_err(|e| e.to_string())?;
    let signal = ShutdownSignal::install().map_err(|e| format!("signal handler: {e}"))?;
    std::thread::Builder::new()
        .name("mpstream-signal-watch".into())
        .spawn(move || {
            signal.wait();
            handle.trigger();
        })
        .map_err(|e| e.to_string())?;
    println!(
        "mpstream coordinator: listening on {addr}, store {} (lease {lease_ms}ms, {shard_points} points/shard)",
        store_dir.display(),
    );
    coordinator.run().map_err(|e| e.to_string())?;
    println!("mpstream coordinator: drained, exiting");
    Ok(())
}

/// Run a worker daemon until SIGTERM/SIGINT, then finish the current
/// shard, drain and return.
pub fn run_worker(opts: WorkerOpts) -> Result<(), String> {
    let join = opts.join.clone();
    let worker =
        Worker::bind(opts.clone()).map_err(|e| format!("bind {}: {e}", opts.serve.addr))?;
    let addr = worker.local_addr().map_err(|e| e.to_string())?;
    let stop = worker.stop_flag();
    let signal = ShutdownSignal::install().map_err(|e| format!("signal handler: {e}"))?;
    std::thread::Builder::new()
        .name("mpstream-signal-watch".into())
        .spawn(move || {
            signal.wait();
            stop.store(true, Ordering::Release);
        })
        .map_err(|e| e.to_string())?;
    println!("mpstream worker: listening on {addr}, joining {join}");
    worker.run().map_err(|e| e.to_string())?;
    println!("mpstream worker: drained, exiting");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Option<ClusterCommand>, String> {
        parse_cluster_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn recognises_cluster_subcommands() {
        let v = |args: &[&str]| args.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(is_cluster_command(&v(&["coordinator"])));
        assert!(is_cluster_command(&v(&["worker", "--join", "x"])));
        assert!(!is_cluster_command(&v(&["serve"])));
        assert!(!is_cluster_command(&v(&["sweep"])));
        assert!(!is_cluster_command(&v(&[])));
    }

    #[test]
    fn coordinator_flags_parse() {
        let cmd = parse(&[
            "coordinator",
            "--addr",
            "0.0.0.0:9000",
            "--store",
            "/tmp/s",
            "--lease-ms",
            "250",
            "--shard-points",
            "2",
        ])
        .unwrap()
        .unwrap();
        let ClusterCommand::Coordinator(opts) = cmd else {
            panic!("expected coordinator");
        };
        assert_eq!(opts.serve.addr, "0.0.0.0:9000");
        assert_eq!(opts.serve.store_dir, PathBuf::from("/tmp/s"));
        assert_eq!(opts.lease, Duration::from_millis(250));
        assert_eq!(opts.shard_points, 2);
    }

    #[test]
    fn worker_requires_join() {
        assert!(parse(&["worker"]).is_err());
        let cmd = parse(&["worker", "--join", "127.0.0.1:9000", "--poll-ms", "50"])
            .unwrap()
            .unwrap();
        let ClusterCommand::Worker(opts) = cmd else {
            panic!("expected worker");
        };
        assert_eq!(opts.join, "127.0.0.1:9000");
        assert_eq!(opts.poll, Duration::from_millis(50));
    }

    #[test]
    fn coordinator_hardening_flags_parse() {
        let cmd = parse(&[
            "coordinator",
            "--tenants",
            "/tmp/tenants.jsonl",
            "--retention",
            "max-jobs=8,max-bytes=4M",
        ])
        .unwrap()
        .unwrap();
        let ClusterCommand::Coordinator(opts) = cmd else {
            panic!("expected coordinator");
        };
        assert_eq!(
            opts.serve.tenants_file,
            Some(PathBuf::from("/tmp/tenants.jsonl"))
        );
        assert_eq!(opts.serve.retention.max_jobs, 8);
        assert_eq!(opts.serve.retention.max_bytes, 4 << 20);
        match parse(&["coordinator", "--chaos-profile", "quick"])
            .unwrap()
            .unwrap()
        {
            ClusterCommand::Coordinator(opts) => {
                assert_eq!(opts.serve.chaos_profile.as_deref(), Some("quick"));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["coordinator", "--chaos-profile", "nope"]).is_err());
        assert!(parse(&["coordinator", "--retention", "max-jobs=zero"]).is_err());
    }

    #[test]
    fn worker_quarantine_flag_parses() {
        let cmd = parse(&[
            "worker",
            "--join",
            "127.0.0.1:9000",
            "--quarantine-ms",
            "250",
        ])
        .unwrap()
        .unwrap();
        let ClusterCommand::Worker(opts) = cmd else {
            panic!("expected worker");
        };
        assert_eq!(opts.breaker.cooldown, Duration::from_millis(250));
        assert!(parse(&["worker", "--join", "x", "--quarantine-ms", "0"]).is_err());
    }

    #[test]
    fn help_and_unknown_flags() {
        assert!(parse(&["coordinator", "--help"]).unwrap().is_none());
        assert!(parse(&["worker", "-h"]).unwrap().is_none());
        assert!(parse(&["coordinator", "--bogus"]).is_err());
        assert!(parse(&["worker", "--join", "x", "--bogus"]).is_err());
        assert!(parse(&["orchestrate"]).is_err());
    }
}
