//! The coordinator: a serve daemon that delegates sweep execution to
//! registered workers instead of running configs itself.
//!
//! It plugs into the serve layer through three seams, all installed at
//! [`Coordinator::bind`] time:
//!
//! * a [`RouteHook`] adds the cluster endpoints (`POST /register`,
//!   `/lease`, `/heartbeat`, `/complete`) in front of the normal
//!   routing table, so the public job API (`/jobs`, `/metrics`, ...)
//!   is untouched;
//! * a [`JobExecutor`] replaces the manager's local sweep runner with
//!   the shard dispatch loop;
//! * a metrics extra-renderer appends the cluster gauges to
//!   `/metrics`.
//!
//! ## Shard lifecycle and the exactly-once merge
//!
//! Each submitted job is split into contiguous shards (stable FNV-1a
//! ids, see [`crate::shard`]). A shard is `Queued` until a worker
//! leases it, `Leased` while the lease lives (heartbeats extend it),
//! and `Merged` once its results landed. A lease that expires without
//! completion re-queues the shard and counts a re-lease; the late
//! worker's eventual `POST /complete` is still welcome — whichever
//! copy arrives first wins, the other is recognised by its shard id
//! and dropped, so no outcome or counter is ever double-merged.
//!
//! Durability mirrors the job manager: merged shards are journalled to
//! `shards.jsonl` in the result store (checkpoint lines are appended
//! to the job's checkpoint *first*, then the journal record — a crash
//! between the two only duplicates checkpoint lines, which
//! [`Checkpoint::compact`] dedupes by config key). On restart the
//! journal is compacted and replayed, so a re-queued job resumes with
//! its merged shards already in place.

use crate::shard::{self, MergedShard, ShardCounters, ShardPlan};
use mpstream_core::checkpoint::{self, Checkpoint};
use mpstream_core::cli as core_cli;
use mpstream_core::engine::CancelToken;
use mpstream_core::json::{compact_jsonl, parse_flat_object, JsonLine};
use mpstream_core::sweep::SweepResult;
use mpstream_serve::http::{Request, Response};
use mpstream_serve::jobs::JobExecutor;
use mpstream_serve::server::{RouteHook, ServeOpts, Server, ShutdownHandle};
use mpstream_serve::spec;
use mpstream_serve::store::{JobRecord, ResultStore};
use mpstream_serve::Metrics;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// How the coordinator is configured.
#[derive(Debug, Clone)]
pub struct CoordinatorOpts {
    /// The underlying serve daemon options (address, store, ...).
    pub serve: ServeOpts,
    /// Lease lifetime; a worker must complete or heartbeat within it.
    pub lease: Duration,
    /// Sweep points per shard.
    pub shard_points: usize,
}

impl Default for CoordinatorOpts {
    fn default() -> Self {
        CoordinatorOpts {
            serve: ServeOpts::default(),
            lease: Duration::from_millis(5000),
            shard_points: 8,
        }
    }
}

/// A registered worker, as the coordinator sees it.
#[derive(Debug)]
struct WorkerInfo {
    /// Self-reported observability address (may be empty).
    #[allow(dead_code)]
    addr: String,
    /// Set when a lease held by this worker expired.
    lost: bool,
}

/// Where a shard is in its lifecycle.
#[derive(Debug)]
enum ShardStatus {
    /// Waiting for a worker.
    Queued,
    /// Held by a worker until the deadline.
    Leased {
        /// The holding worker's id.
        worker: u64,
        /// When the lease lapses without a heartbeat or completion.
        expires: Instant,
    },
    /// Results merged; terminal.
    Merged,
}

/// One shard plus its current status.
#[derive(Debug)]
struct ShardState {
    plan: ShardPlan,
    status: ShardStatus,
}

/// The job currently being dispatched (the manager runs one at a
/// time, so there is at most one).
#[derive(Debug)]
struct ActiveJob {
    id: u64,
    shards: Vec<ShardState>,
}

/// Mutable coordinator state, under one lock.
#[derive(Debug, Default)]
struct Registry {
    next_worker: u64,
    workers: HashMap<u64, WorkerInfo>,
    active: Option<ActiveJob>,
    /// Every merged shard ever journalled, keyed by (job, shard id).
    merged: HashMap<(u64, String), MergedShard>,
}

/// Shared cluster state behind the coordinator's three seams.
pub struct Cluster {
    store: Arc<ResultStore>,
    metrics: Arc<Metrics>,
    lease: Duration,
    shard_points: usize,
    inner: Mutex<Registry>,
    wake: Condvar,
    journal: Mutex<File>,
    releases: AtomicU64,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("lease", &self.lease)
            .field("shard_points", &self.shard_points)
            .finish()
    }
}

fn json_error(status: u16, message: &str) -> Response {
    let mut w = JsonLine::new();
    w.str_field("error", message);
    Response::json(status, w.finish())
}

impl Cluster {
    /// Journal file name inside the result store. Deliberately does
    /// not match the store's `job-*.jsonl` checkpoint glob, so the
    /// store's own startup compaction leaves it to us.
    const JOURNAL: &'static str = "shards.jsonl";

    /// Open (compact + replay) the shard journal and build the shared
    /// cluster state.
    pub fn open(
        store: Arc<ResultStore>,
        metrics: Arc<Metrics>,
        lease: Duration,
        shard_points: usize,
    ) -> std::io::Result<Arc<Cluster>> {
        let path = store.dir().join(Self::JOURNAL);
        compact_jsonl(&path, |obj| {
            let shard = obj.get("shard")?.as_str()?;
            let job = obj.get("job")?.as_u64()?;
            Some(format!("{job}:{shard}"))
        })?;
        let mut merged = HashMap::new();
        if let Ok(text) = std::fs::read_to_string(&path) {
            for line in text.lines().filter(|l| !l.trim().is_empty()) {
                if let Some(rec) = MergedShard::parse(line) {
                    merged.insert((rec.job, rec.shard.clone()), rec);
                }
            }
        }
        let journal = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Arc::new(Cluster {
            store,
            metrics,
            lease,
            shard_points: shard_points.max(1),
            inner: Mutex::new(Registry {
                merged,
                ..Registry::default()
            }),
            wake: Condvar::new(),
            journal: Mutex::new(journal),
            releases: AtomicU64::new(0),
        }))
    }

    fn lock(&self) -> MutexGuard<'_, Registry> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Re-queue shards whose lease lapsed; mark their holders lost.
    fn expire_stale(&self, inner: &mut Registry) {
        let now = Instant::now();
        let Some(job) = inner.active.as_mut() else {
            return;
        };
        let mut lost_workers = Vec::new();
        for s in &mut job.shards {
            if let ShardStatus::Leased { worker, expires } = s.status {
                if expires <= now {
                    s.status = ShardStatus::Queued;
                    self.releases.fetch_add(1, Ordering::Relaxed);
                    lost_workers.push(worker);
                }
            }
        }
        for w in lost_workers {
            if let Some(info) = inner.workers.get_mut(&w) {
                info.lost = true;
            }
        }
    }

    // ---- endpoint handlers -------------------------------------------------

    fn register(&self, req: &Request) -> Response {
        let body = String::from_utf8_lossy(&req.body);
        let addr = parse_flat_object(body.trim())
            .and_then(|o| o.get("addr")?.as_str().map(str::to_string))
            .unwrap_or_default();
        let mut inner = self.lock();
        inner.next_worker += 1;
        let id = inner.next_worker;
        inner.workers.insert(id, WorkerInfo { addr, lost: false });
        let mut w = JsonLine::new();
        w.u64_field("worker", id);
        w.u64_field("lease_ms", self.lease.as_millis() as u64);
        Response::json(200, w.finish())
    }

    fn lease(&self, req: &Request) -> Response {
        let body = String::from_utf8_lossy(&req.body);
        let Some(worker) = parse_flat_object(body.trim()).and_then(|o| o.get("worker")?.as_u64())
        else {
            return json_error(400, "lease needs a worker id");
        };
        let mut inner = self.lock();
        match inner.workers.get_mut(&worker) {
            Some(info) => info.lost = false,
            None => return json_error(409, "unknown worker; re-register"),
        }
        self.expire_stale(&mut inner);
        let Some(job) = inner.active.as_mut() else {
            return Response::new(204);
        };
        let job_id = job.id;
        let Some(s) = job
            .shards
            .iter_mut()
            .find(|s| matches!(s.status, ShardStatus::Queued))
        else {
            return Response::new(204);
        };
        s.status = ShardStatus::Leased {
            worker,
            expires: Instant::now() + self.lease,
        };
        let spec_line = self
            .store
            .get(job_id)
            .map(|rec| rec.spec)
            .unwrap_or_default();
        let lease = shard::Lease {
            job: job_id,
            shard: s.plan.id.clone(),
            start: s.plan.start,
            end: s.plan.end,
            spec: spec_line,
            lease_ms: self.lease.as_millis() as u64,
        };
        Response::json(200, lease.render())
    }

    fn heartbeat(&self, req: &Request) -> Response {
        let body = String::from_utf8_lossy(&req.body);
        let obj = parse_flat_object(body.trim());
        let worker = obj.as_ref().and_then(|o| o.get("worker")?.as_u64());
        let job = obj.as_ref().and_then(|o| o.get("job")?.as_u64());
        let shard = obj
            .as_ref()
            .and_then(|o| o.get("shard")?.as_str().map(str::to_string));
        let (Some(worker), Some(job_id), Some(shard)) = (worker, job, shard) else {
            return json_error(400, "heartbeat needs worker, job and shard");
        };
        let mut inner = self.lock();
        let mut ok = false;
        if let Some(job) = inner.active.as_mut() {
            if job.id == job_id {
                for s in &mut job.shards {
                    if s.plan.id == shard {
                        if let ShardStatus::Leased { worker: holder, .. } = s.status {
                            if holder == worker {
                                s.status = ShardStatus::Leased {
                                    worker,
                                    expires: Instant::now() + self.lease,
                                };
                                ok = true;
                            }
                        }
                    }
                }
            }
        }
        let mut w = JsonLine::new();
        w.raw_field("ok", if ok { "true" } else { "false" });
        Response::json(200, w.finish())
    }

    fn complete(&self, req: &Request) -> Response {
        let body = String::from_utf8_lossy(&req.body);
        let (header, rest) = match body.split_once('\n') {
            Some(pair) => pair,
            None => (body.as_ref(), ""),
        };
        let Some(rec) = MergedShard::parse(header.trim()) else {
            return json_error(400, "complete needs a merged-shard header line");
        };
        let lines: Vec<String> = rest
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(str::to_string)
            .collect();
        if lines.len() != rec.end - rec.start
            || lines.iter().any(|l| checkpoint::parse_record(l).is_none())
        {
            return json_error(400, "complete carries malformed checkpoint records");
        }

        let merged = {
            let mut inner = self.lock();
            let key = (rec.job, rec.shard.clone());
            let duplicate = inner.merged.contains_key(&key);
            let belongs = inner.active.as_ref().is_some_and(|j| {
                j.id == rec.job && j.shards.iter().any(|s| s.plan.id == rec.shard)
            });
            if duplicate || !belongs {
                false
            } else {
                // Persist before acknowledging: checkpoint lines first,
                // then the journal record. A crash in between leaves
                // duplicate checkpoint lines for the re-leased shard,
                // which compaction dedupes by config key.
                if let Err(e) = self.store.append_result_lines(rec.job, &lines) {
                    return json_error(500, &format!("append results: {e}"));
                }
                {
                    let mut journal = self.journal.lock().unwrap_or_else(|p| p.into_inner());
                    if let Err(e) =
                        writeln!(journal, "{}", rec.render()).and_then(|_| journal.flush())
                    {
                        return json_error(500, &format!("journal shard: {e}"));
                    }
                }
                if let Some(job) = inner.active.as_mut() {
                    for s in &mut job.shards {
                        if s.plan.id == rec.shard {
                            s.status = ShardStatus::Merged;
                        }
                    }
                }
                inner.merged.insert(key, rec);
                true
            }
        };
        self.wake.notify_all();
        let mut w = JsonLine::new();
        w.raw_field("merged", if merged { "true" } else { "false" });
        Response::json(200, w.finish())
    }

    // ---- the three seams ---------------------------------------------------

    /// The route hook serving the cluster endpoints.
    pub fn route_hook(self: &Arc<Self>) -> RouteHook {
        let cluster = Arc::clone(self);
        Arc::new(move |req: &Request| {
            let cluster_path = matches!(
                req.path.as_str(),
                "/register" | "/lease" | "/heartbeat" | "/complete"
            );
            if !cluster_path {
                return None;
            }
            if req.method != "POST" {
                return Some(json_error(405, "cluster endpoints are POST-only"));
            }
            Some(match req.path.as_str() {
                "/register" => cluster.register(req),
                "/lease" => cluster.lease(req),
                "/heartbeat" => cluster.heartbeat(req),
                _ => cluster.complete(req),
            })
        })
    }

    /// The job executor dispatching shards to workers.
    pub fn executor(self: &Arc<Self>) -> JobExecutor {
        let cluster = Arc::clone(self);
        Arc::new(move |rec: &JobRecord, token: &CancelToken| cluster.execute(rec, token))
    }

    /// The `/metrics` extra renderer appending the cluster gauges.
    pub fn metrics_renderer(self: &Arc<Self>) -> Box<dyn Fn(&mut String) + Send + Sync> {
        let cluster = Arc::clone(self);
        Box::new(move |out: &mut String| cluster.render_metrics(out))
    }

    /// Dispatch one job's shards to the worker pool and assemble the
    /// merged [`SweepResult`] once every shard has landed.
    fn execute(&self, rec: &JobRecord, token: &CancelToken) -> Result<Option<String>, String> {
        let req = spec::spec_to_request(&rec.spec)?;
        if req.mode == core_cli::CliMode::Dse {
            // An iterative search cannot be pre-sharded — each batch
            // depends on the previous one's measurements — so DSE jobs
            // run on the coordinator's own engine, checkpointed in the
            // same store the sharded path merges into.
            let engine = core_cli::build_engine(&req, None).with_cancel(Some(token.clone()));
            let ckpt = Checkpoint::resume(self.store.checkpoint_path(rec.id))
                .map_err(|e| format!("checkpoint: {e}"))?;
            let result = core_cli::run_dse(&engine, &req, Some(&ckpt));
            self.metrics.absorb_dse(&result);
            if token.is_cancelled() {
                return Ok(None);
            }
            return Ok(Some(core_cli::render_dse_report(&req, &result)));
        }
        let space = core_cli::sweep_param_space(&req);
        let configs = space.configs();
        let plans = shard::plan(
            req.target.label(),
            &rec.spec,
            configs.len(),
            self.shard_points,
        );

        {
            let mut inner = self.lock();
            let shards = plans
                .iter()
                .map(|p| ShardState {
                    status: if inner.merged.contains_key(&(rec.id, p.id.clone())) {
                        ShardStatus::Merged
                    } else {
                        ShardStatus::Queued
                    },
                    plan: p.clone(),
                })
                .collect();
            inner.active = Some(ActiveJob { id: rec.id, shards });
        }

        // Wait for the pool to drain the shard queue. Workers poll
        // /lease over HTTP; the condvar only shortens the exit latency
        // when /complete lands.
        let mut inner = self.lock();
        loop {
            if token.is_cancelled() {
                inner.active = None;
                return Ok(None);
            }
            self.expire_stale(&mut inner);
            let done = inner.active.as_ref().is_some_and(|j| {
                j.shards
                    .iter()
                    .all(|s| matches!(s.status, ShardStatus::Merged))
            });
            if done {
                inner.active = None;
                break;
            }
            let (g, _) = self
                .wake
                .wait_timeout(inner, Duration::from_millis(25))
                .unwrap_or_else(|p| p.into_inner());
            inner = g;
        }
        drop(inner);

        // Assemble: dedupe the checkpoint (re-leased shards may have
        // appended twice), then look every config up — re-attaching
        // the real KernelConfig, which the wire records carry only as
        // a key.
        let path = self.store.checkpoint_path(rec.id);
        Checkpoint::compact(&path).map_err(|e| format!("compact merged checkpoint: {e}"))?;
        let ckpt = Checkpoint::resume(&path).map_err(|e| format!("open merged checkpoint: {e}"))?;
        let mut points = Vec::with_capacity(configs.len());
        for cfg in &configs {
            points.push(ckpt.lookup(cfg).ok_or_else(|| {
                format!(
                    "merged checkpoint is missing {}",
                    checkpoint::config_key(cfg)
                )
            })?);
        }
        let mut counters = ShardCounters::default();
        {
            let inner = self.lock();
            for p in &plans {
                if let Some(m) = inner.merged.get(&(rec.id, p.id.clone())) {
                    counters.absorb(&m.counters);
                }
            }
        }
        let mut result = SweepResult {
            points,
            cache: Default::default(),
            retry: Default::default(),
            faults: Default::default(),
            resumed: 0,
        };
        counters.fill_result(&mut result);
        self.metrics.absorb_sweep(&result);
        if token.is_cancelled() {
            return Ok(None);
        }
        Ok(Some(core_cli::render_sweep_report(&req, &result)))
    }

    fn render_metrics(&self, out: &mut String) {
        let (live, lost, queued, leased, merged_active, merged_total) = {
            let inner = self.lock();
            let live = inner.workers.values().filter(|w| !w.lost).count();
            let lost = inner.workers.values().filter(|w| w.lost).count();
            let mut queued = 0usize;
            let mut leased = 0usize;
            let mut merged_active = 0usize;
            if let Some(job) = inner.active.as_ref() {
                for s in &job.shards {
                    match s.status {
                        ShardStatus::Queued => queued += 1,
                        ShardStatus::Leased { .. } => leased += 1,
                        ShardStatus::Merged => merged_active += 1,
                    }
                }
            }
            (
                live,
                lost,
                queued,
                leased,
                merged_active,
                inner.merged.len(),
            )
        };
        let releases = self.releases.load(Ordering::Relaxed);
        let mut gauge = |name: &str, help: &str, kind: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
            ));
        };
        gauge(
            "mpstream_cluster_workers_live",
            "Registered workers not currently marked lost.",
            "gauge",
            live as u64,
        );
        gauge(
            "mpstream_cluster_workers_lost",
            "Workers whose lease expired without completion.",
            "gauge",
            lost as u64,
        );
        gauge(
            "mpstream_cluster_shards_queued",
            "Shards of the active job waiting for a worker.",
            "gauge",
            queued as u64,
        );
        gauge(
            "mpstream_cluster_shards_leased",
            "Shards of the active job currently leased.",
            "gauge",
            leased as u64,
        );
        gauge(
            "mpstream_cluster_shards_merged",
            "Shards of the active job already merged.",
            "gauge",
            merged_active as u64,
        );
        gauge(
            "mpstream_cluster_shards_merged_total",
            "Shards merged across all jobs since the journal began.",
            "counter",
            merged_total as u64,
        );
        gauge(
            "mpstream_cluster_shard_releases_total",
            "Expired leases that sent a shard back to the queue.",
            "counter",
            releases,
        );
    }
}

/// A serve daemon with the cluster seams installed.
pub struct Coordinator {
    server: Server,
    cluster: Arc<Cluster>,
}

impl Coordinator {
    /// Bind the underlying server and install the cluster seams.
    pub fn bind(opts: CoordinatorOpts) -> std::io::Result<Coordinator> {
        let server = Server::bind(opts.serve)?;
        let cluster = Cluster::open(
            server.store(),
            server.metrics(),
            opts.lease,
            opts.shard_points,
        )?;
        server.set_route_hook(cluster.route_hook());
        server.manager().set_executor(cluster.executor());
        server
            .metrics()
            .set_extra_renderer(cluster.metrics_renderer());
        Ok(Coordinator { server, cluster })
    }

    /// The actually-bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.server.local_addr()
    }

    /// A handle that makes `run` return.
    pub fn shutdown_handle(&self) -> std::io::Result<ShutdownHandle> {
        self.server.shutdown_handle()
    }

    /// The shared result store.
    pub fn store(&self) -> Arc<ResultStore> {
        self.server.store()
    }

    /// The shared cluster state (exposed for tests and metrics).
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// Path of the shard journal inside a store directory.
    pub fn journal_path(store_dir: &std::path::Path) -> PathBuf {
        store_dir.join(Cluster::JOURNAL)
    }

    /// Serve until shut down, then drain (delegates to the server).
    pub fn run(self) -> std::io::Result<()> {
        self.server.run()
    }
}
