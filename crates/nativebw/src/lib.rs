//! # nativebw — a real STREAM for the host machine
//!
//! Everything else in this workspace runs on *simulated* devices; this
//! crate ties the project to reality by implementing the classic STREAM
//! benchmark (McCalpin) natively in Rust: four kernels over `f64`
//! arrays, multi-threaded with statically partitioned std scoped
//! threads, best-of-N timing and the original's closed-form result
//! validation. It also measures a column-major ("strided") copy so the
//! host machine's contiguity penalty can be compared with the simulated
//! CPU target's (Figure 2).
//!
//! Protocol notes, matching the original STREAM:
//! * each timed iteration runs COPY, SCALE, ADD, TRIAD in that order;
//! * the first iteration is discarded (cold caches/pages);
//! * per-kernel bandwidth uses the *minimum* time across iterations;
//! * bytes counted are 2 arrays for COPY/SCALE and 3 for ADD/TRIAD.

use std::thread;
use std::time::Instant;

/// The four STREAM kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeKernel {
    Copy,
    Scale,
    Add,
    Triad,
}

impl NativeKernel {
    /// All four, in STREAM order.
    pub const ALL: [NativeKernel; 4] = [
        NativeKernel::Copy,
        NativeKernel::Scale,
        NativeKernel::Add,
        NativeKernel::Triad,
    ];

    /// Kernel name.
    pub fn name(self) -> &'static str {
        match self {
            NativeKernel::Copy => "copy",
            NativeKernel::Scale => "scale",
            NativeKernel::Add => "add",
            NativeKernel::Triad => "triad",
        }
    }

    /// Bytes moved per invocation for `n` f64 elements.
    pub fn bytes(self, n: usize) -> u64 {
        let arrays = match self {
            NativeKernel::Copy | NativeKernel::Scale => 2,
            NativeKernel::Add | NativeKernel::Triad => 3,
        };
        arrays * 8 * n as u64
    }
}

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct NativeConfig {
    /// Elements per array (f64). STREAM recommends ≥ 4x the LLC.
    pub n: usize,
    /// Worker threads (static partition).
    pub threads: usize,
    /// Timed iterations (after one discarded warm-up iteration).
    pub ntimes: usize,
    /// The TRIAD/SCALE scalar.
    pub q: f64,
}

impl Default for NativeConfig {
    fn default() -> Self {
        NativeConfig {
            n: 8 << 20, // 64 MB per array
            threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            ntimes: 10,
            q: 3.0,
        }
    }
}

/// Timing summary for one kernel.
#[derive(Debug, Clone)]
pub struct KernelTiming {
    /// Which kernel.
    pub kernel: NativeKernel,
    /// Best (minimum) time over the timed iterations, ns.
    pub min_ns: f64,
    /// Mean time, ns.
    pub avg_ns: f64,
    /// Worst time, ns.
    pub max_ns: f64,
    /// Payload bytes per invocation.
    pub bytes: u64,
}

impl KernelTiming {
    /// Best-rate bandwidth, GB/s (1 GB = 1e9 B), STREAM's headline.
    pub fn gbps(&self) -> f64 {
        self.bytes as f64 / self.min_ns
    }
}

/// Full benchmark outcome.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// One timing per kernel, in STREAM order.
    pub kernels: Vec<KernelTiming>,
    /// Did the final arrays match the closed-form expectation?
    pub validated: bool,
    /// Configuration used.
    pub config: NativeConfig,
}

/// Apply `f` to aligned chunks of the destination across threads.
fn parallel_zip2(
    threads: usize,
    dst: &mut [f64],
    src: &[f64],
    f: impl Fn(&mut [f64], &[f64]) + Sync,
) {
    let chunk = dst.len().div_ceil(threads.max(1));
    thread::scope(|s| {
        for (d, a) in dst.chunks_mut(chunk).zip(src.chunks(chunk)) {
            s.spawn(|| f(d, a));
        }
    });
}

fn parallel_zip3(
    threads: usize,
    dst: &mut [f64],
    s1: &[f64],
    s2: &[f64],
    f: impl Fn(&mut [f64], &[f64], &[f64]) + Sync,
) {
    let chunk = dst.len().div_ceil(threads.max(1));
    thread::scope(|s| {
        for ((d, a), b) in dst
            .chunks_mut(chunk)
            .zip(s1.chunks(chunk))
            .zip(s2.chunks(chunk))
        {
            s.spawn(|| f(d, a, b));
        }
    });
}

/// Run the STREAM protocol and report per-kernel bandwidth.
pub fn stream_benchmark(cfg: &NativeConfig) -> StreamReport {
    let n = cfg.n;
    let q = cfg.q;
    let mut a = vec![1.0f64; n];
    let mut b = vec![2.0f64; n];
    let mut c = vec![0.0f64; n];

    let mut mins = [f64::INFINITY; 4];
    let mut sums = [0.0f64; 4];
    let mut maxs = [0.0f64; 4];

    // One discarded warm-up iteration + ntimes timed ones.
    for it in 0..cfg.ntimes + 1 {
        let mut record = |k: usize, ns: f64| {
            if it > 0 {
                mins[k] = mins[k].min(ns);
                maxs[k] = maxs[k].max(ns);
                sums[k] += ns;
            }
        };

        let t = Instant::now(); // COPY: c = a
        parallel_zip2(cfg.threads, &mut c, &a, |d, s| d.copy_from_slice(s));
        record(0, t.elapsed().as_nanos() as f64);

        let t = Instant::now(); // SCALE: b = q*c
        parallel_zip2(cfg.threads, &mut b, &c, |d, s| {
            for (x, y) in d.iter_mut().zip(s) {
                *x = q * y;
            }
        });
        record(1, t.elapsed().as_nanos() as f64);

        let t = Instant::now(); // ADD: c = a + b
        parallel_zip3(cfg.threads, &mut c, &a, &b, |d, x, y| {
            for ((o, p), r) in d.iter_mut().zip(x).zip(y) {
                *o = p + r;
            }
        });
        record(2, t.elapsed().as_nanos() as f64);

        let t = Instant::now(); // TRIAD: a = b + q*c
        parallel_zip3(cfg.threads, &mut a, &b, &c, |d, x, y| {
            for ((o, p), r) in d.iter_mut().zip(x).zip(y) {
                *o = p + q * r;
            }
        });
        record(3, t.elapsed().as_nanos() as f64);
    }

    // STREAM validation: evolve scalars by the same recurrence.
    let (mut ea, mut eb, mut ec) = (1.0f64, 2.0, 0.0);
    for _ in 0..cfg.ntimes + 1 {
        ec = ea;
        eb = q * ec;
        ec = ea + eb;
        ea = eb + q * ec;
    }
    let tol = 1e-8;
    let ok = |xs: &[f64], e: f64| xs.iter().all(|&x| (x - e).abs() <= tol * e.abs().max(1.0));
    let validated = ok(&a, ea) && ok(&b, eb) && ok(&c, ec);

    let kernels = NativeKernel::ALL
        .iter()
        .enumerate()
        .map(|(k, &kernel)| KernelTiming {
            kernel,
            min_ns: mins[k],
            avg_ns: sums[k] / cfg.ntimes.max(1) as f64,
            max_ns: maxs[k],
            bytes: kernel.bytes(n),
        })
        .collect();

    StreamReport {
        kernels,
        validated,
        config: cfg.clone(),
    }
}

/// Column-major ("strided") copy bandwidth over a `rows x cols`
/// row-major matrix of f64 — the native analogue of the paper's Fig. 2
/// strided pattern. Returns GB/s counting 16 bytes per element.
pub fn strided_copy_gbps(rows: usize, cols: usize, threads: usize, ntimes: usize) -> f64 {
    let n = rows * cols;
    let src = vec![1.0f64; n];
    let mut dst = vec![0.0f64; n];
    let mut best = f64::INFINITY;
    for it in 0..ntimes + 1 {
        let t = Instant::now();
        // Partition the columns across threads; each thread walks its
        // columns in column-major order (strided reads and writes).
        let per = cols.div_ceil(threads.max(1));
        let dst_ptr = SendPtr(dst.as_mut_ptr());
        thread::scope(|s| {
            for t0 in (0..cols).step_by(per.max(1)) {
                let src = &src;
                s.spawn(move || {
                    // Move the wrapper in so the closure captures the
                    // `Send` newtype, not the raw pointer field.
                    let p = dst_ptr;
                    let end = (t0 + per).min(cols);
                    for col in t0..end {
                        for row in 0..rows {
                            let idx = row * cols + col;
                            // SAFETY: column ranges are disjoint across
                            // threads, so each idx is written once.
                            unsafe { *p.0.add(idx) = src[idx] };
                        }
                    }
                });
            }
        });
        let ns = t.elapsed().as_nanos() as f64;
        if it > 0 {
            best = best.min(ns);
        }
    }
    assert!(dst.iter().all(|&x| x == 1.0), "strided copy corrupted data");
    (16 * n) as f64 / best
}

/// A raw pointer that asserts Send (used for disjoint column writes).
#[derive(Clone, Copy)]
struct SendPtr(*mut f64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> NativeConfig {
        NativeConfig {
            n: 1 << 16,
            threads: 2,
            ntimes: 3,
            q: 3.0,
        }
    }

    #[test]
    fn stream_validates_and_reports_all_kernels() {
        let r = stream_benchmark(&small());
        assert!(r.validated, "native STREAM must validate");
        assert_eq!(r.kernels.len(), 4);
        for k in &r.kernels {
            assert!(k.gbps() > 0.0, "{:?}", k.kernel);
            assert!(k.min_ns <= k.avg_ns && k.avg_ns <= k.max_ns * 1.0001);
        }
    }

    #[test]
    fn bytes_counted_like_stream() {
        assert_eq!(NativeKernel::Copy.bytes(100), 1600);
        assert_eq!(NativeKernel::Triad.bytes(100), 2400);
    }

    #[test]
    fn single_thread_works() {
        let r = stream_benchmark(&NativeConfig {
            threads: 1,
            ..small()
        });
        assert!(r.validated);
    }

    #[test]
    fn more_threads_than_elements_is_fine() {
        let r = stream_benchmark(&NativeConfig {
            n: 8,
            threads: 64,
            ntimes: 2,
            q: 3.0,
        });
        assert!(r.validated);
    }

    #[test]
    fn strided_copy_correct_and_positive() {
        let g = strided_copy_gbps(256, 128, 2, 2);
        assert!(g > 0.0);
    }

    #[test]
    fn contiguous_beats_strided_on_real_hardware() {
        // 32 MB working set: large enough to defeat the LLC partially;
        // contiguous copy should comfortably beat column-major copy.
        let cfg = NativeConfig {
            n: 2 << 20,
            threads: 2,
            ntimes: 3,
            q: 3.0,
        };
        let contig = stream_benchmark(&cfg).kernels[0].gbps();
        let strided = strided_copy_gbps(2048, 1024, 2, 3);
        assert!(
            contig > strided,
            "contiguous {contig} GB/s should beat strided {strided} GB/s"
        );
    }
}
